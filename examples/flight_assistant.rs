//! Flight-assistant scenario: the value-candidate pipeline on the paper's
//! hardest examples (Section IV, Fig. 4 and Fig. 8).
//!
//! No neural network here — this example dissects the *pre-processing*
//! architecture sketch: value extraction (NER + heuristics), candidate
//! generation (similarity, n-grams, acronyms, month wildcards) and
//! validation against the base data, showing how "John F Kennedy
//! International Airport" becomes the candidate `JFK` located in
//! `flight.destination`.
//!
//! ```text
//! cargo run --release --example flight_assistant
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use valuenet::dataset::all_domains;
use valuenet::preprocess::{preprocess, CandidateConfig, HeuristicNer, QuestionHint};
use valuenet::storage::Database;

fn main() {
    // The flights domain from the corpus generator (airports with codes,
    // full names and cities; flights referencing them).
    let mut rng = SmallRng::seed_from_u64(7);
    let spec = all_domains(&mut rng, 60).into_iter().nth(1).expect("flights domain");
    let db = Database::with_rows(spec.schema.clone(), spec.rows.clone());
    println!(
        "flights database: {} tables, {} rows, {} distinct indexed values\n",
        db.schema().tables.len(),
        db.num_rows(),
        db.index().num_values()
    );

    let ner = HeuristicNer::new();
    let cfg = CandidateConfig::default();
    let questions = [
        // Fig. 4: the value is stored as 'JFK'.
        "Find all routes that have destination John F Kennedy International Airport with a duration of more than 6 hours.",
        // Misspelling: similarity search must recover the airline.
        "How many flights are operated by Lufthanza?",
        // Month heuristic: August → a date wildcard.
        "Which flights departed in August?",
        // City instead of code (Hard surface form).
        "Show the flights with destination Los Angeles.",
    ];

    for q in questions {
        println!("Q: {q}");
        let pre = preprocess(q, &db, &ner, &cfg);
        let hinted: Vec<String> = pre
            .tokens
            .iter()
            .zip(&pre.question_hints)
            .filter(|(_, h)| !matches!(h, QuestionHint::None))
            .map(|(t, h)| format!("{}→{h:?}", t.text))
            .collect();
        println!("  hints: {}", hinted.join(", "));
        for cand in &pre.candidates {
            let locs: Vec<String> =
                cand.locations.iter().map(|&c| db.schema().qualified(c)).collect();
            println!(
                "  candidate {:?} ({:?}) found in [{}]",
                cand.text,
                cand.source,
                locs.join(", ")
            );
        }
        println!();
    }
}
