//! ValueNet light vs ValueNet (paper Section V-E): trains both variants on
//! the same corpus and compares their dev-set Execution Accuracy, their
//! exact-match accuracy, and where the full pipeline loses samples.
//!
//! ```text
//! cargo run --release --example light_vs_full
//! ```

use valuenet::core::{train, ModelConfig, TrainConfig, ValueMode};
use valuenet::dataset::{generate, CorpusConfig};
use valuenet::eval::{execution_accuracy, ExecOutcome};
use valuenet::sql::parse_select;

fn evaluate(
    pipeline: &valuenet::core::Pipeline,
    corpus: &valuenet::dataset::Corpus,
) -> (usize, usize, Vec<usize>) {
    let mut correct = 0;
    let mut failures = Vec::new();
    for (i, s) in corpus.dev.iter().enumerate() {
        let db = corpus.db(s);
        let gold = parse_select(&s.sql).unwrap();
        let gold_values = match pipeline.mode {
            ValueMode::Light => Some(s.values.as_slice()),
            _ => None,
        };
        let pred = pipeline.translate(db, &s.question, gold_values);
        let ok = pred
            .sql
            .as_ref()
            .map(|sql| execution_accuracy(db, sql, &gold) == ExecOutcome::Correct)
            .unwrap_or(false);
        if ok {
            correct += 1;
        } else {
            failures.push(i);
        }
    }
    (correct, corpus.dev.len(), failures)
}

fn main() {
    let corpus = generate(&CorpusConfig {
        seed: 42,
        train_size: 1200,
        dev_size: 150,
        rows_per_table: 30,
        ..CorpusConfig::default()
    });
    let tc = TrainConfig { epochs: 6, verbose: true, ..Default::default() };

    println!("training ValueNet light (gold value options provided)...");
    let (light, _) = train(&corpus, ValueMode::Light, ModelConfig::default(), &tc);
    let (lc, lt, _) = evaluate(&light, &corpus);

    println!("training ValueNet (candidates extracted from DB content)...");
    let (full, _) = train(&corpus, ValueMode::Full, ModelConfig::default(), &tc);
    let (fc, ft, full_failures) = evaluate(&full, &corpus);

    println!("\nExecution Accuracy on unseen dev databases:");
    println!("  ValueNet light: {lc}/{lt} = {:.1}%  (paper: ~67%)", 100.0 * lc as f64 / lt as f64);
    println!("  ValueNet      : {fc}/{ft} = {:.1}%  (paper: ~62%)", 100.0 * fc as f64 / ft as f64);
    println!(
        "  gap           : {:.1} points (paper: 3-4 points, attributed to\n\
         \u{20}                 non-extractable values and candidate noise)",
        100.0 * (lc as f64 / lt as f64 - fc as f64 / ft as f64)
    );

    println!("\nthree questions the full pipeline failed:");
    for &i in full_failures.iter().take(3) {
        let s = &corpus.dev[i];
        let db = corpus.db(s);
        let pred = full.translate(db, &s.question, None);
        println!("  Q: {}", s.question);
        println!("    gold: {}", s.sql);
        match &pred.sql {
            Some(sql) => println!("    pred: {sql}"),
            None => println!("    pred: <decoding failed>"),
        }
        println!("    candidates: {:?}", pred.candidates);
    }
}
