//! Quickstart: the paper's running example, end to end.
//!
//! Builds the Fig. 1 database (students / has_pet / pets), trains a small
//! ValueNet on the synthetic corpus, and translates *"How many pets are
//! owned by French students that are older than 20?"* — the question must
//! resolve "French" to the base-data value `'France'`, bridge the join
//! through `has_pet`, and place both values correctly.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use valuenet::core::{train, ModelConfig, TrainConfig, ValueMode};
use valuenet::dataset::{generate, CorpusConfig};

fn main() {
    // 1. A Spider-like corpus: 14 databases, train/dev over disjoint ones.
    println!("generating the synthetic corpus...");
    let corpus = generate(&CorpusConfig {
        seed: 42,
        train_size: 1200,
        dev_size: 100,
        rows_per_table: 30,
        ..CorpusConfig::default()
    });
    println!(
        "  {} databases, {} train / {} dev questions",
        corpus.databases.len(),
        corpus.train.len(),
        corpus.dev.len()
    );

    // 2. Train ValueNet (full mode: values are extracted from the question
    //    and the database content, not given by an oracle).
    println!("training ValueNet (a few minutes on a laptop CPU)...");
    let (pipeline, report) = train(
        &corpus,
        ValueMode::Full,
        ModelConfig::default(),
        &TrainConfig { epochs: 6, verbose: true, ..Default::default() },
    );
    println!(
        "  trained on {} samples, final loss {:.4}",
        report.trained_samples,
        report.epoch_losses.last().unwrap()
    );

    // 3. The paper's running example against the student_pets database.
    let sample = corpus
        .train
        .iter()
        .find(|s| s.db_id == "student_pets")
        .expect("student_pets domain exists");
    let db = corpus.db(sample);
    let question = "How many pets are owned by French students older than 20?";
    println!("\nQ: {question}");
    let pred = pipeline.translate(db, question, None);
    println!("value candidates: {:?}", pred.candidates);
    match &pred.sql {
        Some(sql) => {
            println!("SQL: {sql}");
            match &pred.result {
                Some(rs) => println!("Result: {rs}"),
                None => println!("(query failed to execute)"),
            }
        }
        None => println!("(no SQL produced)"),
    }
    let t = pred.timings;
    println!(
        "timings: pre {:?} | lookup {:?} | enc/dec {:?} | post {:?} | exec {:?}",
        t.pre_processing, t.value_lookup, t.encoder_decoder, t.post_processing, t.query_execution
    );

    // 4. A couple more questions from the dev split (unseen databases).
    println!("\n--- unseen dev databases ---");
    for s in corpus.dev.iter().take(3) {
        let db = corpus.db(s);
        let pred = pipeline.translate(db, &s.question, None);
        println!("\n[{}] Q: {}", s.db_id, s.question);
        println!("  gold: {}", s.sql);
        match &pred.sql {
            Some(sql) => println!("  pred: {sql}"),
            None => println!("  pred: <failed>"),
        }
    }
}
