//! Tour of the SQL substrate: schema builder, in-memory storage, the
//! parser/executor, and the Execution Accuracy comparison — everything the
//! Spider *Execution with Values* metric needs, usable standalone.
//!
//! ```text
//! cargo run --release --example sql_engine_tour
//! ```

use valuenet::exec::execute;
use valuenet::schema::{ColumnType, SchemaBuilder, SchemaGraph};
use valuenet::sql::parse_select;
use valuenet::storage::Database;

fn main() {
    // 1. Declare a schema with the fluent builder.
    let schema = SchemaBuilder::new("concerts")
        .table(
            "singer",
            &[
                ("singer_id", ColumnType::Number),
                ("name", ColumnType::Text),
                ("country", ColumnType::Text),
                ("age", ColumnType::Number),
            ],
        )
        .primary_key("singer", "singer_id")
        .table(
            "concert",
            &[
                ("concert_id", ColumnType::Number),
                ("concert_name", ColumnType::Text),
                ("singer_id", ColumnType::Number),
                ("attendance", ColumnType::Number),
            ],
        )
        .primary_key("concert", "concert_id")
        .foreign_key("concert", "singer_id", "singer", "singer_id")
        .build();

    // 2. Load rows and build the inverted index.
    let mut db = Database::new(schema);
    let singer = db.schema().table_by_name("singer").unwrap();
    let concert = db.schema().table_by_name("concert").unwrap();
    for (id, name, country, age) in [
        (1, "Nora Vance", "France", 29),
        (2, "Theo Adler", "Germany", 41),
        (3, "Mira Sole", "France", 35),
    ] {
        db.insert(singer, vec![id.into(), name.into(), country.into(), age.into()]);
    }
    for (id, cname, sid, att) in [
        (1, "Summer Fest", 1, 12000),
        (2, "Winter Gala", 1, 7000),
        (3, "Spring Jam", 2, 9000),
    ] {
        db.insert(concert, vec![id.into(), cname.into(), sid.into(), att.into()]);
    }
    db.rebuild_index();

    // 3. Run queries.
    for sql in [
        "SELECT name FROM singer WHERE country = 'France' ORDER BY age ASC",
        "SELECT T1.name, count(*) FROM singer AS T1 JOIN concert AS T2 \
         ON T1.singer_id = T2.singer_id GROUP BY T1.name ORDER BY count(*) DESC",
        "SELECT name FROM singer WHERE age > (SELECT avg(age) FROM singer)",
        "SELECT name FROM singer EXCEPT SELECT T1.name FROM singer AS T1 \
         JOIN concert AS T2 ON T1.singer_id = T2.singer_id",
    ] {
        let stmt = parse_select(sql).expect("query parses");
        let rs = execute(&db, &stmt).expect("query executes");
        println!("SQL: {sql}\n{rs}");
    }

    // 4. The inverted index: exact, fuzzy and wildcard lookup.
    println!("find_exact(\"France\") → {:?}", db.index().find_exact("France"));
    for hit in db.index().find_similar("Frnce", 2) {
        println!(
            "find_similar(\"Frnce\") → '{}' in {} (distance {})",
            hit.value,
            db.schema().qualified(hit.column),
            hit.distance
        );
    }

    // 5. Join planning with the schema graph (bridge tables + ON clauses).
    let graph = SchemaGraph::new(db.schema());
    let tree = graph.join_tree(&[singer, concert]).expect("connected schema");
    println!("\njoin tree over (singer, concert):");
    for e in &tree.edges {
        println!(
            "  JOIN ON {} = {}",
            db.schema().qualified(e.from_col),
            db.schema().qualified(e.to_col)
        );
    }

    // 6. The Execution Accuracy comparison the evaluation uses.
    let a = execute(&db, &parse_select("SELECT name FROM singer WHERE age >= 35").unwrap()).unwrap();
    let b = execute(&db, &parse_select("SELECT name FROM singer WHERE age > 34").unwrap()).unwrap();
    println!("\nequivalent queries compare equal: {}", a.result_eq(&b));
}
