//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small slice of `rand` it actually uses: [`rngs::SmallRng`] (here a
//! xoshiro256++ generator), [`SeedableRng::seed_from_u64`], the [`Rng`]
//! extension methods `gen`, `gen_range` and `gen_bool`, and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The streams are deterministic and stable across platforms, which is all
//! the workspace requires (it never relied on matching upstream `rand`'s
//! exact output, only on seed-reproducibility).

/// Low-level source of randomness: 32/64-bit outputs.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (always sufficient here).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Samples a uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for i32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}
impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Scalar types uniformly sampleable from a bounded range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Unbiased draw from `[0, n)` via Lemire-style rejection on 64-bit output.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Rejection zone keeps the draw exactly uniform.
    let zone = u64::MAX - u64::MAX.wrapping_rem(n);
    loop {
        let v = rng.next_u64();
        if v < zone || zone == 0 {
            return v % n;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                low.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
                         u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64);

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + f32::sample_standard(rng) * (high - low)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "gen_range: empty range");
        // The closed upper bound is hit with vanishing probability; treating
        // the range as half-open keeps the math simple, matching rand's
        // practical behaviour for floats.
        low + f32::sample_standard(rng) * (high - low)
    }
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + f64::sample_standard(rng) * (high - low)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "gen_range: empty range");
        low + f64::sample_standard(rng) * (high - low)
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

/// The user-facing extension trait (blanket-implemented for every RngCore).
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform draw from `range`.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, as upstream does.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = Self::rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = Self::rotl(s[3], 45);
            result
        }
    }

    /// Alias kept for API compatibility.
    pub type StdRng = SmallRng;
}

pub mod seq {
    //! Sequence-related random operations.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// A uniformly chosen element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let u: f32 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
        assert_eq!([1u8; 0].choose(&mut rng), None);
    }
}
