//! Derive macros for the vendored serde subset.
//!
//! The build environment has no crates.io access, so this crate parses the
//! derive input by walking raw `proc_macro` token trees (no `syn`/`quote`)
//! and emits impls of the vendored `serde::Serialize` / `serde::Deserialize`
//! traits. Supported shapes — everything this workspace derives on:
//!
//! * structs with named fields, tuple structs (newtype and n-ary), unit
//!   structs;
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   real serde's JSON output).
//!
//! Generic types and `#[serde(...)]` attributes are intentionally not
//! supported; the macro panics with a clear message if it meets one.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Named(Vec<String>),
    Unnamed(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    shape: Shape,
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_serialize(&input).parse().expect("serde_derive: generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_deserialize(&input).parse().expect("serde_derive: generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic type `{name}` is not supported by the vendored derive");
    }

    let shape = match kind.as_str() {
        "struct" => Shape::Struct(parse_struct_body(&tokens, &mut i)),
        "enum" => Shape::Enum(parse_enum_body(&tokens, &mut i, &name)),
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    Input { name, shape }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + `[...]`
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `pub(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

fn parse_struct_body(tokens: &[TokenTree], i: &mut usize) -> Fields {
    match tokens.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Fields::Unnamed(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
        other => panic!("serde_derive: unexpected struct body {other:?}"),
    }
}

/// Parses `name: Type, ...`, returning the field names. Types are skipped by
/// scanning to the next top-level comma (tracking `<`/`>` nesting).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, found {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other}"),
        }
        skip_type(&tokens, &mut i);
        fields.push(name);
    }
    fields
}

/// Advances past one type, stopping after the following top-level `,` (or at
/// the end of the token list).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        count += 1;
    }
    count
}

fn parse_enum_body(tokens: &[TokenTree], i: &mut usize, name: &str) -> Vec<Variant> {
    let group = match tokens.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => panic!("serde_derive: expected enum body for `{name}`, found {other:?}"),
    };
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let vname = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Unnamed(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("serde_derive: explicit discriminants are not supported ({name}::{vname})");
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name: vname, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Obj(vec![{}])", entries.join(", "))
        }
        Shape::Struct(Fields::Unnamed(1)) => {
            "::serde::Serialize::to_value(&self.0)".to_string()
        }
        Shape::Struct(Fields::Unnamed(n)) => {
            let items: Vec<String> =
                (0..*n).map(|k| format!("::serde::Serialize::to_value(&self.{k})")).collect();
            format!("::serde::Value::Arr(vec![{}])", items.join(", "))
        }
        Shape::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        Fields::Unnamed(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Obj(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(__f0))]),"
                        ),
                        Fields::Unnamed(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Serialize::to_value(__f{k})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Obj(vec![(\"{vn}\".to_string(), ::serde::Value::Arr(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                ))
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Obj(vec![(\"{vn}\".to_string(), ::serde::Value::Obj(vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(__v.field(\"{f}\"))\
                         .map_err(|e| ::serde::DeError::new(format!(\"{name}.{f}: {{e}}\")))?,"
                    )
                })
                .collect();
            format!(
                "if __v.as_obj().is_none() {{\n\
                     return Err(::serde::DeError::new(\"{name}: expected object\"));\n\
                 }}\n\
                 Ok({name} {{ {} }})",
                inits.join(" ")
            )
        }
        Shape::Struct(Fields::Unnamed(1)) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::Struct(Fields::Unnamed(n)) => {
            let inits: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                .collect();
            format!(
                "let __items = __v.as_arr().ok_or_else(|| ::serde::DeError::new(\"{name}: expected array\"))?;\n\
                 if __items.len() != {n} {{\n\
                     return Err(::serde::DeError::new(\"{name}: wrong tuple arity\"));\n\
                 }}\n\
                 Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::Struct(Fields::Unit) => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{vn}\" => Ok({name}::{vn}),", vn = v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Unnamed(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(__payload)\
                             .map_err(|e| ::serde::DeError::new(format!(\"{name}::{vn}: {{e}}\")))?)),"
                        )),
                        Fields::Unnamed(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let __items = __payload.as_arr().ok_or_else(|| ::serde::DeError::new(\"{name}::{vn}: expected array\"))?;\n\
                                     if __items.len() != {n} {{\n\
                                         return Err(::serde::DeError::new(\"{name}::{vn}: wrong arity\"));\n\
                                     }}\n\
                                     Ok({name}::{vn}({}))\n\
                                 }},",
                                inits.join(", ")
                            ))
                        }
                        Fields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!(
                                    "{f}: ::serde::Deserialize::from_value(__payload.field(\"{f}\"))\
                                     .map_err(|e| ::serde::DeError::new(format!(\"{name}::{vn}.{f}: {{e}}\")))?,"
                                ))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => Ok({name}::{vn} {{ {} }}),",
                                inits.join(" ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "if let Some(__s) = __v.as_str() {{\n\
                     return match __s {{\n\
                         {}\n\
                         __other => Err(::serde::DeError::new(format!(\"{name}: unknown variant {{__other}}\"))),\n\
                     }};\n\
                 }}\n\
                 if let Some(__obj) = __v.as_obj() {{\n\
                     if __obj.len() == 1 {{\n\
                         let (__tag, __payload) = &__obj[0];\n\
                         return match __tag.as_str() {{\n\
                             {}\n\
                             __other => Err(::serde::DeError::new(format!(\"{name}: unknown variant {{__other}}\"))),\n\
                         }};\n\
                     }}\n\
                 }}\n\
                 Err(::serde::DeError::new(\"{name}: expected variant string or single-key object\"))",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}
