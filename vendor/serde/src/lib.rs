//! Offline drop-in subset of the `serde` API.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal serde: a JSON-shaped [`Value`] data model, [`Serialize`] /
//! [`Deserialize`] traits expressed directly against it, and derive macros
//! (re-exported from `serde_derive`) that generate the standard externally
//! tagged representation. `serde_json` (also vendored) renders and parses
//! [`Value`] text.
//!
//! The representation matches real serde's JSON output for the shapes used in
//! this workspace: structs as objects, unit enum variants as strings, data
//! variants as single-key objects, newtype payloads unwrapped.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A JSON-shaped value: the data model both traits talk to.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any JSON number (integers stay exact up to 2^53).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object (insertion order preserved).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The object entries, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Looks up a field of an object (missing fields read as `Null`, which
    /// lets `Option` fields default to `None`).
    pub fn field<'a>(&'a self, name: &str) -> &'a Value {
        const NULL: &Value = &Value::Null;
        match self {
            Value::Obj(entries) => {
                entries.iter().find(|(k, _)| k == name).map(|(_, v)| v).unwrap_or(NULL)
            }
            _ => NULL,
        }
    }
}

/// Deserialisation error with a human-readable path-less message.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// A new error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// This value as a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_num()
                    .map(|n| n as $t)
                    .ok_or_else(|| DeError::new(format!(
                        "expected number for {}", stringify!($t)
                    )))
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str().map(str::to_string).ok_or_else(|| DeError::new("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::new("expected single-char string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_arr()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::new(format!("expected array of length {N}, got {n}")))
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Deterministic key order keeps serialisation reproducible.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Obj(keys.into_iter().map(|k| (k.clone(), self[k].to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_obj()
            .ok_or_else(|| DeError::new("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_obj()
            .ok_or_else(|| DeError::new("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+ ; $len:literal)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_arr().ok_or_else(|| DeError::new("expected tuple array"))?;
                if items.len() != $len {
                    return Err(DeError::new(format!(
                        "expected tuple of {}, got {}", $len, items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple!(
    (A.0; 1),
    (A.0, B.1; 2),
    (A.0, B.1, C.2; 3),
    (A.0, B.1, C.2, D.3; 4)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&3u32.to_value()).unwrap(), Some(3));
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let arr = [1u32, 2, 3, 4];
        assert_eq!(<[u32; 4]>::from_value(&arr.to_value()).unwrap(), arr);
        let mut m = HashMap::new();
        m.insert("a".to_string(), 1.5f64);
        assert_eq!(HashMap::<String, f64>::from_value(&m.to_value()).unwrap(), m);
        let t = (1u32, "x".to_string());
        assert_eq!(<(u32, String)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn missing_object_field_reads_null() {
        let obj = Value::Obj(vec![("a".into(), Value::Num(1.0))]);
        assert_eq!(obj.field("a"), &Value::Num(1.0));
        assert_eq!(obj.field("b"), &Value::Null);
    }
}
