//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the benchmarking surface it uses: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement is a calibrated wall-clock loop (warm-up, then the median of
//! several timed batches) printed as a one-line report per benchmark — no
//! HTML reports, statistics engine, or saved baselines. `--test` (or any
//! `--exact`/libtest-style invocation from `cargo test`) runs each routine
//! once so benches double as smoke tests.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(60);
const MEASURE: Duration = Duration::from_millis(240);
const SAMPLES: usize = 5;

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    ran: usize,
}

impl Criterion {
    /// Builds a driver from the process arguments (`--test` → run each
    /// routine once; a bare argument filters benchmarks by substring).
    pub fn from_args() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" | "--exact" | "--list" => test_mode = true,
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { test_mode, filter, ran: 0 }
    }

    fn selected(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.selected(id) {
            let mut b = Bencher { test_mode: self.test_mode, measured: None };
            routine(&mut b);
            report(id, &b);
            self.ran += 1;
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Prints the closing line of the run.
    pub fn final_summary(&self) {
        println!("\nbenchmarks complete: {} run", self.ran);
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `routine` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        if self.criterion.selected(&full) {
            let mut b = Bencher { test_mode: self.criterion.test_mode, measured: None };
            routine(&mut b, input);
            report(&full, &b);
            self.criterion.ran += 1;
        }
        self
    }

    /// Benchmarks `routine` under `name` within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        if self.criterion.selected(&full) {
            let mut b = Bencher { test_mode: self.criterion.test_mode, measured: None };
            let mut routine = routine;
            routine(&mut b);
            report(&full, &b);
            self.criterion.ran += 1;
        }
        self
    }

    /// Ends the group (upstream flushes reports here; ours are streamed).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Just the parameter as the identifier.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Runs and times one routine.
pub struct Bencher {
    test_mode: bool,
    measured: Option<f64>,
}

impl Bencher {
    /// Calibrates and measures `routine`, recording nanoseconds/iteration.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            black_box(routine());
            self.measured = Some(f64::NAN);
            return;
        }
        // Calibration: double the batch size until one batch fills the
        // warm-up window, which also warms caches and branch predictors.
        let mut batch = 1u64;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= WARMUP || batch >= 1 << 30 {
                break elapsed.as_secs_f64() / batch as f64;
            }
            batch *= 2;
        };
        // Measurement: several batches sized to split the measurement
        // window, reported as the median (robust to scheduler noise).
        let sample_iters =
            ((MEASURE.as_secs_f64() / SAMPLES as f64 / per_iter).ceil() as u64).max(1);
        let mut samples = [0f64; SAMPLES];
        for s in &mut samples {
            let start = Instant::now();
            for _ in 0..sample_iters {
                black_box(routine());
            }
            *s = start.elapsed().as_secs_f64() / sample_iters as f64;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.measured = Some(samples[SAMPLES / 2] * 1e9);
    }
}

fn report(id: &str, b: &Bencher) {
    match b.measured {
        Some(ns) if ns.is_nan() => println!("{id:<48} ok (test mode)"),
        Some(ns) => println!("{id:<48} time: [{}]", format_ns(ns)),
        None => println!("{id:<48} (no measurement)"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_compose() {
        assert_eq!(BenchmarkId::new("f", 64).0, "f/64");
        assert_eq!(BenchmarkId::from_parameter(128).0, "128");
    }

    #[test]
    fn formats_are_scaled() {
        assert_eq!(format_ns(12.34), "12.3 ns");
        assert_eq!(format_ns(12_340.0), "12.34 µs");
        assert_eq!(format_ns(12_340_000.0), "12.34 ms");
    }
}
