//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the slice of proptest it uses: the [`strategy::Strategy`] trait with
//! `prop_map` / `prop_filter` / `prop_flat_map` / `prop_recursive`, range and
//! regex-literal strategies, `collection::vec`, `option::of`,
//! `sample::select`, `char::range`, and the `proptest!` / `prop_assert!` /
//! `prop_oneof!` macros.
//!
//! Differences from upstream: generation is seeded deterministically (no
//! persisted failure file) and failing cases are **not shrunk** — the assert
//! fires with the unshrunk input. That keeps the vendored crate small while
//! preserving the tests' ability to find violations.

// The `proptest!` macro expands in consumer crates that may not depend on
// `rand` themselves; give the expansion a path through this crate.
#[doc(hidden)]
pub use rand as __rand;

pub mod strategy {
    //! The core [`Strategy`] trait and combinators.

    use rand::prelude::*;
    use std::sync::Arc;

    /// A recipe for generating values of `Self::Value` from an RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Discards generated values failing `pred` (bounded retries).
        fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, whence: whence.into(), pred }
        }

        /// Feeds each generated value into `f` to pick a dependent strategy.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Builds a recursive strategy: `self` is the leaf case and `recurse`
        /// wraps an inner strategy into a branch case, applied up to `depth`
        /// levels. The size-tuning parameters of upstream proptest are
        /// accepted but unused.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let leaf = leaf.clone();
                let branch = recurse(strat).boxed();
                strat = BoxedStrategy(Arc::new(move |rng: &mut SmallRng| {
                    // Lean toward leaves so trees stay small.
                    if rng.gen_bool(0.4) {
                        leaf.generate(rng)
                    } else {
                        branch.generate(rng)
                    }
                }));
            }
            strat
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(move |rng: &mut SmallRng| self.generate(rng)))
        }
    }

    /// A cloneable type-erased strategy.
    pub struct BoxedStrategy<V>(pub(crate) Arc<dyn Fn(&mut SmallRng) -> V>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut SmallRng) -> V {
            (self.0)(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut SmallRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter exhausted 1000 tries: {}", self.whence);
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut SmallRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between type-erased alternatives ([`crate::prop_oneof!`]).
    pub struct Oneof<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Clone for Oneof<V> {
        fn clone(&self) -> Self {
            Oneof { arms: self.arms.clone() }
        }
    }

    impl<V> Oneof<V> {
        /// A strategy choosing uniformly among `arms`.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Oneof { arms }
        }
    }

    impl<V> Strategy for Oneof<V> {
        type Value = V;
        fn generate(&self, rng: &mut SmallRng) -> V {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    impl<T: rand::SampleUniform + Copy + 'static> Strategy for std::ops::Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T: rand::SampleUniform + Copy + 'static> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut SmallRng) -> String {
            crate::string::generate_from_regex(self, rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+)),*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    );
}

pub mod arbitrary {
    //! `any::<T>()` for primitive types.

    use crate::strategy::Strategy;
    use rand::prelude::*;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// One uniformly distributed value.
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut SmallRng) -> bool {
            rng.gen()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut SmallRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut SmallRng) -> f32 {
            // Modest symmetric span: plenty for the numeric properties here.
            rng.gen_range(-1.0e6f32..1.0e6)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut SmallRng) -> f64 {
            rng.gen_range(-1.0e9f64..1.0e9)
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy over `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use rand::prelude::*;

    /// Inclusive length bounds for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use rand::prelude::*;

    /// The strategy returned by [`of`].
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Option<S::Value> {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `Some` of the inner strategy most of the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod sample {
    //! Sampling from fixed collections.

    use crate::strategy::Strategy;
    use rand::prelude::*;

    /// The strategy returned by [`select`].
    #[derive(Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }

    /// A uniform choice from `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "sample::select needs options");
        Select { options }
    }
}

pub mod char {
    //! `char` strategies.

    use crate::strategy::Strategy;
    use rand::prelude::*;

    /// The strategy returned by [`range`].
    #[derive(Clone, Copy, Debug)]
    pub struct CharRange {
        lo: u32,
        hi: u32,
    }

    impl Strategy for CharRange {
        type Value = char;
        fn generate(&self, rng: &mut SmallRng) -> char {
            loop {
                if let Some(c) = char::from_u32(rng.gen_range(self.lo..=self.hi)) {
                    return c;
                }
            }
        }
    }

    /// Chars drawn uniformly from `lo..=hi` (surrogate gaps skipped).
    pub fn range(lo: char, hi: char) -> CharRange {
        assert!(lo <= hi, "char::range: empty range");
        CharRange { lo: lo as u32, hi: hi as u32 }
    }
}

pub mod string {
    //! Generation of strings from the regex subset used as literal strategies.
    //!
    //! Supported syntax: literal characters, `[...]` classes with ranges and
    //! literal members (trailing `-` literal), and the quantifiers `{n}`,
    //! `{m,n}`, `?`, `*`, `+` (unbounded repeats capped at 8).

    use rand::prelude::*;

    #[derive(Debug, Clone)]
    enum Atom {
        Literal(char),
        Class(Vec<(char, char)>),
    }

    /// Generates one string matching `pattern`.
    pub fn generate_from_regex(pattern: &str, rng: &mut SmallRng) -> String {
        let atoms = parse(pattern);
        let mut out = String::new();
        for (atom, lo, hi) in &atoms {
            let count = rng.gen_range(*lo..=*hi);
            for _ in 0..count {
                match atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(ranges) => {
                        // Weight ranges by size for a uniform draw.
                        let total: u32 = ranges.iter().map(|(a, b)| *b as u32 - *a as u32 + 1).sum();
                        let mut k = rng.gen_range(0..total);
                        for (a, b) in ranges {
                            let span = *b as u32 - *a as u32 + 1;
                            if k < span {
                                out.push(char::from_u32(*a as u32 + k).expect("class char"));
                                break;
                            }
                            k -= span;
                        }
                    }
                }
            }
        }
        out
    }

    fn parse(pattern: &str) -> Vec<(Atom, usize, usize)> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let close = chars[i + 1..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| p + i + 1)
                        .unwrap_or_else(|| panic!("unclosed class in regex {pattern:?}"));
                    let members = &chars[i + 1..close];
                    i = close + 1;
                    Atom::Class(parse_class(members, pattern))
                }
                '\\' => {
                    i += 2;
                    Atom::Literal(chars[i - 1])
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // Optional quantifier.
            let (lo, hi) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i + 1..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| p + i + 1)
                        .unwrap_or_else(|| panic!("unclosed quantifier in regex {pattern:?}"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().expect("quantifier lower bound"),
                            n.trim().parse().expect("quantifier upper bound"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("quantifier count");
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            };
            atoms.push((atom, lo, hi));
        }
        atoms
    }

    fn parse_class(members: &[char], pattern: &str) -> Vec<(char, char)> {
        assert!(!members.is_empty(), "empty class in regex {pattern:?}");
        let mut ranges = Vec::new();
        let mut j = 0;
        while j < members.len() {
            if j + 2 < members.len() && members[j + 1] == '-' {
                assert!(members[j] <= members[j + 2], "inverted range in regex {pattern:?}");
                ranges.push((members[j], members[j + 2]));
                j += 3;
            } else {
                // Covers trailing `-` (literal) and ordinary members.
                ranges.push((members[j], members[j]));
                j += 1;
            }
        }
        ranges
    }
}

pub mod test_runner {
    //! Test-loop configuration.

    /// Knobs accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
        /// Accepted for compatibility; this vendored crate never shrinks.
        pub max_shrink_iters: u32,
        /// Base RNG seed for the deterministic case stream.
        pub seed: u64,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_shrink_iters: 0, seed: 0x5EED_CAFE }
        }
    }

    impl ProptestConfig {
        /// A default config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases, ..Self::default() }
        }
    }
}

pub mod prelude {
    //! The glob-import surface mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        cfg = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::strategy::Strategy as _;
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    <$crate::__rand::rngs::SmallRng as $crate::__rand::SeedableRng>::seed_from_u64(
                        __config.seed,
                    );
                for __case in 0..__config.cases {
                    $(let $pat = ($strat).generate(&mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Oneof::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_strings_match_shape() {
        use rand::prelude::*;
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..200 {
            let s = crate::string::generate_from_regex("[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "bad length: {s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec(1i32..100, 1..5),
            o in prop::option::of(Just(7u8)),
            c in prop::char::range('a', 'f'),
            pick in prop::sample::select(vec!["x", "y"]),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&n| (1..100).contains(&n)));
            prop_assert!(o.is_none() || o == Some(7));
            prop_assert!(('a'..='f').contains(&c));
            prop_assert!(pick == "x" || pick == "y");
        }

        #[test]
        fn oneof_and_maps(n in prop_oneof![Just(1u8), Just(2u8), 3u8..5]) {
            prop_assert!((1..5).contains(&n));
        }
    }
}
