//! Offline drop-in subset of `serde_json`: [`to_string`] / [`from_str`] over
//! the vendored `serde::Value` data model, with a hand-written JSON writer
//! and recursive-descent parser.

use serde::{Deserialize, Serialize, Value};

/// Serialisation/deserialisation error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Renders `value` as compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(*n, out),
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Obj(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; real serde_json errors here, but nothing in
        // this workspace serialises non-finite values, so null is a safe trap.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        // Integral values print without a fraction, matching serde_json.
        out.push_str(&format!("{}", n as i64));
    } else {
        // `{}` on f64 is the shortest representation that round-trips.
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of JSON input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.peek()?;
        if got != b {
            return Err(Error::new(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char, self.pos, got as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}, found `{}`",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}, found `{}`",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped runs wholesale.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0C}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uXXXX` with the low half.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            s.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let text = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        for json in ["null", "true", "false", "0", "-17", "1.5", "\"hi\"", "[]", "{}"] {
            let v = parse(json).unwrap();
            let mut out = String::new();
            write_value(&v, &mut out);
            assert_eq!(out, json);
        }
    }

    #[test]
    fn nested_round_trip() {
        let json = r#"{"a":[1,2,{"b":"x\ny"}],"c":null,"d":-2.25}"#;
        let v = parse(json).unwrap();
        let mut out = String::new();
        write_value(&v, &mut out);
        assert_eq!(out, json);
    }

    #[test]
    fn f64_precision_survives() {
        let x = 0.1f64 + 0.2;
        let text = to_string(&x).unwrap();
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""é😀""#).unwrap();
        assert_eq!(v, Value::Str("é😀".to_string()));
    }
}
