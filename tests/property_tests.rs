//! Property-based cross-crate tests: random grammar-valid SemQL trees must
//! survive the action round trip, lower to parseable SQL, and execute.

use proptest::prelude::*;
use valuenet::exec::execute;
use valuenet::schema::{ColumnId, ColumnType, DbSchema, SchemaBuilder, SchemaGraph, TableId};
use valuenet::semql::{
    actions_to_ast, ast_to_actions, to_sql, Agg, CmpOp, Filter, Order, QueryR, ResolvedValue,
    Select, SemQl, Superlative, ValueRef,
};
use valuenet::sql::{parse_select, AggFunc};
use valuenet::storage::Database;

/// The pets schema + data used by all properties.
fn pets_db() -> Database {
    let schema = SchemaBuilder::new("pets")
        .table(
            "student",
            &[
                ("stu_id", ColumnType::Number),
                ("name", ColumnType::Text),
                ("age", ColumnType::Number),
                ("home_country", ColumnType::Text),
            ],
        )
        .primary_key("student", "stu_id")
        .table("has_pet", &[("stu_id", ColumnType::Number), ("pet_id", ColumnType::Number)])
        .table(
            "pet",
            &[
                ("pet_id", ColumnType::Number),
                ("pet_type", ColumnType::Text),
                ("weight", ColumnType::Number),
            ],
        )
        .primary_key("pet", "pet_id")
        .foreign_key("has_pet", "stu_id", "student", "stu_id")
        .foreign_key("has_pet", "pet_id", "pet", "pet_id")
        .build();
    let mut db = Database::new(schema);
    let student = db.schema().table_by_name("student").unwrap();
    let has_pet = db.schema().table_by_name("has_pet").unwrap();
    let pet = db.schema().table_by_name("pet").unwrap();
    let countries = ["France", "Germany", "Spain"];
    for i in 0..12i64 {
        db.insert(
            student,
            vec![
                i.into(),
                format!("Student{i}").into(),
                (18 + (i * 3) % 14).into(),
                countries[i as usize % 3].into(),
            ],
        );
    }
    let types = ["dog", "cat", "bird"];
    for i in 0..10i64 {
        db.insert(
            pet,
            vec![i.into(), types[i as usize % 3].into(), (((i * 17) % 40) as f64).into()],
        );
        db.insert(has_pet, vec![(i % 12).into(), i.into()]);
    }
    db.rebuild_index();
    db
}

/// Strategy: a random `A` over the pets schema (column paired with its
/// owning table, so lowering always finds a join tree).
fn arb_agg(schema: &DbSchema) -> impl Strategy<Value = Agg> {
    let pairs: Vec<(ColumnId, TableId)> = schema
        .columns
        .iter()
        .enumerate()
        .skip(1)
        .map(|(i, c)| (ColumnId(i), c.table.expect("real columns have tables")))
        .collect();
    let num_pairs: Vec<(ColumnId, TableId)> = schema
        .columns
        .iter()
        .enumerate()
        .skip(1)
        .filter(|(_, c)| c.ty == ColumnType::Number)
        .map(|(i, c)| (ColumnId(i), c.table.unwrap()))
        .collect();
    let star_tables: Vec<TableId> = (0..schema.tables.len()).map(TableId).collect();
    prop_oneof![
        // plain column
        proptest::sample::select(pairs.clone()).prop_map(|(c, t)| Agg::plain(c, t)),
        // count(*)
        proptest::sample::select(star_tables).prop_map(Agg::count_star),
        // aggregated numeric column
        (
            proptest::sample::select(num_pairs),
            proptest::sample::select(vec![
                AggFunc::Max,
                AggFunc::Min,
                AggFunc::Sum,
                AggFunc::Avg,
                AggFunc::Count
            ])
        )
            .prop_map(|((c, t), f)| Agg::with(f, c, t)),
    ]
}

/// Strategy: a random flat filter (no nesting — nested queries are covered
/// by the corpus tests).
fn arb_filter(schema: &DbSchema, next_value: usize) -> impl Strategy<Value = (Filter, usize)> {
    let num_pairs: Vec<(ColumnId, TableId)> = schema
        .columns
        .iter()
        .enumerate()
        .skip(1)
        .filter(|(_, c)| c.ty == ColumnType::Number)
        .map(|(i, c)| (ColumnId(i), c.table.unwrap()))
        .collect();
    let text_pairs: Vec<(ColumnId, TableId)> = schema
        .columns
        .iter()
        .enumerate()
        .skip(1)
        .filter(|(_, c)| c.ty == ColumnType::Text)
        .map(|(i, c)| (ColumnId(i), c.table.unwrap()))
        .collect();
    prop_oneof![
        (
            proptest::sample::select(num_pairs.clone()),
            proptest::sample::select(vec![
                CmpOp::Eq,
                CmpOp::Ne,
                CmpOp::Lt,
                CmpOp::Gt,
                CmpOp::Le,
                CmpOp::Ge
            ])
        )
            .prop_map(move |((c, t), op)| {
                (Filter::Cmp { op, agg: Agg::plain(c, t), value: ValueRef(next_value) },
                 next_value + 1)
            }),
        proptest::sample::select(text_pairs.clone()).prop_map(move |(c, t)| {
            (Filter::Cmp { op: CmpOp::Eq, agg: Agg::plain(c, t), value: ValueRef(next_value) },
             next_value + 1)
        }),
        proptest::sample::select(num_pairs).prop_map(move |(c, t)| {
            (
                Filter::Between {
                    agg: Agg::plain(c, t),
                    low: ValueRef(next_value),
                    high: ValueRef(next_value + 1),
                },
                next_value + 2,
            )
        }),
        proptest::sample::select(text_pairs).prop_map(move |(c, t)| {
            (Filter::Like { agg: Agg::plain(c, t), value: ValueRef(next_value), negated: false },
             next_value + 1)
        }),
    ]
}

fn arb_query() -> impl Strategy<Value = (SemQl, Vec<ResolvedValue>)> {
    let db = pets_db();
    let schema = db.schema().clone();
    let schema2 = schema.clone();
    let aggs = prop::collection::vec(arb_agg(&schema), 1..=3);
    let order = proptest::option::of((any::<bool>(), arb_agg(&schema2)));
    let schema3 = schema.clone();
    (aggs, order, any::<bool>(), 0usize..3).prop_flat_map(move |(aggs, order, distinct, n_filters)| {
        let schema = schema3.clone();
        // Chain filters, tracking the value counter manually.
        let filters = prop::collection::vec(arb_filter(&schema, 0), n_filters..=n_filters);
        (Just(aggs), Just(order), Just(distinct), filters).prop_map(
            move |(aggs, order, distinct, filters)| {
                let mut value_count = 0usize;
                let mut filter_tree: Option<Filter> = None;
                for (f, _) in filters {
                    // Renumber the value refs sequentially.
                    let f = renumber(f, &mut value_count);
                    filter_tree = Some(match filter_tree.take() {
                        Some(acc) => Filter::And(Box::new(acc), Box::new(f)),
                        None => f,
                    });
                }
                let mut select = Select::new(aggs);
                select.distinct = distinct;
                let q = QueryR {
                    select,
                    order: order.map(|(desc, agg)| Order { desc, agg }),
                    superlative: None,
                    filter: filter_tree,
                };
                let values: Vec<ResolvedValue> =
                    (0..value_count).map(|i| ResolvedValue::new(sample_value(i))).collect();
                (SemQl::Single(Box::new(q)), values)
            },
        )
    })
}

fn renumber(f: Filter, counter: &mut usize) -> Filter {
    let mut next = || {
        let v = ValueRef(*counter);
        *counter += 1;
        v
    };
    match f {
        Filter::Cmp { op, agg, .. } => Filter::Cmp { op, agg, value: next() },
        Filter::Between { agg, .. } => {
            Filter::Between { agg, low: next(), high: next() }
        }
        Filter::Like { agg, negated, .. } => Filter::Like { agg, value: next(), negated },
        other => other,
    }
}

fn sample_value(i: usize) -> String {
    ["France", "20", "dog", "7", "Germany", "12"][i % 6].to_string()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any grammar-valid tree survives actions → AST → actions.
    #[test]
    fn actions_round_trip((tree, _values) in arb_query()) {
        let actions = ast_to_actions(&tree);
        let back = actions_to_ast(&actions).expect("canonical actions parse");
        prop_assert_eq!(back, tree);
    }

    /// Any grammar-valid tree lowers to SQL that parses, prints, reparses
    /// identically, and executes against the database.
    #[test]
    fn lowering_produces_executable_sql((tree, values) in arb_query()) {
        let db = pets_db();
        let graph = SchemaGraph::new(db.schema());
        let sql = to_sql(&tree, db.schema(), &graph, &values).expect("lowers");
        let text = sql.to_string();
        let reparsed = parse_select(&text)
            .unwrap_or_else(|e| panic!("unparseable lowering: {text} ({e})"));
        prop_assert_eq!(&reparsed, &sql);
        execute(&db, &sql).unwrap_or_else(|e| panic!("execution failed: {text} ({e})"));
    }

    /// Superlatives always lower to ORDER BY ... LIMIT with the right bound.
    #[test]
    fn superlative_limit_respected(k in 1u64..6, most in any::<bool>()) {
        let db = pets_db();
        let schema = db.schema();
        let graph = SchemaGraph::new(schema);
        let student = schema.table_by_name("student").unwrap();
        let age = schema.column_by_name(student, "age").unwrap();
        let name = schema.column_by_name(student, "name").unwrap();
        let tree = SemQl::Single(Box::new(QueryR {
            select: Select::new(vec![Agg::plain(name, student)]),
            order: None,
            superlative: Some(Superlative {
                most,
                limit: ValueRef(0),
                agg: Agg::plain(age, student),
            }),
            filter: None,
        }));
        let sql = to_sql(&tree, schema, &graph, &[ResolvedValue::new(k.to_string())]).unwrap();
        prop_assert_eq!(sql.limit, Some(k));
        let rs = execute(&db, &sql).unwrap();
        prop_assert!(rs.rows.len() <= k as usize);
        prop_assert!(rs.ordered);
    }
}
