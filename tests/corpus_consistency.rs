//! Cross-crate integration: the synthetic corpus must be self-consistent
//! through every layer — gold SemQL lowers to SQL that parses, prints,
//! reparses and executes to the same result as the stored gold SQL text.

use valuenet::dataset::{generate, CorpusConfig};
use valuenet::exec::execute;
use valuenet::schema::SchemaGraph;
use valuenet::semql::{actions_to_ast, ast_to_actions, semql_from_sql, to_sql, ResolvedValue};
use valuenet::sql::parse_select;

fn corpus() -> valuenet::dataset::Corpus {
    generate(&CorpusConfig {
        seed: 99,
        train_size: 150,
        dev_size: 50,
        rows_per_table: 18,
        ..CorpusConfig::default()
    })
}

#[test]
fn gold_semql_lowers_to_equivalent_sql() {
    let c = corpus();
    for s in c.train.iter().chain(&c.dev) {
        let db = c.db(s);
        let graph = SchemaGraph::new(db.schema());
        let values: Vec<ResolvedValue> = s.values.iter().map(ResolvedValue::new).collect();
        let lowered =
            to_sql(&s.semql, db.schema(), &graph, &values).expect("gold tree lowers");
        let stored = parse_select(&s.sql).expect("stored gold SQL parses");
        let r1 = execute(db, &lowered).expect("lowered SQL executes");
        let r2 = execute(db, &stored).expect("stored SQL executes");
        assert!(
            r1.result_eq(&r2),
            "lowering disagrees with stored SQL for: {}\nlowered: {lowered}\nstored: {}",
            s.question,
            s.sql
        );
    }
}

#[test]
fn printed_sql_round_trips_through_parser() {
    let c = corpus();
    for s in c.train.iter().chain(&c.dev) {
        let stmt = parse_select(&s.sql).expect("parses");
        let reparsed = parse_select(&stmt.to_string()).expect("printed form parses");
        assert_eq!(stmt, reparsed, "print/parse round trip changed: {}", s.sql);
    }
}

#[test]
fn action_sequences_are_transition_valid() {
    use valuenet::semql::TransitionSystem;
    let c = corpus();
    for s in c.train.iter().take(80) {
        let actions = ast_to_actions(&s.semql);
        let mut ts = TransitionSystem::new();
        for a in &actions {
            if let Some(idx) = a.sketch_index() {
                assert!(
                    ts.valid_sketch_actions().contains(&idx),
                    "gold action {a:?} not offered by the transition system for: {}",
                    s.question
                );
            }
            ts.apply(a).expect("gold action applies");
        }
        assert!(ts.is_complete());
        assert_eq!(actions_to_ast(&actions).unwrap(), s.semql);
    }
}

#[test]
fn sql_import_round_trips_gold_queries() {
    // SQL → SemQL → SQL must preserve execution semantics for the corpus.
    let c = corpus();
    let mut imported_ok = 0;
    let mut total = 0;
    for s in c.train.iter().chain(&c.dev) {
        let db = c.db(s);
        let stmt = parse_select(&s.sql).unwrap();
        total += 1;
        let Ok(import) = semql_from_sql(db.schema(), &stmt) else { continue };
        imported_ok += 1;
        let graph = SchemaGraph::new(db.schema());
        let values: Vec<ResolvedValue> =
            import.values.iter().map(ResolvedValue::new).collect();
        let relowered = to_sql(&import.semql, db.schema(), &graph, &values)
            .expect("imported tree lowers");
        let r1 = execute(db, &stmt).unwrap();
        let r2 = execute(db, &relowered).expect("re-lowered SQL executes");
        assert!(
            r1.result_eq(&r2),
            "import/lower changed semantics for: {}\noriginal: {}\nrelowered: {relowered}",
            s.question,
            s.sql
        );
    }
    // The importer must cover the overwhelming majority of gold queries.
    assert!(
        imported_ok * 10 >= total * 9,
        "importer covered only {imported_ok}/{total} gold queries"
    );
}

#[test]
fn gold_values_appear_in_gold_sql() {
    let c = corpus();
    for s in c.train.iter().chain(&c.dev) {
        for (v, info) in s.values.iter().zip(&s.value_infos) {
            // LIKE fragments appear wrapped in wildcards; everything else
            // appears as a literal or a LIMIT count.
            let sql = s.sql.to_lowercase();
            assert!(
                sql.contains(&v.to_lowercase()),
                "gold value '{v}' (difficulty {:?}) missing from SQL: {}",
                info.difficulty,
                s.sql
            );
        }
    }
}
