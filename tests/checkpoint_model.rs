//! End-to-end checkpoint integration: a trained model saved to disk and
//! loaded into a fresh model must be indistinguishable from the original —
//! bit-identical parameters and identical greedy and beam-4 predictions —
//! and the packed/quantized inference paths must not change what the f32
//! model predicts.

use valuenet::core::{
    assemble_candidates, build_input_opts, train, ModelConfig, ModelInput, TrainConfig, ValueMode,
};
use valuenet::dataset::{generate, Corpus, CorpusConfig};
use valuenet::nn::{load_checkpoint, save_checkpoint, save_checkpoint_quantized, CheckpointFormat};
use valuenet::preprocess::preprocess;

fn tmp_path(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!("vn_ckpt_model_{tag}_{}.jsonl", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

fn small_corpus() -> Corpus {
    generate(&CorpusConfig {
        seed: 23,
        train_size: 30,
        dev_size: 10,
        rows_per_table: 6,
        ..CorpusConfig::default()
    })
}

fn trained() -> (valuenet::core::Pipeline, Corpus) {
    let corpus = small_corpus();
    let mut cfg = ModelConfig::tiny();
    cfg.beam_width = 4;
    let (pipeline, _) = train(
        &corpus,
        ValueMode::Light,
        cfg,
        &TrainConfig { epochs: 2, threads: 1, ..Default::default() },
    );
    (pipeline, corpus)
}

fn dev_inputs(pipeline: &valuenet::core::Pipeline, corpus: &Corpus) -> Vec<ModelInput> {
    corpus
        .dev
        .iter()
        .take(6)
        .map(|s| {
            let db = corpus.db(s);
            let pre = preprocess(&s.question, db, &pipeline.ner, &pipeline.cand_cfg);
            let cands = assemble_candidates(db, &pre, ValueMode::Light, Some(&s.values), false);
            build_input_opts(db, &pre, &cands, &pipeline.model.vocab, pipeline.model.input_options())
        })
        .collect()
}

#[test]
fn f32_checkpoint_restores_params_and_predictions() {
    let (mut pipeline, corpus) = trained();
    let inputs = dev_inputs(&pipeline, &corpus);
    let path = tmp_path("f32");

    save_checkpoint(&path, &pipeline.model.params).expect("checkpoint saves");
    let greedy_before: Vec<_> = inputs.iter().map(|i| pipeline.model.predict(i)).collect();
    let beam_before: Vec<_> = inputs.iter().map(|i| pipeline.model.predict_beam(i)).collect();

    let (restored, format) = load_checkpoint(&path).expect("checkpoint loads");
    assert_eq!(format, CheckpointFormat::F32);

    // Every tensor must come back bit-identical before it goes anywhere
    // near the model.
    assert_eq!(restored.len(), pipeline.model.params.len());
    for id in pipeline.model.params.ids() {
        assert_eq!(restored.name(id), pipeline.model.params.name(id));
        assert_eq!(restored.shape(id), pipeline.model.params.shape(id));
        let (a, b) = (restored.data(id), pipeline.model.params.data(id));
        assert!(
            a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
            "param {} not bit-identical after round trip",
            pipeline.model.params.name(id)
        );
    }

    pipeline.model.load_params(restored).expect("restored params load into the model");
    for (i, input) in inputs.iter().enumerate() {
        assert_eq!(pipeline.model.predict(input), greedy_before[i], "greedy prediction changed");
        let beam = pipeline.model.predict_beam(input);
        assert_eq!(beam.len(), beam_before[i].len());
        for (h, before) in beam.iter().zip(&beam_before[i]) {
            assert_eq!(h.0, before.0, "beam-4 hypothesis changed after checkpoint reload");
            assert!(h.1.to_bits() == before.1.to_bits(), "beam score changed");
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn packed_inference_path_matches_tape_path() {
    let (pipeline, corpus) = trained();
    for input in &dev_inputs(&pipeline, &corpus) {
        let oracle = pipeline.model.predict_beam_unbatched(input);
        valuenet::nn::set_packed_inference(false);
        let tape = pipeline.model.predict_beam(input);
        valuenet::nn::set_packed_inference(true);
        let packed = pipeline.model.predict_beam(input);
        assert_eq!(tape, packed, "packed inference diverged from the tape path");
        assert_eq!(
            packed.first().map(|h| &h.0),
            oracle.first().map(|h| &h.0),
            "batched beam diverged from the unbatched oracle"
        );
    }
}

#[test]
fn quantized_checkpoint_round_trips_and_predicts_deterministically() {
    let (mut pipeline, corpus) = trained();
    let inputs = dev_inputs(&pipeline, &corpus);
    let path = tmp_path("int8");

    save_checkpoint_quantized(&path, &pipeline.model.params).expect("int8 checkpoint saves");
    let (restored, format) = load_checkpoint(&path).expect("int8 checkpoint loads");
    assert_eq!(format, CheckpointFormat::Int8);
    pipeline.model.load_params(restored).expect("int8 params load into the model");

    // Quantized inference must be deterministic: two sweeps over the same
    // inputs give identical hypotheses and bit-identical scores.
    pipeline.model.params.set_quantized(true);
    let first: Vec<_> = inputs.iter().map(|i| pipeline.model.predict_beam(i)).collect();
    let second: Vec<_> = inputs.iter().map(|i| pipeline.model.predict_beam(i)).collect();
    pipeline.model.params.set_quantized(false);
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a, b, "quantized beam search is not deterministic");
    }
    let _ = std::fs::remove_file(&path);
}
