//! Tier-1 wiring of the verification layer (`valuenet-verify`): a fuzz
//! smoke run of the differential oracle, printer idempotence over the
//! generated SQL corpus, bit-identical replay, and gradient checks for
//! representative `valuenet-nn` modules.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use valuenet::nn::{Linear, Lstm, MultiHeadAttention, ParamStore};
use valuenet::tensor::Tensor;
use valuenet_verify::{
    case_seed, gen_database, gen_semql, grad_check, run_case, run_fuzz, CaseOutcome, FuzzConfig,
    GradCheckConfig,
};

#[test]
fn differential_fuzz_smoke() {
    let report = run_fuzz(&FuzzConfig { cases: 60, seed: 42, inject_divergence: false });
    assert!(
        report.divergences.is_empty(),
        "executor and oracle diverged:\n{}",
        report.divergences[0].1
    );
    assert!(report.agreements > 50, "only {} agreements in 60 cases", report.agreements);
}

#[test]
fn injected_divergence_replays_bit_identically() {
    let seed = case_seed(1234, 3);
    let (CaseOutcome::Divergence { report: r1, .. }, CaseOutcome::Divergence { report: r2, .. }) =
        (run_case(seed, true), run_case(seed, true))
    else {
        panic!("injected corruption must produce a divergence");
    };
    assert_eq!(r1, r2, "replay is not bit-identical");
}

/// Satellite of the printer round-trip work: parse → print → parse must be
/// idempotent over the *generated* corpus, not just hand-picked strings.
#[test]
fn printer_round_trip_is_idempotent_over_generated_corpus() {
    use valuenet::schema::SchemaGraph;
    use valuenet::semql::to_sql;

    let mut checked = 0;
    for i in 0..40 {
        let mut rng = SmallRng::seed_from_u64(case_seed(5150, i));
        let db = gen_database(&mut rng);
        let (tree, values) = gen_semql(&mut rng, &db);
        let graph = SchemaGraph::new(db.schema());
        let Ok(stmt) = to_sql(&tree, db.schema(), &graph, &values) else {
            continue;
        };
        let sql = stmt.to_string();
        let parsed = valuenet::sql::check_round_trip(&sql)
            .unwrap_or_else(|e| panic!("round trip failed: {e}"));
        assert_eq!(parsed, stmt, "print → parse changed the AST for: {sql}");
        // Idempotence: printing the reparsed statement is a fixed point.
        assert_eq!(parsed.to_string(), sql, "printing is not idempotent for: {sql}");
        checked += 1;
    }
    assert!(checked >= 35, "generator produced too few lowerable statements: {checked}");
}

#[test]
fn linear_and_lstm_gradients_check_out() {
    let mut ps = ParamStore::new();
    let mut rng = SmallRng::seed_from_u64(21);
    let lin = Linear::new(&mut ps, &mut rng, "lin", 0, 3, 2);
    let lstm = Lstm::new(&mut ps, &mut rng, "lstm", 0, 2, 3);
    let x = Tensor::from_vec(4, 3, (0..12).map(|i| ((i * 5 % 11) as f32) / 11.0 - 0.5).collect());
    let report = grad_check(&mut ps, &GradCheckConfig::default(), |g, ps| {
        let xv = g.input(x.clone());
        let mid = lin.forward(g, ps, xv);
        let t = g.tanh(mid);
        let (hs, _) = lstm.run(g, ps, t);
        let sq = g.mul(hs, hs);
        g.sum_all(sq)
    });
    assert!(report.within(1e-3), "linear+lstm chain: {report}");
}

#[test]
fn attention_gradients_check_out() {
    let mut ps = ParamStore::new();
    let mut rng = SmallRng::seed_from_u64(22);
    let attn = MultiHeadAttention::new(&mut ps, &mut rng, "attn", 0, 4, 2);
    let x = Tensor::from_vec(3, 4, (0..12).map(|i| ((i * 3 % 7) as f32) / 7.0 - 0.4).collect());
    let report = grad_check(&mut ps, &GradCheckConfig::default(), |g, ps| {
        let xv = g.input(x.clone());
        let y = attn.forward(g, ps, xv, None);
        let sq = g.mul(y, y);
        g.sum_all(sq)
    });
    assert!(report.within(1e-3), "attention: {report}");
}
