//! # ValueNet — a natural-language-to-SQL system that learns from database information
//!
//! Rust reproduction of Brunner & Stockinger, *ValueNet* (ICDE 2021). This
//! facade crate re-exports the public API of every subsystem:
//!
//! - [`tensor`] / [`nn`]: from-scratch autodiff and neural-network layers
//!   (the substitute for the paper's PyTorch + pretrained BERT stack).
//! - [`par`]: deterministic scoped-thread data parallelism — training and
//!   evaluation fan out over workers with results bit-identical to a
//!   sequential run (see `DESIGN.md`, "Threading & determinism model").
//! - [`schema`]: database schema model, schema graph and Steiner-tree join
//!   resolution with primary-/foreign-key `ON` clauses.
//! - [`sql`] / [`storage`] / [`exec`]: SQL front-end, in-memory database with
//!   an inverted index over the base data, and a query executor — the
//!   substrate required by the Spider *Execution Accuracy* metric.
//! - [`semql`]: the SemQL 2.0 grammar (the paper's Fig. 2), its transition
//!   system for grammar-constrained decoding, and deterministic SemQL→SQL
//!   lowering.
//! - [`preprocess`]: question/schema hints, NER, value-candidate generation
//!   and validation (the paper's Section IV pipeline).
//! - [`dataset`]: a synthetic Spider-like corpus generator (substitute for
//!   the Spider dataset; see `DESIGN.md`).
//! - [`core`]: the neural encoder/decoder with pointer networks, training,
//!   and the end-to-end pipeline for both *ValueNet* and *ValueNet light*.
//! - [`eval`]: Execution Accuracy, Exact-Matching Accuracy, difficulty
//!   grouping and error analysis.
//! - [`obs`]: zero-dependency tracing, metrics and profiling — hierarchical
//!   spans, counters/histograms, and summary/JSONL/Chrome-trace sinks (see
//!   `DESIGN.md`, "Observability").
//! - [`serve`]: the fault-tolerant serving engine — bounded-queue worker
//!   pool with panic isolation, per-request deadlines, admission control
//!   and a line-delimited JSON socket protocol (see `DESIGN.md`, "Serving
//!   & fault tolerance").
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use valuenet_core as core;
pub use valuenet_dataset as dataset;
pub use valuenet_par as par;
pub use valuenet_eval as eval;
pub use valuenet_exec as exec;
pub use valuenet_nn as nn;
pub use valuenet_obs as obs;
pub use valuenet_preprocess as preprocess;
pub use valuenet_schema as schema;
pub use valuenet_semql as semql;
pub use valuenet_serve as serve;
pub use valuenet_sql as sql;
pub use valuenet_storage as storage;
pub use valuenet_tensor as tensor;
