//! Command-line interface: train a ValueNet model, save it, evaluate it,
//! and translate questions against the corpus databases.
//!
//! ```text
//! valuenet-cli train --out model.json [--mode light|full] [--train 2000]
//!                    [--dev 300] [--epochs 8] [--seed 42] [--threads N]
//! valuenet-cli eval  --model model.json [--threads N]
//! valuenet-cli ask   --model model.json --db student_pets "How many pets ...?"
//! valuenet-cli repl  --model model.json --db student_pets
//! valuenet-cli serve --model model.json --socket valuenet.sock [--workers N]
//! valuenet-cli dbs   [--seed 42]
//! ```
//!
//! `--threads N` caps the worker threads used by training and evaluation
//! (default: all available cores). Results are bit-identical for any value —
//! the flag only changes wall-clock time.

use std::io::{BufRead, Write};
use valuenet::core::{
    evaluate_with_threads, train, ModelConfig, Pipeline, TrainConfig, ValueMode, ValueNetModel,
};
use valuenet::dataset::{generate, Corpus, CorpusConfig};
use valuenet::eval::ExecOutcome;
use valuenet::preprocess::StatisticalNer;

/// Everything needed to reload a trained pipeline: weights, the trained
/// NER, the mode, and the corpus configuration (seed ⇒ identical DBs).
#[derive(serde::Serialize, serde::Deserialize)]
struct Bundle {
    model: String,
    ner: StatisticalNer,
    mode: String,
    corpus: CorpusConfig,
}

fn arg(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn arg_usize(args: &[String], name: &str, default: usize) -> usize {
    arg(args, name).and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn load_bundle(path: &str) -> (Pipeline, Corpus) {
    let data = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fatal(&format!("cannot read {path}: {e}")));
    let bundle: Bundle = serde_json::from_str(&data)
        .unwrap_or_else(|e| fatal(&format!("cannot parse {path}: {e}")));
    let model = ValueNetModel::from_json(&bundle.model)
        .unwrap_or_else(|e| fatal(&format!("cannot restore model: {e}")));
    let mode = match bundle.mode.as_str() {
        "light" => ValueMode::Light,
        "novalue" => ValueMode::NoValue,
        _ => ValueMode::Full,
    };
    eprintln!("regenerating corpus (seed {})...", bundle.corpus.seed);
    let corpus = generate(&bundle.corpus);
    (Pipeline::new(model, mode, bundle.ner), corpus)
}

fn fatal(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

fn cmd_train(args: &[String]) {
    let out = arg(args, "--out").unwrap_or_else(|| "model.json".to_string());
    let mode_name = arg(args, "--mode").unwrap_or_else(|| "full".to_string());
    let mode = match mode_name.as_str() {
        "light" => ValueMode::Light,
        "full" => ValueMode::Full,
        other => fatal(&format!("unknown mode '{other}' (use light|full)")),
    };
    let corpus_cfg = CorpusConfig {
        seed: arg_usize(args, "--seed", 42) as u64,
        train_size: arg_usize(args, "--train", 2000),
        dev_size: arg_usize(args, "--dev", 300),
        rows_per_table: arg_usize(args, "--rows", 30),
        surface_weights: valuenet::dataset::DEFAULT_SURFACE_WEIGHTS,
    };
    eprintln!(
        "generating corpus ({} train / {} dev)...",
        corpus_cfg.train_size, corpus_cfg.dev_size
    );
    let corpus = generate(&corpus_cfg);
    let tc = TrainConfig {
        epochs: arg_usize(args, "--epochs", 8),
        verbose: true,
        threads: arg_usize(args, "--threads", 0),
        ..Default::default()
    };
    eprintln!("training ValueNet ({mode_name} mode, {} epochs)...", tc.epochs);
    let (pipeline, report) = train(&corpus, mode, ModelConfig::default(), &tc);
    eprintln!(
        "trained on {} samples ({} skipped), final loss {:.4}",
        report.trained_samples,
        report.skipped_samples,
        report.epoch_losses.last().copied().unwrap_or(f32::NAN)
    );
    let bundle = Bundle {
        model: pipeline.model.to_json(),
        ner: pipeline.ner.clone(),
        mode: mode_name,
        corpus: corpus_cfg,
    };
    std::fs::write(&out, serde_json::to_string(&bundle).expect("serialisable"))
        .unwrap_or_else(|e| fatal(&format!("cannot write {out}: {e}")));
    println!("saved model bundle to {out}");
    if let Some(ckpt) = arg(args, "--save") {
        valuenet::nn::save_checkpoint(&ckpt, &pipeline.model.params)
            .unwrap_or_else(|e| fatal(&format!("cannot write checkpoint {ckpt}: {e}")));
        println!("saved f32 checkpoint to {ckpt}");
    }
    if let Some(ckpt) = arg(args, "--save-quant") {
        valuenet::nn::save_checkpoint_quantized(&ckpt, &pipeline.model.params)
            .unwrap_or_else(|e| fatal(&format!("cannot write checkpoint {ckpt}: {e}")));
        println!("saved int8 checkpoint to {ckpt}");
    }
}

fn cmd_eval(args: &[String]) {
    let path = arg(args, "--model").unwrap_or_else(|| fatal("--model is required"));
    let threads = arg_usize(args, "--threads", 0);
    let (mut pipeline, corpus) = load_bundle(&path);
    if let Some(ckpt) = arg(args, "--load") {
        let (params, format) = valuenet::nn::load_checkpoint(&ckpt)
            .unwrap_or_else(|e| fatal(&format!("cannot load checkpoint {ckpt}: {e}")));
        pipeline
            .model
            .load_params(params)
            .unwrap_or_else(|e| fatal(&format!("checkpoint {ckpt} does not fit this model: {e}")));
        eprintln!("loaded {format:?} checkpoint from {ckpt}");
    }
    if args.iter().any(|a| a == "--quantized") {
        pipeline.model.params.set_quantized(true);
        eprintln!("evaluating with int8 quantized weights");
    }
    let stats = evaluate_with_threads(&pipeline, &corpus, &corpus.dev, threads);
    let correct = stats.samples.iter().filter(|s| s.outcome.is_correct()).count();
    let failed_exec = stats
        .samples
        .iter()
        .filter(|s| s.outcome == ExecOutcome::PredictionFailed)
        .count();
    println!(
        "dev execution accuracy: {correct}/{} = {:.1}% ({failed_exec} failed to execute)",
        corpus.dev.len(),
        100.0 * correct as f64 / corpus.dev.len().max(1) as f64
    );
}

fn translate_one(pipeline: &Pipeline, corpus: &Corpus, db_id: &str, question: &str) {
    let Some(db_index) =
        corpus.databases.iter().position(|db| db.schema().db_id == db_id)
    else {
        let names: Vec<&str> =
            corpus.databases.iter().map(|d| d.schema().db_id.as_str()).collect();
        fatal(&format!("unknown database '{db_id}'; available: {}", names.join(", ")));
    };
    let db = &corpus.databases[db_index];
    let pred = pipeline.translate(db, question, None);
    match &pred.sql {
        Some(sql) => {
            println!("SQL: {sql}");
            match &pred.result {
                Some(rs) => print!("{rs}"),
                None => println!("(execution failed)"),
            }
        }
        None => println!("(no SQL produced; candidates were {:?})", pred.candidates),
    }
}

fn cmd_ask(args: &[String]) {
    let path = arg(args, "--model").unwrap_or_else(|| fatal("--model is required"));
    let db_id = arg(args, "--db").unwrap_or_else(|| fatal("--db is required"));
    let question = args
        .iter()
        .skip_while(|a| *a != "--db")
        .nth(2)
        .cloned()
        .unwrap_or_else(|| fatal("question text is required"));
    let (pipeline, corpus) = load_bundle(&path);
    translate_one(&pipeline, &corpus, &db_id, &question);
}

fn cmd_repl(args: &[String]) {
    let path = arg(args, "--model").unwrap_or_else(|| fatal("--model is required"));
    let db_id = arg(args, "--db").unwrap_or_else(|| fatal("--db is required"));
    let (pipeline, corpus) = load_bundle(&path);
    println!("ValueNet REPL over '{db_id}' — empty line to quit.");
    let stdin = std::io::stdin();
    loop {
        print!("nl> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let q = line.trim();
        if q.is_empty() {
            break;
        }
        translate_one(&pipeline, &corpus, &db_id, q);
    }
}

fn cmd_serve(args: &[String]) {
    use valuenet::serve::{serve_unix, Engine, ServeConfig};
    let path = arg(args, "--model").unwrap_or_else(|| fatal("--model is required"));
    let socket = arg(args, "--socket").unwrap_or_else(|| "valuenet.sock".to_string());
    let (mut pipeline, corpus) = load_bundle(&path);
    if let Some(ckpt) = arg(args, "--load") {
        let (params, format) = valuenet::nn::load_checkpoint(&ckpt)
            .unwrap_or_else(|e| fatal(&format!("cannot load checkpoint {ckpt}: {e}")));
        pipeline
            .model
            .load_params(params)
            .unwrap_or_else(|e| fatal(&format!("checkpoint {ckpt} does not fit this model: {e}")));
        eprintln!("loaded {format:?} checkpoint from {ckpt}");
    }
    if args.iter().any(|a| a == "--quantized") {
        pipeline.model.params.set_quantized(true);
        eprintln!("serving with int8 quantized weights");
    }
    let defaults = ServeConfig::default();
    // Batching window: --batch-window µs wins, then VN_BATCH_WINDOW_US,
    // then the config default (off).
    let env_window = std::env::var("VN_BATCH_WINDOW_US")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(defaults.batch_window_us);
    let cfg = ServeConfig {
        workers: arg_usize(args, "--workers", defaults.workers),
        queue_capacity: arg_usize(args, "--queue", defaults.queue_capacity),
        default_deadline_ms: arg_usize(args, "--deadline-ms", 0) as u64,
        allow_fault_injection: args.iter().any(|a| a == "--allow-faults"),
        batch_window_us: arg_usize(args, "--batch-window", env_window as usize) as u64,
        batch_max: arg_usize(args, "--batch-max", defaults.batch_max),
        ..defaults
    };
    let engine = Engine::start(pipeline, corpus.databases, cfg);
    eprintln!(
        "serving {} databases on {socket} ({} workers, queue {}, batch window {}µs × {}); \
         send {{\"verb\":\"shutdown\"}} to stop",
        engine.database_names().len(),
        cfg.workers,
        cfg.queue_capacity,
        cfg.batch_window_us,
        cfg.batch_max
    );
    serve_unix(engine, std::path::Path::new(&socket))
        .unwrap_or_else(|e| fatal(&format!("serve failed: {e}")));
    eprintln!("serve: drained and shut down");
}

fn cmd_dbs(args: &[String]) {
    let cfg = CorpusConfig {
        seed: arg_usize(args, "--seed", 42) as u64,
        train_size: 1,
        dev_size: 1,
        rows_per_table: arg_usize(args, "--rows", 30),
        surface_weights: valuenet::dataset::DEFAULT_SURFACE_WEIGHTS,
    };
    let corpus = generate(&cfg);
    for db in &corpus.databases {
        let schema = db.schema();
        println!("{} ({} tables, {} rows)", schema.db_id, schema.tables.len(), db.num_rows());
        for t in &schema.tables {
            let cols: Vec<&str> =
                t.columns.iter().map(|&c| schema.column(c).name.as_str()).collect();
            println!("  {}({})", t.name, cols.join(", "));
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Make --threads the process-wide default so every fan-out (training,
    // evaluation) respects it even where no explicit count is plumbed.
    if let Some(t) = arg(&args, "--threads").and_then(|v| v.parse().ok()) {
        valuenet::par::set_threads(t);
    }
    // Observability is opt-in via environment: OBS=1 prints a span/counter
    // summary on exit; OBS_JSONL / OBS_CHROME_TRACE stream or trace the run.
    valuenet::obs::init_from_env();
    match args.first().map(String::as_str) {
        Some("train") => cmd_train(&args[1..]),
        Some("eval") => cmd_eval(&args[1..]),
        Some("ask") => cmd_ask(&args[1..]),
        Some("repl") => cmd_repl(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("dbs") => cmd_dbs(&args[1..]),
        _ => {
            eprintln!(
                "usage: valuenet-cli <train|eval|ask|repl|serve|dbs> [options]\n\
                 \x20 train --out model.json [--mode light|full] [--train N] [--dev N] [--epochs N] [--seed N] [--threads N]\n\
                 \x20       [--save ckpt.jsonl] [--save-quant ckpt.int8.jsonl]\n\
                 \x20 eval  --model model.json [--threads N] [--load ckpt.jsonl] [--quantized]\n\
                 \x20 ask   --model model.json --db <db_id> \"question\"\n\
                 \x20 repl  --model model.json --db <db_id>\n\
                 \x20 serve --model model.json --socket valuenet.sock [--load ckpt.jsonl] [--quantized]\n\
                 \x20       [--workers N] [--queue N] [--deadline-ms N] [--allow-faults]\n\
                 \x20       [--batch-window US] [--batch-max N]   (env: VN_BATCH_WINDOW_US)\n\
                 \x20 dbs   [--seed N]"
            );
            std::process::exit(2);
        }
    }
    valuenet::obs::finish();
}
