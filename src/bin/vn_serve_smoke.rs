//! CI smoke driver for `valuenet-cli serve`.
//!
//! Connects to a running serving socket and walks the protocol end to end:
//! liveness, a batch of real translations, one malformed frame, one
//! injected worker panic (the server must run `--allow-faults`), a `stats`
//! cross-check of the pool invariants, and a clean `shutdown`. Exits
//! non-zero (with a description) on the first violated expectation.
//!
//! ```text
//! vn_serve_smoke --socket vn.sock [--seed 42] [--train 30] [--dev 10]
//!                [--rows 30] [--requests 12]
//! ```
//!
//! The corpus parameters must match the served model's bundle so the
//! driver regenerates the same databases and question set.

use std::time::Duration;

use valuenet::core::Stage;
use valuenet::dataset::{generate, CorpusConfig};
use valuenet::obs::json::Json;
use valuenet::serve::{translate_frame, verb_frame, Client, ErrorKind, FaultSpec, Response};

fn arg(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn arg_usize(args: &[String], name: &str, default: usize) -> usize {
    arg(args, name).and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn fail(msg: &str) -> ! {
    eprintln!("vn_serve_smoke: FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let socket = arg(&args, "--socket").unwrap_or_else(|| "valuenet.sock".to_string());
    let requests = arg_usize(&args, "--requests", 12);
    let corpus = generate(&CorpusConfig {
        seed: arg_usize(&args, "--seed", 42) as u64,
        train_size: arg_usize(&args, "--train", 30),
        dev_size: arg_usize(&args, "--dev", 10),
        rows_per_table: arg_usize(&args, "--rows", 30),
        ..CorpusConfig::default()
    });

    // The server may still be loading its checkpoint: retry the connect.
    let path = std::path::Path::new(&socket);
    let mut client = None;
    for _ in 0..600 {
        match Client::connect(path) {
            Ok(c) => {
                client = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(100)),
        }
    }
    let mut client =
        client.unwrap_or_else(|| fail(&format!("server never came up on {socket}")));
    client.set_read_timeout(Some(Duration::from_secs(120))).expect("read timeout");

    // 1. Liveness.
    match client.roundtrip(&verb_frame(0, "ping")) {
        Ok(Response::Pong { id: Some(0) }) => println!("ping: ok"),
        other => fail(&format!("ping failed: {other:?}")),
    }

    // 2. Real translations over train + dev questions (no gold values — the
    // served model runs the full candidate pipeline).
    let samples: Vec<_> = corpus.train.iter().chain(&corpus.dev).take(requests).collect();
    let mut translated = 0;
    let mut translate_failed = 0;
    for (i, sample) in samples.iter().enumerate() {
        let db = corpus.db(sample);
        let frame =
            translate_frame(i as i64 + 1, &db.schema().db_id, &sample.question, None, None, None);
        match client.roundtrip(&frame) {
            Ok(Response::Translated { id, body }) => {
                if id != Some(i as i64 + 1) {
                    fail(&format!("response id mismatch: {id:?} for request {}", i + 1));
                }
                if body.sql.is_empty() {
                    fail("ok response with empty SQL");
                }
                translated += 1;
            }
            Ok(Response::Error { error, .. }) if error.kind == ErrorKind::TranslateFailed => {
                translate_failed += 1;
            }
            other => fail(&format!("translate {} got {other:?}", i + 1)),
        }
    }
    println!("translate: {translated} ok, {translate_failed} typed translate_failed");
    if translated == 0 {
        fail("no question translated — served model looks broken");
    }

    // 3. A malformed frame must get a typed bad_request and leave the
    // connection usable.
    match client.roundtrip_raw("this { is not json") {
        Ok(Response::Error { error, .. }) if error.kind == ErrorKind::BadRequest => {
            println!("malformed frame: typed bad_request")
        }
        other => fail(&format!("malformed frame got {other:?}")),
    }
    match client.roundtrip(&verb_frame(900, "ping")) {
        Ok(Response::Pong { .. }) => {}
        other => fail(&format!("connection wedged after malformed frame: {other:?}")),
    }

    // 4. One injected worker panic: the pool must catch it, respawn, and
    // answer after a degraded retry.
    let sample = samples[0];
    let fault = FaultSpec {
        panic_stage: Some(Stage::EncodeDecode),
        panic_times: 1,
        ..Default::default()
    };
    let frame = translate_frame(
        901,
        &corpus.db(sample).schema().db_id,
        &sample.question,
        None,
        None,
        Some(&fault),
    );
    match client.roundtrip(&frame) {
        Ok(Response::Translated { body, .. }) if body.retries >= 1 && body.degraded => {
            println!("injected panic: recovered on degraded retry")
        }
        Ok(Response::Error { error, .. }) if error.kind == ErrorKind::TranslateFailed => {
            println!("injected panic: recovered (question untranslatable)")
        }
        other => fail(&format!("injected panic not recovered: {other:?}")),
    }

    // 5. Stats: pool invariants — no worker leak, every panic respawned.
    let stats = match client.roundtrip(&verb_frame(902, "stats")) {
        Ok(Response::Stats { stats, .. }) => stats,
        other => fail(&format!("stats verb failed: {other:?}")),
    };
    let pick = |root: &Json, path: &[&str]| -> i64 {
        let mut v = root.clone();
        for k in path {
            v = v.get(k).cloned().unwrap_or(Json::Null);
        }
        v.as_f64().map(|f| f as i64).unwrap_or(-1)
    };
    let live = pick(&stats, &["workers", "live"]);
    let configured = pick(&stats, &["workers", "configured"]);
    let panics = pick(&stats, &["workers", "panics"]);
    let respawns = pick(&stats, &["workers", "respawns"]);
    if live != configured {
        fail(&format!("worker leak: {live} live of {configured} configured"));
    }
    if panics < 1 || panics != respawns {
        fail(&format!("respawn mismatch: {panics} panics, {respawns} respawns"));
    }
    if pick(&stats, &["latency_us", "total", "count"]) < translated as i64 {
        fail("total latency histogram undercounts completions");
    }
    println!("stats: {live}/{configured} workers live, {panics} panics / {respawns} respawns");

    // 6. Clean shutdown.
    match client.roundtrip(&verb_frame(903, "shutdown")) {
        Ok(Response::ShutdownAck { .. }) => println!("shutdown: acknowledged"),
        other => fail(&format!("shutdown failed: {other:?}")),
    }
    println!("vn_serve_smoke: PASS");
}
