//! CI smoke driver for `valuenet-cli serve`.
//!
//! Connects to a running serving socket and walks the protocol end to end:
//! liveness, a batch of real translations, one malformed frame, one
//! injected worker panic (the server must run `--allow-faults`), recovery
//! of the panic's full trace from the flight recorder via the `trace`
//! verb, a `stats` cross-check of the pool invariants plus its SLO
//! section, delta-window stats semantics, and a clean `shutdown`. Exits
//! non-zero (with a description) on the first violated expectation.
//!
//! ```text
//! vn_serve_smoke --socket vn.sock [--seed 42] [--train 30] [--dev 10]
//!                [--rows 30] [--requests 12] [--slo-out serve-slo.json]
//! ```
//!
//! `--slo-out` writes the final cumulative `stats` payload to a file so CI
//! can gate the smoke run with `vn-slo-check`.
//!
//! The corpus parameters must match the served model's bundle so the
//! driver regenerates the same databases and question set.

use std::time::Duration;

use valuenet::core::Stage;
use valuenet::dataset::{generate, CorpusConfig};
use valuenet::obs::json::Json;
use valuenet::serve::{translate_frame, verb_frame, Client, ErrorKind, FaultSpec, Response};

fn arg(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn arg_usize(args: &[String], name: &str, default: usize) -> usize {
    arg(args, name).and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn fail(msg: &str) -> ! {
    eprintln!("vn_serve_smoke: FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let socket = arg(&args, "--socket").unwrap_or_else(|| "valuenet.sock".to_string());
    let requests = arg_usize(&args, "--requests", 12);
    let corpus = generate(&CorpusConfig {
        seed: arg_usize(&args, "--seed", 42) as u64,
        train_size: arg_usize(&args, "--train", 30),
        dev_size: arg_usize(&args, "--dev", 10),
        rows_per_table: arg_usize(&args, "--rows", 30),
        ..CorpusConfig::default()
    });

    // The server may still be loading its checkpoint: retry the connect.
    let path = std::path::Path::new(&socket);
    let mut client = None;
    for _ in 0..600 {
        match Client::connect(path) {
            Ok(c) => {
                client = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(100)),
        }
    }
    let mut client =
        client.unwrap_or_else(|| fail(&format!("server never came up on {socket}")));
    client.set_read_timeout(Some(Duration::from_secs(120))).expect("read timeout");

    // 1. Liveness.
    match client.roundtrip(&verb_frame(0, "ping")) {
        Ok(Response::Pong { id: Some(0) }) => println!("ping: ok"),
        other => fail(&format!("ping failed: {other:?}")),
    }

    // 2. Real translations over train + dev questions (no gold values — the
    // served model runs the full candidate pipeline).
    let samples: Vec<_> = corpus.train.iter().chain(&corpus.dev).take(requests).collect();
    let mut translated = 0;
    let mut translate_failed = 0;
    for (i, sample) in samples.iter().enumerate() {
        let db = corpus.db(sample);
        let frame =
            translate_frame(i as i64 + 1, &db.schema().db_id, &sample.question, None, None, None);
        match client.roundtrip(&frame) {
            Ok(Response::Translated { id, body }) => {
                if id != Some(i as i64 + 1) {
                    fail(&format!("response id mismatch: {id:?} for request {}", i + 1));
                }
                if body.sql.is_empty() {
                    fail("ok response with empty SQL");
                }
                translated += 1;
            }
            Ok(Response::Error { error, .. }) if error.kind == ErrorKind::TranslateFailed => {
                translate_failed += 1;
            }
            other => fail(&format!("translate {} got {other:?}", i + 1)),
        }
    }
    println!("translate: {translated} ok, {translate_failed} typed translate_failed");
    if translated == 0 {
        fail("no question translated — served model looks broken");
    }

    // 3. A malformed frame must get a typed bad_request and leave the
    // connection usable.
    match client.roundtrip_raw("this { is not json") {
        Ok(Response::Error { error, .. }) if error.kind == ErrorKind::BadRequest => {
            println!("malformed frame: typed bad_request")
        }
        other => fail(&format!("malformed frame got {other:?}")),
    }
    match client.roundtrip(&verb_frame(900, "ping")) {
        Ok(Response::Pong { .. }) => {}
        other => fail(&format!("connection wedged after malformed frame: {other:?}")),
    }

    // 4. One injected worker panic: the pool must catch it, respawn, and
    // answer after a degraded retry.
    let sample = samples[0];
    let fault = FaultSpec {
        panic_stage: Some(Stage::EncodeDecode),
        panic_times: 1,
        ..Default::default()
    };
    let frame = translate_frame(
        901,
        &corpus.db(sample).schema().db_id,
        &sample.question,
        None,
        None,
        Some(&fault),
    );
    let panic_trace = match client.roundtrip(&frame) {
        Ok(Response::Translated { body, .. }) if body.retries >= 1 && body.degraded => {
            println!("injected panic: recovered on degraded retry");
            body.trace
        }
        Ok(Response::Error { error, trace, .. }) if error.kind == ErrorKind::TranslateFailed => {
            println!("injected panic: recovered (question untranslatable)");
            trace
        }
        other => fail(&format!("injected panic not recovered: {other:?}")),
    };
    let panic_trace =
        panic_trace.unwrap_or_else(|| fail("panic response carries no trace digest"));
    if panic_trace.attempts < 2 {
        fail(&format!("trace digest covers {} attempts, expected 2", panic_trace.attempts));
    }

    // 4b. The full span tree — including the killed attempt and its fault
    // attribution — is recoverable from the flight recorder over the wire.
    let frame = Json::obj(vec![
        ("id", Json::Int(904)),
        ("verb", Json::Str("trace".into())),
        ("trace_id", Json::Int(panic_trace.trace_id as i64)),
    ]);
    match client.roundtrip(&frame) {
        Ok(Response::Traces { traces, .. }) => {
            let arr = traces
                .get("traces")
                .and_then(Json::as_arr)
                .unwrap_or_else(|| fail("trace verb payload has no traces array"));
            if arr.len() != 1 {
                fail(&format!("flight recorder lookup found {} traces, expected 1", arr.len()));
            }
            let t = &arr[0];
            let attempts =
                t.get("attempts").and_then(Json::as_arr).map(<[Json]>::len).unwrap_or(0);
            let stages = t.get("stages").and_then(Json::as_arr).map(<[Json]>::len).unwrap_or(0);
            if attempts < 2 || stages == 0 {
                fail(&format!("flight trace incomplete: {attempts} attempts, {stages} stages"));
            }
            if t.get("fault").and_then(Json::as_str).is_none() {
                fail("flight trace has no fault attribution");
            }
            println!("trace verb: span tree recovered ({attempts} attempts, {stages} stages)");
        }
        other => fail(&format!("trace verb failed: {other:?}")),
    }

    // 5. Stats: pool invariants — no worker leak, every panic respawned.
    let stats = match client.roundtrip(&verb_frame(902, "stats")) {
        Ok(Response::Stats { stats, .. }) => stats,
        other => fail(&format!("stats verb failed: {other:?}")),
    };
    let pick = |root: &Json, path: &[&str]| -> i64 {
        let mut v = root.clone();
        for k in path {
            v = v.get(k).cloned().unwrap_or(Json::Null);
        }
        v.as_f64().map(|f| f as i64).unwrap_or(-1)
    };
    let live = pick(&stats, &["workers", "live"]);
    let configured = pick(&stats, &["workers", "configured"]);
    let panics = pick(&stats, &["workers", "panics"]);
    let respawns = pick(&stats, &["workers", "respawns"]);
    if live != configured {
        fail(&format!("worker leak: {live} live of {configured} configured"));
    }
    if panics < 1 || panics != respawns {
        fail(&format!("respawn mismatch: {panics} panics, {respawns} respawns"));
    }
    if pick(&stats, &["latency_us", "total", "count"]) < translated as i64 {
        fail("total latency histogram undercounts completions");
    }
    println!("stats: {live}/{configured} workers live, {panics} panics / {respawns} respawns");

    // 5b. The stats payload carries an SLO section with burn rates; keep it
    // for the CI burn gate when asked to.
    if stats.get("slo").and_then(|s| s.get("availability_burn")).is_none() {
        fail("stats payload has no SLO section");
    }
    if let Some(out) = arg(&args, "--slo-out") {
        std::fs::write(&out, format!("{}\n", stats.render()))
            .unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
        println!("slo: stats payload written to {out}");
    }

    // 5c. Delta-window stats: the first delta read drains the window, so a
    // second immediate read must report an empty window (gauges stay live).
    for (id, expect_empty) in [(905, false), (906, true)] {
        let frame = format!(r#"{{"id":{id},"verb":"stats","window":"delta"}}"#);
        match client.roundtrip_raw(&frame) {
            Ok(Response::Stats { stats, .. }) => {
                if stats.get("window").and_then(Json::as_str) != Some("delta") {
                    fail("delta stats not labelled as delta window");
                }
                let submitted = pick(&stats, &["requests", "submitted"]);
                if expect_empty && submitted != 0 {
                    fail(&format!("second delta window not empty: {submitted} submitted"));
                }
                if pick(&stats, &["workers", "live"]) != live {
                    fail("delta window lost the live-workers gauge");
                }
            }
            other => fail(&format!("delta stats verb failed: {other:?}")),
        }
    }
    println!("stats: delta windows reset on read");

    // 6. Clean shutdown.
    match client.roundtrip(&verb_frame(903, "shutdown")) {
        Ok(Response::ShutdownAck { .. }) => println!("shutdown: acknowledged"),
        other => fail(&format!("shutdown failed: {other:?}")),
    }
    println!("vn_serve_smoke: PASS");
}
