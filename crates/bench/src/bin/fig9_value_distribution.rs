//! Regenerates **Fig. 9**: the distribution of value counts over the
//! training split.
//!
//! Paper (7,000 train questions): 3,469 samples with no values, 2,494 with
//! one, 945 with two, 62 with three and 30 with four.
//!
//! ```text
//! cargo run --release -p valuenet-bench --bin fig9_value_distribution
//! ```

use valuenet_bench::BenchConfig;
use valuenet_dataset::generate;
use valuenet_eval::TextTable;

fn main() {
    let cfg = BenchConfig::from_env();
    let corpus = generate(&cfg.corpus(0));

    let mut counts = [0usize; 5];
    let mut total_values = 0usize;
    for s in &corpus.train {
        let n = s.num_question_values().min(4);
        counts[n] += 1;
        total_values += s.num_question_values();
    }
    let with_values: usize = counts[1..].iter().sum();
    let total = corpus.train.len();

    println!("Fig. 9 — value distribution in the synthetic train split");
    println!("({} questions; paper: 7,000 questions over Spider)\n", total);
    let paper = [3469.0, 2494.0, 945.0, 62.0, 30.0];
    let paper_total: f64 = paper.iter().sum();
    let mut table = TextTable::new(vec!["values per question", "samples", "share", "paper share"]);
    for (i, &c) in counts.iter().enumerate() {
        table.row(vec![
            i.to_string(),
            c.to_string(),
            format!("{:.1}%", 100.0 * c as f64 / total as f64),
            format!("{:.1}%", 100.0 * paper[i] / paper_total),
        ]);
    }
    print!("{table}");
    println!(
        "\n{} of {} samples contain values ({:.1}%; paper: 3,531 of 7,000 = 50.4%)",
        with_values,
        total,
        100.0 * with_values as f64 / total as f64
    );
    println!(
        "total values: {} (paper: 4,690); mean per value-bearing sample: {:.2} (paper: 1.33)",
        total_values,
        total_values as f64 / with_values.max(1) as f64
    );
}
