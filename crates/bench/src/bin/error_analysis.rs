//! Regenerates the **Section V-G** error analysis: failed dev predictions
//! classified by cause.
//!
//! Paper (352 failures, ~176 analysed; several causes may co-occur):
//! wrong column 50% (of which half also wrong table → 25%), SQL-sketch
//! errors 39% (76% of them on Hard/Extra-hard), value selection 9%,
//! false negatives 9%.
//!
//! ```text
//! cargo run --release -p valuenet-bench --bin error_analysis
//! ```

use valuenet_bench::{evaluate, BenchConfig};
use valuenet_core::{train, ModelConfig, ValueMode};
use valuenet_dataset::generate;
use valuenet_eval::{error_analysis, Difficulty, ErrorCause, TextTable};

fn main() {
    let cfg = BenchConfig::from_env();
    let corpus = generate(&cfg.corpus(0));
    eprintln!("training ValueNet (full mode)...");
    let (pipeline, _) =
        train(&corpus, ValueMode::Full, ModelConfig::default(), &cfg.train_cfg(0));
    let stats = evaluate(&pipeline, &corpus, &corpus.dev);
    let failures = stats.failures();

    println!(
        "Section V-G — error analysis over {} failed dev samples (of {})\n",
        failures.len(),
        stats.samples.len()
    );
    if failures.is_empty() {
        println!("no failures — nothing to analyse at this scale.");
        return;
    }

    let mut cause_counts = [0usize; 4];
    let mut sketch_hard = 0usize;
    let mut sketch_total = 0usize;
    let mut undecoded = 0usize;
    for f in &failures {
        let Some(pred_tree) = &f.prediction.semql else {
            undecoded += 1;
            continue;
        };
        let sample = &corpus.dev[f.index];
        let report = error_analysis(
            pred_tree,
            &sample.semql,
            &f.prediction.candidates,
            &sample.values,
        );
        for (i, c) in ErrorCause::ALL.iter().enumerate() {
            if report.has(*c) {
                cause_counts[i] += 1;
            }
        }
        if report.has(ErrorCause::Sketch) {
            sketch_total += 1;
            if f.difficulty >= Difficulty::Hard {
                sketch_hard += 1;
            }
        }
    }

    let n = failures.len() as f64;
    let paper = ["50%", "25%", "39%", "9%"];
    let mut table = TextTable::new(vec!["cause", "failures", "share", "paper"]);
    for (i, c) in ErrorCause::ALL.iter().enumerate() {
        table.row(vec![
            c.label().to_string(),
            cause_counts[i].to_string(),
            format!("{:.0}%", 100.0 * cause_counts[i] as f64 / n),
            paper[i].to_string(),
        ]);
    }
    print!("{table}");
    if undecoded > 0 {
        println!("\n(decoding/lowering failed outright for {undecoded} samples)");
    }
    if sketch_total > 0 {
        println!(
            "sketch errors on Hard/Extra-hard queries: {:.0}% (paper: 76%)",
            100.0 * sketch_hard as f64 / sketch_total as f64
        );
    }
    println!("note: causes can co-occur, so shares may exceed 100% (as in the paper).");
}
