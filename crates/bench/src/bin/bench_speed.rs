//! Allocation-free execution benchmark, written to `BENCH_speed.json`.
//!
//! Measures the tentpole of the graph-execution rework twice each — once
//! with the old allocator behaviour and once with the new one — in the same
//! process, so every record carries its own baseline:
//!
//! * **training** — marginal cost of one epoch (3-epoch run minus 1-epoch
//!   run, halved, which subtracts corpus preprocessing and model setup).
//!   Baseline arm: buffer pool off, kernel fusion off. Current arm: both on,
//!   plus the per-worker recycled `Graph` in the trainer.
//! * **inference** — beam-width-4 decoding over prebuilt model inputs.
//!   Baseline arm: pool/fusion off through the per-hypothesis
//!   `predict_beam_unbatched`. Current arm: pool/fusion on through the
//!   batched `predict_beam` (one LSTM + attention step per beam step).
//!
//! Both arms also report the buffer pool's process-wide counters (the stats
//! keep counting with recycling disabled, so the baseline arm still shows
//! its bytes allocated). The report goes through the observability JSONL
//! sink ([`valuenet_obs::JsonlWriter`]): a `meta` line first, then one
//! `{"type":"bench"}` record per measurement, all stamped with
//! `schema_version` — `vn-obs-check BENCH_speed.json` validates the file in
//! CI's perf-smoke job.
//!
//! Scale via `--quick` (CI-sized corpus) and the usual `VN_TRAIN` /
//! `VN_DEV` / `VN_ROWS` knobs. `OBS=1` profiles the measured runs.

use std::time::Instant;
use valuenet_core::{
    assemble_candidates, build_input_opts, train, ModelConfig, ModelInput, TrainConfig, ValueMode,
};
use valuenet_dataset::{generate, Corpus, CorpusConfig};
use valuenet_obs::json::Json;
use valuenet_preprocess::preprocess;
use valuenet_tensor::pool;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Switches both allocation-related toggles together: the tensor buffer
/// pool and kernel fusion. `false` reproduces the pre-rework execution
/// behaviour (every op clones, every buffer is malloc'd and freed).
fn set_current_mode(on: bool) {
    pool::set_enabled(on);
    valuenet_tensor::set_fusion_enabled(on);
    // Buffers cached from the other arm would let a disabled pool still see
    // stale state (or an enabled one start half-warm and skew the hit rate).
    pool::clear_thread_local();
}

struct TrainArm {
    per_epoch_ms: f64,
    samples_per_sec: f64,
    pool_per_epoch: pool::PoolStats,
}

/// Marginal per-epoch cost and per-epoch pool deltas for one arm.
///
/// The timing is the best of three (3-epoch minus 1-epoch)/2 marginals —
/// the minimum is the standard robust estimator for wall-clock measurements
/// on a shared machine, where interference only ever adds time. The pool
/// counters come from the steady-state 3-epoch run divided by 3: marginal
/// subtraction is wrong for them, because a run that starts with a warm
/// pool (populated by the previous run) sees *fewer* misses than the cold
/// 1-epoch run and the difference underflows.
fn measure_training(corpus: &Corpus, model_cfg: &ModelConfig) -> TrainArm {
    let run = |epochs: usize| {
        let cfg = TrainConfig { epochs, threads: 1, ..Default::default() };
        let s0 = pool::stats();
        let t = Instant::now();
        train(corpus, ValueMode::Light, model_cfg.clone(), &cfg);
        (t.elapsed().as_secs_f64() * 1e3, pool::stats().since(&s0))
    };
    let mut per_epoch_ms = f64::INFINITY;
    let mut pool_per_epoch = pool::PoolStats::default();
    for _ in 0..3 {
        let (ms1, _) = run(1);
        let (ms3, st3) = run(3);
        per_epoch_ms = per_epoch_ms.min((ms3 - ms1) / 2.0);
        pool_per_epoch = pool::PoolStats {
            hits: st3.hits / 3,
            misses: st3.misses / 3,
            returns: st3.returns / 3,
            alloc_bytes: st3.alloc_bytes / 3,
            recycled_bytes: st3.recycled_bytes / 3,
        };
    }
    TrainArm {
        per_epoch_ms,
        samples_per_sec: corpus.train.len() as f64 / (per_epoch_ms / 1e3).max(1e-9),
        pool_per_epoch,
    }
}

fn pool_json(s: &pool::PoolStats) -> Json {
    Json::obj(vec![
        ("hit_rate", Json::Num(s.hit_rate())),
        ("hits", Json::Int(s.hits as i64)),
        ("misses", Json::Int(s.misses as i64)),
        ("alloc_bytes", Json::Int(s.alloc_bytes as i64)),
        ("recycled_bytes", Json::Int(s.recycled_bytes as i64)),
    ])
}

fn main() {
    valuenet_obs::init_from_env();
    let quick = std::env::args().any(|a| a == "--quick");
    let (dt, dd, dr) = if quick { (48, 24, 8) } else { (96, 48, 12) };
    let corpus = generate(&CorpusConfig {
        seed: 11,
        train_size: env_usize("VN_TRAIN", dt),
        dev_size: env_usize("VN_DEV", dd),
        rows_per_table: env_usize("VN_ROWS", dr),
        ..CorpusConfig::default()
    });
    let mut model_cfg = ModelConfig::tiny();
    model_cfg.beam_width = 4;

    // --- Training: samples/sec, baseline vs current ---------------------
    set_current_mode(false);
    let base = measure_training(&corpus, &model_cfg);
    eprintln!(
        "training baseline: {:.1} ms/epoch ({:.1} samples/s, {} MiB allocated/epoch)",
        base.per_epoch_ms,
        base.samples_per_sec,
        base.pool_per_epoch.alloc_bytes >> 20
    );
    set_current_mode(true);
    let cur = measure_training(&corpus, &model_cfg);
    eprintln!(
        "training current:  {:.1} ms/epoch ({:.1} samples/s, pool hit rate {:.3})",
        cur.per_epoch_ms,
        cur.samples_per_sec,
        cur.pool_per_epoch.hit_rate()
    );
    let train_speedup = cur.samples_per_sec / base.samples_per_sec.max(1e-9);
    let training = Json::obj(vec![
        ("type", Json::Str("bench".into())),
        ("name", Json::Str("training".into())),
        ("train_samples", Json::Int(corpus.train.len() as i64)),
        ("baseline_samples_per_sec", Json::Num(base.samples_per_sec)),
        ("samples_per_sec", Json::Num(cur.samples_per_sec)),
        ("speedup", Json::Num(train_speedup)),
        ("baseline_pool", pool_json(&base.pool_per_epoch)),
        ("pool", pool_json(&cur.pool_per_epoch)),
    ]);

    // --- Inference: beam-width-4 queries/sec, baseline vs current -------
    // One trained pipeline serves both arms; inputs are prebuilt so the
    // measurement isolates encode + beam decode.
    set_current_mode(true);
    let (pipeline, _) = train(
        &corpus,
        ValueMode::Light,
        model_cfg,
        &TrainConfig { epochs: 2, threads: 1, ..Default::default() },
    );
    let inputs: Vec<ModelInput> = corpus
        .dev
        .iter()
        .map(|s| {
            let db = corpus.db(s);
            let pre = preprocess(&s.question, db, &pipeline.ner, &pipeline.cand_cfg);
            let cands = assemble_candidates(db, &pre, ValueMode::Light, Some(&s.values), false);
            build_input_opts(db, &pre, &cands, &pipeline.model.vocab, pipeline.model.input_options())
        })
        .collect();
    let reps = if quick { 1 } else { 3 };

    // Best-of-3 sweeps per arm, for the same reason as the training minimum.
    set_current_mode(false);
    let s0 = pool::stats();
    let mut base_secs = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..reps {
            for input in &inputs {
                std::hint::black_box(pipeline.model.predict_beam_unbatched(input));
            }
        }
        base_secs = base_secs.min(t.elapsed().as_secs_f64());
    }
    let base_pool = pool::stats().since(&s0);
    let base_qps = (reps * inputs.len()) as f64 / base_secs.max(1e-9);
    eprintln!("inference baseline (unbatched, pool/fusion off): {base_qps:.1} queries/s");

    set_current_mode(true);
    let s0 = pool::stats();
    let mut cur_secs = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..reps {
            for input in &inputs {
                std::hint::black_box(pipeline.model.predict_beam(input));
            }
        }
        cur_secs = cur_secs.min(t.elapsed().as_secs_f64());
    }
    let cur_pool = pool::stats().since(&s0);
    let cur_qps = (reps * inputs.len()) as f64 / cur_secs.max(1e-9);
    eprintln!("inference current  (batched, pool/fusion on):    {cur_qps:.1} queries/s");

    // Stderr-only diagnostic: encode-only cost per arm, to show how much of
    // a query is encoding (shared shape work) versus beam decoding.
    for (label, mode) in [("off", false), ("on", true)] {
        set_current_mode(mode);
        let t = Instant::now();
        for input in &inputs {
            let mut g = valuenet_tensor::Graph::new();
            std::hint::black_box(pipeline.model.encode(&mut g, input, None));
        }
        let us = t.elapsed().as_secs_f64() * 1e6 / inputs.len() as f64;
        eprintln!("encode-only (rework {label}): {us:.0} µs/query");
    }
    let infer_speedup = cur_qps / base_qps.max(1e-9);
    let inference = Json::obj(vec![
        ("type", Json::Str("bench".into())),
        ("name", Json::Str("inference_beam4".into())),
        ("queries", Json::Int((reps * inputs.len()) as i64)),
        ("beam_width", Json::Int(4)),
        ("baseline_queries_per_sec", Json::Num(base_qps)),
        ("queries_per_sec", Json::Num(cur_qps)),
        ("speedup", Json::Num(infer_speedup)),
        ("baseline_pool", pool_json(&base_pool)),
        ("pool", pool_json(&cur_pool)),
    ]);

    let mut w =
        valuenet_obs::JsonlWriter::create("BENCH_speed.json").expect("can create BENCH_speed.json");
    w.write(Json::obj(vec![
        ("type", Json::Str("meta".into())),
        ("bench", Json::Str("speed".into())),
        ("quick", Json::Bool(quick)),
    ]))
    .expect("meta writes");
    w.write(training.clone()).expect("training record writes");
    w.write(inference.clone()).expect("inference record writes");
    w.finish().expect("report flushes");
    println!("{}", training.render());
    println!("{}", inference.render());
    eprintln!(
        "speedups: training {train_speedup:.2}x, beam-4 inference {infer_speedup:.2}x"
    );
    valuenet_obs::finish();
    // Leave the process in the default (pooled, fused) configuration.
    set_current_mode(true);
}
