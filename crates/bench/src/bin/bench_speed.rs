//! Allocation-free execution benchmark, written to `BENCH_speed.json`.
//!
//! Measures the tentpole of the graph-execution rework twice each — once
//! with the old allocator behaviour and once with the new one — in the same
//! process, so every record carries its own baseline:
//!
//! * **training** — marginal cost of one epoch (3-epoch run minus 1-epoch
//!   run, halved, which subtracts corpus preprocessing and model setup).
//!   Baseline arm: buffer pool off, kernel fusion off. Current arm: both on,
//!   plus the per-worker recycled `Graph` in the trainer.
//! * **inference** — beam-width-4 decoding over prebuilt model inputs.
//!   Baseline arm: pool/fusion off through the per-hypothesis
//!   `predict_beam_unbatched`. Current arm: pool/fusion on through the
//!   batched `predict_beam` (one LSTM + attention step per beam step).
//! * **inference, SIMD tier** — the same batched beam-4 decode three ways:
//!   pinned to scalar kernels with the packed weight cache off (the exact
//!   PR-5 execution path), at the detected SIMD level with pre-packed f32
//!   weights, and with int8 weight-only quantized matmuls. All three arms
//!   share one trained pipeline, so the speedups isolate kernel + layout.
//! * **kernel GFLOP/s** — per-shape-bucket matmul throughput for the
//!   scalar oracle, the runtime-detected SIMD tier, the pre-packed layout
//!   and the int8 quantized kernel. Buckets mirror the model's hot shapes,
//!   including the single-row beam-step case.
//!
//! Both arms also report the buffer pool's process-wide counters (the stats
//! keep counting with recycling disabled, so the baseline arm still shows
//! its bytes allocated). The report goes through the observability JSONL
//! sink ([`valuenet_obs::JsonlWriter`]): a `meta` line first, then one
//! `{"type":"bench"}` record per measurement, all stamped with
//! `schema_version` — `vn-obs-check BENCH_speed.json` validates the file in
//! CI's perf-smoke job.
//!
//! Scale via `--quick` (CI-sized corpus) and the usual `VN_TRAIN` /
//! `VN_DEV` / `VN_ROWS` knobs. `OBS=1` profiles the measured runs.

use std::time::Instant;
use valuenet_core::{
    assemble_candidates, build_input_opts, train, ModelConfig, ModelInput, TrainConfig, ValueMode,
};
use valuenet_dataset::{generate, Corpus, CorpusConfig};
use valuenet_obs::json::Json;
use valuenet_preprocess::preprocess;
use valuenet_tensor::packed::{PackedMatrix, QuantizedMatrix};
use valuenet_tensor::pool;
use valuenet_tensor::simd::{self, SimdLevel};
use valuenet_tensor::Tensor;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Deterministic pseudo-random matrix contents in [-1, 1] for the kernel
/// buckets — seeded by position so every run times identical inputs.
fn bucket_data(n: usize, salt: u64) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let h = (i as u64).wrapping_add(salt).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            ((h >> 40) as f32) / 8_388_608.0 * 2.0 - 1.0
        })
        .collect()
}

/// Switches both allocation-related toggles together: the tensor buffer
/// pool and kernel fusion. `false` reproduces the pre-rework execution
/// behaviour (every op clones, every buffer is malloc'd and freed).
fn set_current_mode(on: bool) {
    pool::set_enabled(on);
    valuenet_tensor::set_fusion_enabled(on);
    // Buffers cached from the other arm would let a disabled pool still see
    // stale state (or an enabled one start half-warm and skew the hit rate).
    pool::clear_thread_local();
}

struct TrainArm {
    per_epoch_ms: f64,
    samples_per_sec: f64,
    pool_per_epoch: pool::PoolStats,
}

/// Marginal per-epoch cost and per-epoch pool deltas for one arm.
///
/// The timing is the best of three (3-epoch minus 1-epoch)/2 marginals —
/// the minimum is the standard robust estimator for wall-clock measurements
/// on a shared machine, where interference only ever adds time. The pool
/// counters come from the steady-state 3-epoch run divided by 3: marginal
/// subtraction is wrong for them, because a run that starts with a warm
/// pool (populated by the previous run) sees *fewer* misses than the cold
/// 1-epoch run and the difference underflows.
fn measure_training(corpus: &Corpus, model_cfg: &ModelConfig) -> TrainArm {
    let run = |epochs: usize| {
        let cfg = TrainConfig { epochs, threads: 1, ..Default::default() };
        let s0 = pool::stats();
        let t = Instant::now();
        train(corpus, ValueMode::Light, model_cfg.clone(), &cfg);
        (t.elapsed().as_secs_f64() * 1e3, pool::stats().since(&s0))
    };
    let mut per_epoch_ms = f64::INFINITY;
    let mut pool_per_epoch = pool::PoolStats::default();
    for _ in 0..3 {
        let (ms1, _) = run(1);
        let (ms3, st3) = run(3);
        per_epoch_ms = per_epoch_ms.min((ms3 - ms1) / 2.0);
        pool_per_epoch = pool::PoolStats {
            hits: st3.hits / 3,
            misses: st3.misses / 3,
            returns: st3.returns / 3,
            alloc_bytes: st3.alloc_bytes / 3,
            recycled_bytes: st3.recycled_bytes / 3,
        };
    }
    TrainArm {
        per_epoch_ms,
        samples_per_sec: corpus.train.len() as f64 / (per_epoch_ms / 1e3).max(1e-9),
        pool_per_epoch,
    }
}

fn pool_json(s: &pool::PoolStats) -> Json {
    Json::obj(vec![
        ("hit_rate", Json::Num(s.hit_rate())),
        ("hits", Json::Int(s.hits as i64)),
        ("misses", Json::Int(s.misses as i64)),
        ("alloc_bytes", Json::Int(s.alloc_bytes as i64)),
        ("recycled_bytes", Json::Int(s.recycled_bytes as i64)),
    ])
}

fn main() {
    valuenet_obs::init_from_env();
    let quick = std::env::args().any(|a| a == "--quick");
    let (dt, dd, dr) = if quick { (48, 24, 8) } else { (96, 48, 12) };
    let corpus = generate(&CorpusConfig {
        seed: 11,
        train_size: env_usize("VN_TRAIN", dt),
        dev_size: env_usize("VN_DEV", dd),
        rows_per_table: env_usize("VN_ROWS", dr),
        ..CorpusConfig::default()
    });
    let mut model_cfg = ModelConfig::tiny();
    model_cfg.beam_width = 4;

    // --- Training: samples/sec, baseline vs current ---------------------
    set_current_mode(false);
    let base = measure_training(&corpus, &model_cfg);
    eprintln!(
        "training baseline: {:.1} ms/epoch ({:.1} samples/s, {} MiB allocated/epoch)",
        base.per_epoch_ms,
        base.samples_per_sec,
        base.pool_per_epoch.alloc_bytes >> 20
    );
    set_current_mode(true);
    let cur = measure_training(&corpus, &model_cfg);
    eprintln!(
        "training current:  {:.1} ms/epoch ({:.1} samples/s, pool hit rate {:.3})",
        cur.per_epoch_ms,
        cur.samples_per_sec,
        cur.pool_per_epoch.hit_rate()
    );
    let train_speedup = cur.samples_per_sec / base.samples_per_sec.max(1e-9);
    let training = Json::obj(vec![
        ("type", Json::Str("bench".into())),
        ("name", Json::Str("training".into())),
        ("train_samples", Json::Int(corpus.train.len() as i64)),
        ("baseline_samples_per_sec", Json::Num(base.samples_per_sec)),
        ("samples_per_sec", Json::Num(cur.samples_per_sec)),
        ("speedup", Json::Num(train_speedup)),
        ("baseline_pool", pool_json(&base.pool_per_epoch)),
        ("pool", pool_json(&cur.pool_per_epoch)),
    ]);

    // --- Inference: beam-width-4 queries/sec, baseline vs current -------
    // One trained pipeline serves both arms; inputs are prebuilt so the
    // measurement isolates encode + beam decode.
    set_current_mode(true);
    let (pipeline, _) = train(
        &corpus,
        ValueMode::Light,
        model_cfg,
        &TrainConfig { epochs: 2, threads: 1, ..Default::default() },
    );
    let inputs: Vec<ModelInput> = corpus
        .dev
        .iter()
        .map(|s| {
            let db = corpus.db(s);
            let pre = preprocess(&s.question, db, &pipeline.ner, &pipeline.cand_cfg);
            let cands = assemble_candidates(db, &pre, ValueMode::Light, Some(&s.values), false);
            build_input_opts(db, &pre, &cands, &pipeline.model.vocab, pipeline.model.input_options())
        })
        .collect();
    let reps = if quick { 1 } else { 3 };

    // Best-of-3 sweeps per arm, for the same reason as the training minimum.
    set_current_mode(false);
    let s0 = pool::stats();
    let mut base_secs = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..reps {
            for input in &inputs {
                std::hint::black_box(pipeline.model.predict_beam_unbatched(input));
            }
        }
        base_secs = base_secs.min(t.elapsed().as_secs_f64());
    }
    let base_pool = pool::stats().since(&s0);
    let base_qps = (reps * inputs.len()) as f64 / base_secs.max(1e-9);
    eprintln!("inference baseline (unbatched, pool/fusion off): {base_qps:.1} queries/s");

    set_current_mode(true);
    let s0 = pool::stats();
    let mut cur_secs = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..reps {
            for input in &inputs {
                std::hint::black_box(pipeline.model.predict_beam(input));
            }
        }
        cur_secs = cur_secs.min(t.elapsed().as_secs_f64());
    }
    let cur_pool = pool::stats().since(&s0);
    let cur_qps = (reps * inputs.len()) as f64 / cur_secs.max(1e-9);
    eprintln!("inference current  (batched, pool/fusion on):    {cur_qps:.1} queries/s");

    // Stderr-only diagnostic: encode-only cost per arm, to show how much of
    // a query is encoding (shared shape work) versus beam decoding.
    for (label, mode) in [("off", false), ("on", true)] {
        set_current_mode(mode);
        let t = Instant::now();
        for input in &inputs {
            let mut g = valuenet_tensor::Graph::new();
            std::hint::black_box(pipeline.model.encode(&mut g, input, None));
        }
        let us = t.elapsed().as_secs_f64() * 1e6 / inputs.len() as f64;
        eprintln!("encode-only (rework {label}): {us:.0} µs/query");
    }
    let infer_speedup = cur_qps / base_qps.max(1e-9);
    let inference = Json::obj(vec![
        ("type", Json::Str("bench".into())),
        ("name", Json::Str("inference_beam4".into())),
        ("queries", Json::Int((reps * inputs.len()) as i64)),
        ("beam_width", Json::Int(4)),
        ("baseline_queries_per_sec", Json::Num(base_qps)),
        ("queries_per_sec", Json::Num(cur_qps)),
        ("speedup", Json::Num(infer_speedup)),
        ("baseline_pool", pool_json(&base_pool)),
        ("pool", pool_json(&cur_pool)),
    ]);

    // --- Inference, SIMD tier: PR-5 path vs SIMD f32 vs int8 ------------
    // The PR-5 arm keeps pool+fusion on (this PR's baseline is the previous
    // PR's best path) but pins the kernels to the scalar tier and disables
    // the packed inference weight cache, reproducing the prior tape
    // execution exactly. The SIMD arm runs at the detected level with
    // pre-packed f32 weights (bit-identical results by construction); the
    // int8 arm swaps in the quantized weights.
    let detected = simd::detected_level();
    let measure_beam = |reps: usize| {
        let mut secs = f64::INFINITY;
        for _ in 0..3 {
            let t = Instant::now();
            for _ in 0..reps {
                for input in &inputs {
                    std::hint::black_box(pipeline.model.predict_beam(input));
                }
            }
            secs = secs.min(t.elapsed().as_secs_f64());
        }
        (reps * inputs.len()) as f64 / secs.max(1e-9)
    };

    set_current_mode(true);
    simd::set_level(SimdLevel::Scalar);
    valuenet_nn::set_packed_inference(false);
    let pr5_qps = measure_beam(reps);
    eprintln!("inference pr5 path (scalar kernels, tape weights):   {pr5_qps:.1} queries/s");

    simd::set_level(detected);
    valuenet_nn::set_packed_inference(true);
    let simd_qps = measure_beam(reps);
    eprintln!(
        "inference simd f32 ({}, packed weights):           {simd_qps:.1} queries/s",
        detected.name()
    );

    pipeline.model.params.set_quantized(true);
    let int8_qps = measure_beam(reps);
    pipeline.model.params.set_quantized(false);
    eprintln!(
        "inference int8     ({}, quantized weights):        {int8_qps:.1} queries/s",
        detected.name()
    );

    let simd_speedup = simd_qps / pr5_qps.max(1e-9);
    let int8_speedup = int8_qps / pr5_qps.max(1e-9);
    let simd_bench = Json::obj(vec![
        ("type", Json::Str("bench".into())),
        ("name", Json::Str("inference_beam4_simd".into())),
        ("simd", Json::Str(detected.name().into())),
        ("queries", Json::Int((reps * inputs.len()) as i64)),
        ("beam_width", Json::Int(4)),
        ("pr5_queries_per_sec", Json::Num(pr5_qps)),
        ("simd_queries_per_sec", Json::Num(simd_qps)),
        ("int8_queries_per_sec", Json::Num(int8_qps)),
        ("simd_speedup", Json::Num(simd_speedup)),
        ("int8_speedup", Json::Num(int8_speedup)),
    ]);

    // --- Per-kernel GFLOP/s over the model's hot shape buckets ----------
    // n×k activations against k×m weights; iteration counts target a fixed
    // flop volume per bucket so small shapes don't under-sample.
    let buckets: &[(&str, usize, usize, usize)] = &[
        ("beam_row_1x64x256", 1, 64, 256),
        ("beam4_lstm_4x48x192", 4, 48, 192),
        ("encoder_24x64x64", 24, 64, 64),
        ("square_48x48x48", 48, 48, 48),
    ];
    let target_flops = if quick { 2.0e7 } else { 2.0e8 };
    let mut kernel_records = Vec::new();
    for &(label, n, k, m) in buckets {
        let a = Tensor::from_vec(n, k, bucket_data(n * k, 1));
        let wmat = Tensor::from_vec(k, m, bucket_data(k * m, 2));
        let packed = PackedMatrix::from_tensor(&wmat);
        let quant = QuantizedMatrix::quantize(wmat.as_slice(), k, m, None);
        let flops_per = (2 * n * k * m) as f64;
        let iters = ((target_flops / flops_per) as usize).max(20);
        let time_gflops = |f: &mut dyn FnMut()| {
            let mut secs = f64::INFINITY;
            for _ in 0..3 {
                let t = Instant::now();
                for _ in 0..iters {
                    f();
                }
                secs = secs.min(t.elapsed().as_secs_f64());
            }
            flops_per * iters as f64 / secs.max(1e-12) / 1e9
        };
        let scalar_g =
            time_gflops(&mut || drop(std::hint::black_box(a.matmul_with_level(&wmat, SimdLevel::Scalar))));
        let simd_g =
            time_gflops(&mut || drop(std::hint::black_box(a.matmul_with_level(&wmat, detected))));
        let packed_g = time_gflops(&mut || drop(std::hint::black_box(packed.matmul_at(detected, &a))));
        let int8_g = time_gflops(&mut || drop(std::hint::black_box(quant.matmul_at(detected, &a))));
        eprintln!(
            "kernel {label}: scalar {scalar_g:.2} | simd {simd_g:.2} | packed {packed_g:.2} \
             | int8 {int8_g:.2} GFLOP/s"
        );
        kernel_records.push(Json::obj(vec![
            ("type", Json::Str("bench".into())),
            ("name", Json::Str("kernel_gflops".into())),
            ("shape", Json::Str(label.into())),
            ("simd", Json::Str(detected.name().into())),
            ("iters", Json::Int(iters as i64)),
            ("scalar_gflops", Json::Num(scalar_g)),
            ("simd_gflops", Json::Num(simd_g)),
            ("packed_gflops", Json::Num(packed_g)),
            ("int8_gflops", Json::Num(int8_g)),
        ]));
    }

    let mut w =
        valuenet_obs::JsonlWriter::create("BENCH_speed.json").expect("can create BENCH_speed.json");
    w.write(Json::obj(vec![
        ("type", Json::Str("meta".into())),
        ("bench", Json::Str("speed".into())),
        ("quick", Json::Bool(quick)),
    ]))
    .expect("meta writes");
    w.write(training.clone()).expect("training record writes");
    w.write(inference.clone()).expect("inference record writes");
    w.write(simd_bench.clone()).expect("simd inference record writes");
    for record in &kernel_records {
        w.write(record.clone()).expect("kernel record writes");
    }
    w.finish().expect("report flushes");
    println!("{}", training.render());
    println!("{}", inference.render());
    println!("{}", simd_bench.render());
    eprintln!(
        "speedups: training {train_speedup:.2}x, beam-4 inference {infer_speedup:.2}x, \
         simd-vs-pr5 {simd_speedup:.2}x, int8-vs-pr5 {int8_speedup:.2}x"
    );
    valuenet_obs::finish();
    // Leave the process in the default (pooled, fused, packed) configuration.
    set_current_mode(true);
    simd::set_level(detected);
    valuenet_nn::set_packed_inference(true);
}
