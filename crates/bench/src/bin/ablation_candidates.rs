//! Ablation of the value-candidate pipeline (DESIGN.md Section 5).
//!
//! Re-trains and evaluates ValueNet (full mode) with individual candidate
//! generators disabled, quantifying the contribution of:
//!
//! - **validation** (Section IV-B3: exact DB lookups pruning candidates),
//! - **similarity search** (Damerau–Levenshtein against the base data),
//! - **n-grams** (sub-spans of multi-token values),
//! - **handcrafted heuristics** (gender / boolean / ordinal / month),
//! - the **candidate cap** (a large cap shows the paper's "(too) many
//!   value candidates" effect).
//!
//! ```text
//! cargo run --release -p valuenet-bench --bin ablation_candidates
//! ```

use valuenet_bench::{evaluate, BenchConfig};
use valuenet_core::{train, ModelConfig, TrainConfig, ValueMode};
use valuenet_dataset::generate;
use valuenet_eval::TextTable;
use valuenet_preprocess::CandidateConfig;

fn main() {
    let cfg = BenchConfig::from_env();
    let corpus = generate(&cfg.corpus(0));

    let variants: Vec<(&str, CandidateConfig)> = vec![
        ("full pipeline", CandidateConfig::default()),
        (
            "no validation",
            CandidateConfig { enable_validation: false, ..Default::default() },
        ),
        (
            "no similarity search",
            CandidateConfig { enable_similarity: false, ..Default::default() },
        ),
        ("no n-grams", CandidateConfig { enable_ngrams: false, ..Default::default() }),
        (
            "no handcrafted heuristics",
            CandidateConfig { enable_heuristics: false, ..Default::default() },
        ),
        (
            "candidate cap 40 (many candidates)",
            CandidateConfig { max_candidates: 40, ..Default::default() },
        ),
        (
            "candidate cap 4 (starved)",
            CandidateConfig { max_candidates: 4, ..Default::default() },
        ),
    ];

    println!(
        "Candidate-pipeline ablation — ValueNet (full), {} train / {} dev, {} epochs\n",
        cfg.train_size, cfg.dev_size, cfg.epochs
    );
    let mut table = TextTable::new(vec!["variant", "exec accuracy", "skipped train samples"]);
    for (name, cand_cfg) in variants {
        eprintln!("training variant: {name}...");
        let tc = TrainConfig { cand_cfg, ..cfg.train_cfg(0) };
        let (pipeline, report) = train(&corpus, ValueMode::Full, ModelConfig::default(), &tc);
        let stats = evaluate(&pipeline, &corpus, &corpus.dev);
        table.row(vec![
            name.to_string(),
            format!("{:.1}%", 100.0 * stats.execution_accuracy()),
            report.skipped_samples.to_string(),
        ]);
    }
    print!("{table}");

    // Model-input ablations (DESIGN.md: hints, value-location encoding) and
    // the beam-search extension, all trained on the same corpus.
    let model_variants: Vec<(&str, ModelConfig)> = vec![
        ("no hints", ModelConfig { use_hints: false, ..Default::default() }),
        (
            "no value-location encoding",
            ModelConfig { encode_value_location: false, ..Default::default() },
        ),
        (
            "beam width 4 + execution-guided",
            ModelConfig { beam_width: 4, ..Default::default() },
        ),
    ];
    let mut table = TextTable::new(vec!["model variant", "exec accuracy"]);
    for (name, model_cfg) in model_variants {
        eprintln!("training model variant: {name}...");
        let (pipeline, _) = train(&corpus, ValueMode::Full, model_cfg, &cfg.train_cfg(0));
        let stats = evaluate(&pipeline, &corpus, &corpus.dev);
        table.row(vec![
            name.to_string(),
            format!("{:.1}%", 100.0 * stats.execution_accuracy()),
        ]);
    }
    print!("{table}");
    println!("\nshape check: the full pipeline should be at or near the top.");
}
