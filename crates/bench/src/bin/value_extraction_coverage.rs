//! Regenerates the **Section V-E** statistic: the share of value-bearing
//! samples for which the candidate pipeline recovers *all* gold values.
//!
//! Paper: all values extracted for 3,200 of 3,531 value-bearing train
//! samples (~90%), stable on dev; the missing ~10% concentrate in the Hard
//! and Extra-hard value-difficulty classes (e.g. "left handed" → `'L'`).
//!
//! ```text
//! cargo run --release -p valuenet-bench --bin value_extraction_coverage
//! ```

use std::collections::BTreeMap;
use valuenet_bench::BenchConfig;
use valuenet_core::{assemble_candidates, ValueMode};
use valuenet_dataset::{generate, Sample, ValueDifficulty};
use valuenet_eval::TextTable;
use valuenet_preprocess::{preprocess, tokenize_question, CandidateConfig, StatisticalNer};

fn coverage(
    corpus: &valuenet_dataset::Corpus,
    samples: &[Sample],
    ner: &StatisticalNer,
) -> (usize, usize, BTreeMap<ValueDifficulty, (usize, usize)>) {
    let cfg = CandidateConfig::default();
    let mut covered = 0;
    let mut value_bearing = 0;
    let mut by_class: BTreeMap<ValueDifficulty, (usize, usize)> = BTreeMap::new();
    for s in samples {
        let visible: Vec<_> = s.value_infos.iter().filter(|v| !v.implicit).collect();
        if visible.is_empty() {
            continue;
        }
        value_bearing += 1;
        let db = corpus.db(s);
        let pre = preprocess(&s.question, db, ner, &cfg);
        let cands = assemble_candidates(db, &pre, ValueMode::Full, None, false);
        let have = |v: &str| cands.iter().any(|(c, _)| c.eq_ignore_ascii_case(v));
        let mut all = true;
        for vi in &visible {
            let found = have(&vi.db_value);
            let e = by_class.entry(vi.difficulty).or_insert((0, 0));
            e.1 += 1;
            if found {
                e.0 += 1;
            } else {
                all = false;
            }
        }
        if all {
            covered += 1;
        }
    }
    (covered, value_bearing, by_class)
}

fn main() {
    let cfg = BenchConfig::from_env();
    let corpus = generate(&cfg.corpus(0));

    // Train the statistical NER exactly as the trainer does.
    let mut ner = StatisticalNer::new();
    let examples: Vec<_> = corpus
        .train
        .iter()
        .map(|s| {
            (
                tokenize_question(&s.question),
                s.value_infos
                    .iter()
                    .filter(|v| !v.implicit)
                    .map(|v| v.question_text.clone())
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    ner.fit(&examples);

    println!("Section V-E — value-extraction coverage of the candidate pipeline\n");
    for (split, samples) in [("train", &corpus.train), ("dev", &corpus.dev)] {
        let (covered, bearing, by_class) = coverage(&corpus, samples, &ner);
        println!(
            "{split}: all values recovered for {covered} of {bearing} value-bearing samples \
             ({:.1}%; paper: ~90%)",
            100.0 * covered as f64 / bearing.max(1) as f64
        );
        let mut table =
            TextTable::new(vec!["value difficulty", "recovered", "total", "rate"]);
        for d in ValueDifficulty::ALL {
            if let Some((ok, total)) = by_class.get(&d) {
                table.row(vec![
                    d.label().to_string(),
                    ok.to_string(),
                    total.to_string(),
                    format!("{:.1}%", 100.0 * *ok as f64 / *total as f64),
                ]);
            }
        }
        println!("{table}");
    }
    println!("shape check: misses concentrate in the Hard/Extra-Hard classes (paper V-E).");
}
