//! Serving-engine throughput/latency benchmark, written to `BENCH_serve.json`.
//!
//! Measures the [`valuenet_serve::Engine`] end to end — admission, bounded
//! queue, worker pool, retry and degradation — on a deterministically
//! trained pipeline, in two regimes and two fault arms each:
//!
//! * **sustained** — closed loop: one submitter per worker hammers
//!   `translate_blocking` back to back. The resulting queries/sec is the
//!   engine's saturation throughput and sets the offered rate below.
//! * **open loop** — requests are dispatched on a fixed schedule at 70% of
//!   the measured sustained rate, independent of completions (so queueing
//!   delay is *charged to the request*, not hidden by backpressure).
//!   Latency is scheduled-arrival → response and is reported as
//!   p50/p90/p99.
//!
//! Each regime runs once cleanly and once with injected faults: every 8th
//! request carries a `FaultSpec` that panics its worker once at the
//! encode/decode stage, forcing the catch-unwind → respawn → degraded-retry
//! path. The fault arm's records carry the pool counters (panics, respawns,
//! shed, live workers) so the report shows recovery, not just slowdown.
//!
//! The report goes through the observability JSONL sink
//! ([`valuenet_obs::JsonlWriter`]): a `meta` line first, then one
//! `{"type":"bench"}` record per measurement, all stamped with
//! `schema_version` — `vn-obs-check BENCH_serve.json` validates the file in
//! CI. Scale via `--quick` (CI-sized corpus) and `VN_TRAIN` / `VN_DEV` /
//! `VN_ROWS` / `VN_SERVE_WORKERS`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

use valuenet_core::{train, ModelConfig, Stage, TrainConfig, ValueMode};
use valuenet_dataset::{generate, CorpusConfig};
use valuenet_obs::json::Json;
use valuenet_serve::{Engine, ErrorKind, FaultSpec, Response, ServeConfig, TranslateJob};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Nearest-rank percentile over an already-sorted latency sample.
fn percentile_ms(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)] as f64 / 1e3
}

/// Panic-once-at-encode fault for every `every`-th request (0 = never).
fn fault_for(seq: u64, every: u64) -> Option<FaultSpec> {
    (every > 0 && seq.is_multiple_of(every)).then(|| FaultSpec {
        panic_stage: Some(Stage::EncodeDecode),
        panic_times: 1,
        ..FaultSpec::default()
    })
}

struct OpenLoopResult {
    offered_qps: f64,
    dispatched: usize,
    completed: u64,
    translate_failed: u64,
    rejected: u64,
    shed_at_submit: u64,
    latencies_us: Vec<u64>,
}

fn main() {
    valuenet_obs::init_from_env();
    let quick = std::env::args().any(|a| a == "--quick");
    let (dt, dd, dr) = if quick { (48, 24, 8) } else { (96, 48, 12) };
    let corpus = generate(&CorpusConfig {
        seed: 11,
        train_size: env_usize("VN_TRAIN", dt),
        dev_size: env_usize("VN_DEV", dd),
        rows_per_table: env_usize("VN_ROWS", dr),
        ..CorpusConfig::default()
    });
    let (pipeline, _) = train(
        &corpus,
        ValueMode::Full,
        ModelConfig::tiny(),
        &TrainConfig { epochs: 2, threads: 1, ..Default::default() },
    );

    // The request mix cycles over the dev questions; collect it before the
    // databases move into the engine.
    let requests: Vec<(String, String)> = corpus
        .dev
        .iter()
        .map(|s| (corpus.db(s).schema().db_id.clone(), s.question.clone()))
        .collect();
    let workers = env_usize("VN_SERVE_WORKERS", 4);
    let cfg = ServeConfig {
        workers,
        queue_capacity: 256,
        allow_fault_injection: true,
        ..ServeConfig::default()
    };
    let queue_capacity = cfg.queue_capacity;
    let engine = Engine::start(pipeline, corpus.databases, cfg);
    let seq = AtomicU64::new(1);

    // Warm the engine (first request per database pays cold caches).
    for (db, question) in &requests {
        engine.translate_blocking(TranslateJob {
            id: Some(seq.fetch_add(1, Ordering::Relaxed) as i64),
            db: db.clone(),
            question: question.clone(),
            ..TranslateJob::default()
        });
    }

    // --- Sustained (closed loop): one submitter per worker ---------------
    let measure_sustained = |fault_every: u64| -> (f64, u64, u64) {
        let reps = if quick { 2 } else { 4 };
        let ok = AtomicU64::new(0);
        let other = AtomicU64::new(0);
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for lane in 0..workers {
                let (engine, requests, seq, ok, other) =
                    (&engine, &requests, &seq, &ok, &other);
                s.spawn(move || {
                    for r in 0..reps {
                        for (i, (db, question)) in requests.iter().enumerate() {
                            // Stagger lanes so they don't all hit the same db.
                            let (db, question) = if (lane + r + i) % 2 == 0 {
                                (db, question)
                            } else {
                                let alt = &requests[(i + lane) % requests.len()];
                                (&alt.0, &alt.1)
                            };
                            let n = seq.fetch_add(1, Ordering::Relaxed);
                            let job = TranslateJob {
                                id: Some(n as i64),
                                db: db.clone(),
                                question: question.clone(),
                                fault: fault_for(n, fault_every),
                                ..TranslateJob::default()
                            };
                            match engine.translate_blocking(job) {
                                Response::Translated { .. } => ok.fetch_add(1, Ordering::Relaxed),
                                _ => other.fetch_add(1, Ordering::Relaxed),
                            };
                        }
                    }
                });
            }
        });
        let secs = t0.elapsed().as_secs_f64();
        let (ok, other) = (ok.load(Ordering::Relaxed), other.load(Ordering::Relaxed));
        ((ok + other) as f64 / secs.max(1e-9), ok, other)
    };

    let (clean_qps, clean_ok, clean_other) = measure_sustained(0);
    eprintln!("sustained clean:   {clean_qps:.1} queries/s ({clean_ok} ok, {clean_other} other)");
    let panics_before = engine.stats().worker_panics();
    let (fault_qps, fault_ok, fault_other) = measure_sustained(8);
    let sustained_panics = engine.stats().worker_panics() - panics_before;
    eprintln!(
        "sustained faulted: {fault_qps:.1} queries/s ({fault_ok} ok, {fault_other} other, \
         {sustained_panics} worker panics)"
    );

    // --- Open loop at 70% of clean sustained ------------------------------
    // A dispatcher submits on a fixed schedule; a collector pool stamps the
    // arrival of each response so latency includes queue wait. Collector
    // capacity (2x workers) exceeds the steady-state outstanding count at
    // this rate, so stamping lag is bounded by a single service time.
    let offered_qps = (clean_qps * 0.7).max(1.0);
    let n_requests = if quick { 150 } else { 400 };
    let open_loop = |fault_every: u64| -> OpenLoopResult {
        let interval = Duration::from_secs_f64(1.0 / offered_qps);
        let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(n_requests));
        let completed = AtomicU64::new(0);
        let translate_failed = AtomicU64::new(0);
        let rejected = AtomicU64::new(0);
        let mut shed_at_submit = 0u64;
        let mut dispatched = 0usize;
        let (tx, rx) = mpsc::channel::<(Instant, mpsc::Receiver<Response>)>();
        let rx = Mutex::new(rx);
        std::thread::scope(|s| {
            for _ in 0..workers * 2 {
                let (rx, latencies, completed, translate_failed, rejected) =
                    (&rx, &latencies, &completed, &translate_failed, &rejected);
                s.spawn(move || loop {
                    let job = match rx.lock().unwrap().recv() {
                        Ok(job) => job,
                        Err(_) => return,
                    };
                    let (scheduled, reply) = job;
                    match reply.recv() {
                        Ok(Response::Translated { .. }) => {
                            let us = scheduled.elapsed().as_micros() as u64;
                            latencies.lock().unwrap().push(us);
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(Response::Error { error, .. })
                            if error.kind == ErrorKind::TranslateFailed =>
                        {
                            translate_failed.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
            let t0 = Instant::now();
            for i in 0..n_requests {
                let scheduled = t0 + interval.mul_f64(i as f64);
                if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
                let (db, question) = &requests[i % requests.len()];
                let n = seq.fetch_add(1, Ordering::Relaxed);
                let job = TranslateJob {
                    id: Some(n as i64),
                    db: db.clone(),
                    question: question.clone(),
                    fault: fault_for(n, fault_every),
                    ..TranslateJob::default()
                };
                dispatched += 1;
                match engine.submit(job) {
                    Ok(reply) => tx.send((scheduled, reply)).expect("collectors alive"),
                    Err(e) if e.kind == ErrorKind::Overload => shed_at_submit += 1,
                    Err(_) => {
                        rejected.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            drop(tx); // collectors drain the channel and exit
        });
        let mut latencies_us = latencies.into_inner().unwrap();
        latencies_us.sort_unstable();
        OpenLoopResult {
            offered_qps,
            dispatched,
            completed: completed.load(Ordering::Relaxed),
            translate_failed: translate_failed.load(Ordering::Relaxed),
            rejected: rejected.load(Ordering::Relaxed),
            shed_at_submit,
            latencies_us,
        }
    };

    let open_record = |name: &str, r: &OpenLoopResult, faulted: bool| -> Json {
        let mut fields = vec![
            ("type", Json::Str("bench".into())),
            ("name", Json::Str(name.into())),
            ("faults", Json::Bool(faulted)),
            ("workers", Json::Int(workers as i64)),
            ("offered_qps", Json::Num(r.offered_qps)),
            ("dispatched", Json::Int(r.dispatched as i64)),
            ("completed", Json::Int(r.completed as i64)),
            ("translate_failed", Json::Int(r.translate_failed as i64)),
            ("rejected", Json::Int(r.rejected as i64)),
            ("shed_at_submit", Json::Int(r.shed_at_submit as i64)),
            ("p50_ms", Json::Num(percentile_ms(&r.latencies_us, 0.50))),
            ("p90_ms", Json::Num(percentile_ms(&r.latencies_us, 0.90))),
            ("p99_ms", Json::Num(percentile_ms(&r.latencies_us, 0.99))),
        ];
        if faulted {
            fields.push(("worker_panics", Json::Int(engine.stats().worker_panics() as i64)));
            fields.push(("worker_respawns", Json::Int(engine.stats().worker_respawns() as i64)));
            fields.push(("live_workers", Json::Int(engine.live_workers() as i64)));
        }
        Json::obj(fields)
    };

    let clean = open_loop(0);
    eprintln!(
        "open loop clean:   offered {:.1} qps, p50 {:.1} ms, p99 {:.1} ms ({} completed, {} shed)",
        clean.offered_qps,
        percentile_ms(&clean.latencies_us, 0.50),
        percentile_ms(&clean.latencies_us, 0.99),
        clean.completed,
        clean.shed_at_submit,
    );
    let faulted = open_loop(8);
    eprintln!(
        "open loop faulted: offered {:.1} qps, p50 {:.1} ms, p99 {:.1} ms ({} completed, {} shed, \
         {} panics total)",
        faulted.offered_qps,
        percentile_ms(&faulted.latencies_us, 0.50),
        percentile_ms(&faulted.latencies_us, 0.99),
        faulted.completed,
        faulted.shed_at_submit,
        engine.stats().worker_panics(),
    );
    if engine.live_workers() != workers {
        eprintln!(
            "bench_serve: WORKER LEAK — {} live of {workers} configured",
            engine.live_workers()
        );
        std::process::exit(1);
    }

    let sustained = Json::obj(vec![
        ("type", Json::Str("bench".into())),
        ("name", Json::Str("serve_sustained".into())),
        ("workers", Json::Int(workers as i64)),
        ("queue_capacity", Json::Int(queue_capacity as i64)),
        ("queries_per_sec", Json::Num(clean_qps)),
        ("faulted_queries_per_sec", Json::Num(fault_qps)),
        ("faulted_worker_panics", Json::Int(sustained_panics as i64)),
    ]);
    let open_clean = open_record("serve_open_loop", &clean, false);
    let open_faulted = open_record("serve_open_loop", &faulted, true);
    // The SLO burn rates over everything the bench pushed through the
    // engine. Injected faults all recover (degraded retries complete), so
    // burn should stay within budget — `vn-slo-check BENCH_serve.json`
    // gates on exactly this record.
    let slo = engine.slo_json("serve_bench");
    eprintln!("slo: {}", slo.render());

    let mut w =
        valuenet_obs::JsonlWriter::create("BENCH_serve.json").expect("can create BENCH_serve.json");
    w.write(Json::obj(vec![
        ("type", Json::Str("meta".into())),
        ("bench", Json::Str("serve".into())),
        ("quick", Json::Bool(quick)),
    ]))
    .expect("meta writes");
    w.write(sustained.clone()).expect("sustained record writes");
    w.write(open_clean.clone()).expect("open-loop record writes");
    w.write(open_faulted.clone()).expect("faulted open-loop record writes");
    w.write(slo.clone()).expect("slo record writes");
    w.finish().expect("report flushes");
    println!("{}", sustained.render());
    println!("{}", open_clean.render());
    println!("{}", open_faulted.render());
    println!("{}", slo.render());

    engine.shutdown();
    valuenet_obs::finish();
}
