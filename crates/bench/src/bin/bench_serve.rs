//! Serving-engine throughput/latency benchmark, written to `BENCH_serve.json`.
//!
//! Measures the [`valuenet_serve::Engine`] end to end — admission, bounded
//! queue, worker pool, retry and degradation — on a deterministically
//! trained pipeline, in two regimes and two fault arms each:
//!
//! * **sustained** — closed loop: one submitter per worker hammers
//!   `translate_blocking` back to back. The resulting queries/sec is the
//!   engine's saturation throughput and sets the offered rate below.
//! * **open loop** — requests are dispatched on a fixed schedule at 70% of
//!   the measured sustained rate, independent of completions (so queueing
//!   delay is *charged to the request*, not hidden by backpressure).
//!   Latency is scheduled-arrival → response and is reported as
//!   p50/p90/p99.
//!
//! Each regime runs once cleanly and once with injected faults: every 8th
//! request carries a `FaultSpec` that panics its worker once at the
//! encode/decode stage, forcing the catch-unwind → respawn → degraded-retry
//! path. The fault arm's records carry the pool counters (panics, respawns,
//! shed, live workers) so the report shows recovery, not just slowdown.
//!
//! A third section measures **cross-request batching**: a beam-4 pipeline
//! (decode-dominant, the regime batching targets) trained once, then a
//! sweep over worker-pool sizes where each pool size runs a fresh engine
//! twice — identical weights and offered concurrency (2 lanes per
//! worker), differing only in the batch window (0 vs
//! `VN_BATCH_WINDOW_US`). The `serve_batching` records carry sustained
//! qps, latency percentiles, flush reasons and the realised
//! batch-occupancy distribution; the pair at the largest pool repeats in
//! alternating order and its drift-cancelled ratio lands in the
//! `serve_batching_headline` record.
//!
//! The report goes through the observability JSONL sink
//! ([`valuenet_obs::JsonlWriter`]): a `meta` line first, then one
//! `{"type":"bench"}` record per measurement, all stamped with
//! `schema_version` — `vn-obs-check BENCH_serve.json` validates the file in
//! CI. Scale via `--quick` (CI-sized corpus) and `VN_TRAIN` / `VN_DEV` /
//! `VN_ROWS` / `VN_SERVE_WORKERS`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

use valuenet_core::{train, ModelConfig, Stage, TrainConfig, ValueMode};
use valuenet_dataset::{generate, CorpusConfig};
use valuenet_obs::json::Json;
use valuenet_serve::{Engine, ErrorKind, FaultSpec, Response, ServeConfig, TranslateJob};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Nearest-rank percentile over an already-sorted latency sample.
fn percentile_ms(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)] as f64 / 1e3
}

/// Panic-once-at-encode fault for every `every`-th request (0 = never).
fn fault_for(seq: u64, every: u64) -> Option<FaultSpec> {
    (every > 0 && seq.is_multiple_of(every)).then(|| FaultSpec {
        panic_stage: Some(Stage::EncodeDecode),
        panic_times: 1,
        ..FaultSpec::default()
    })
}

/// Walks a JSON object path, returning 0.0 when absent.
fn json_num(j: &Json, path: &[&str]) -> f64 {
    let mut v = j;
    for k in path {
        match v.get(k) {
            Some(next) => v = next,
            None => return 0.0,
        }
    }
    v.as_f64().unwrap_or(0.0)
}

struct OpenLoopResult {
    offered_qps: f64,
    achieved_qps: f64,
    dispatched: usize,
    completed: u64,
    translate_failed: u64,
    rejected: u64,
    shed_at_submit: u64,
    latencies_us: Vec<u64>,
    occupancy_mean: f64,
    occupancy_p99: f64,
}

fn main() {
    valuenet_obs::init_from_env();
    let quick = std::env::args().any(|a| a == "--quick");
    let (dt, dd, dr) = if quick { (48, 24, 8) } else { (96, 48, 12) };
    let corpus = generate(&CorpusConfig {
        seed: 11,
        train_size: env_usize("VN_TRAIN", dt),
        dev_size: env_usize("VN_DEV", dd),
        rows_per_table: env_usize("VN_ROWS", dr),
        ..CorpusConfig::default()
    });
    let (pipeline, _) = train(
        &corpus,
        ValueMode::Full,
        ModelConfig::tiny(),
        &TrainConfig { epochs: 2, threads: 1, ..Default::default() },
    );

    // The request mix cycles over the dev questions; collect it before the
    // databases move into the engine.
    let requests: Vec<(String, String)> = corpus
        .dev
        .iter()
        .map(|s| (corpus.db(s).schema().db_id.clone(), s.question.clone()))
        .collect();
    let workers = env_usize("VN_SERVE_WORKERS", 4);
    let cfg = ServeConfig {
        workers,
        queue_capacity: 256,
        allow_fault_injection: true,
        ..ServeConfig::default()
    };
    let queue_capacity = cfg.queue_capacity;
    let engine = Engine::start(pipeline, corpus.databases, cfg);
    let seq = AtomicU64::new(1);

    // Warm the engine (first request per database pays cold caches).
    for (db, question) in &requests {
        engine.translate_blocking(TranslateJob {
            id: Some(seq.fetch_add(1, Ordering::Relaxed) as i64),
            db: db.clone(),
            question: question.clone(),
            ..TranslateJob::default()
        });
    }

    // --- Sustained (closed loop): one submitter per worker ---------------
    let measure_sustained = |fault_every: u64| -> (f64, u64, u64) {
        let reps = if quick { 2 } else { 4 };
        let ok = AtomicU64::new(0);
        let other = AtomicU64::new(0);
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for lane in 0..workers {
                let (engine, requests, seq, ok, other) =
                    (&engine, &requests, &seq, &ok, &other);
                s.spawn(move || {
                    for r in 0..reps {
                        for (i, (db, question)) in requests.iter().enumerate() {
                            // Stagger lanes so they don't all hit the same db.
                            let (db, question) = if (lane + r + i) % 2 == 0 {
                                (db, question)
                            } else {
                                let alt = &requests[(i + lane) % requests.len()];
                                (&alt.0, &alt.1)
                            };
                            let n = seq.fetch_add(1, Ordering::Relaxed);
                            let job = TranslateJob {
                                id: Some(n as i64),
                                db: db.clone(),
                                question: question.clone(),
                                fault: fault_for(n, fault_every),
                                ..TranslateJob::default()
                            };
                            match engine.translate_blocking(job) {
                                Response::Translated { .. } => ok.fetch_add(1, Ordering::Relaxed),
                                _ => other.fetch_add(1, Ordering::Relaxed),
                            };
                        }
                    }
                });
            }
        });
        let secs = t0.elapsed().as_secs_f64();
        let (ok, other) = (ok.load(Ordering::Relaxed), other.load(Ordering::Relaxed));
        ((ok + other) as f64 / secs.max(1e-9), ok, other)
    };

    let (clean_qps, clean_ok, clean_other) = measure_sustained(0);
    eprintln!("sustained clean:   {clean_qps:.1} queries/s ({clean_ok} ok, {clean_other} other)");
    let panics_before = engine.stats().worker_panics();
    let (fault_qps, fault_ok, fault_other) = measure_sustained(8);
    let sustained_panics = engine.stats().worker_panics() - panics_before;
    eprintln!(
        "sustained faulted: {fault_qps:.1} queries/s ({fault_ok} ok, {fault_other} other, \
         {sustained_panics} worker panics)"
    );

    // --- Open loop at 70% of clean sustained ------------------------------
    // A dispatcher submits on a fixed schedule; a collector pool stamps the
    // arrival of each response so latency includes queue wait. Collector
    // capacity (2x workers) exceeds the steady-state outstanding count at
    // this rate, so stamping lag is bounded by a single service time.
    let offered_qps = (clean_qps * 0.7).max(1.0);
    let n_requests = if quick { 150 } else { 400 };
    let open_loop = |fault_every: u64| -> OpenLoopResult {
        // Reset the delta stats window so the occupancy read below covers
        // exactly this run.
        let _ = engine.stats_json(true);
        let interval = Duration::from_secs_f64(1.0 / offered_qps);
        let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(n_requests));
        let completed = AtomicU64::new(0);
        let translate_failed = AtomicU64::new(0);
        let rejected = AtomicU64::new(0);
        let mut shed_at_submit = 0u64;
        let mut dispatched = 0usize;
        let t_run = Instant::now();
        let (tx, rx) = mpsc::channel::<(Instant, mpsc::Receiver<Response>)>();
        let rx = Mutex::new(rx);
        std::thread::scope(|s| {
            for _ in 0..workers * 2 {
                let (rx, latencies, completed, translate_failed, rejected) =
                    (&rx, &latencies, &completed, &translate_failed, &rejected);
                s.spawn(move || loop {
                    let job = match rx.lock().unwrap().recv() {
                        Ok(job) => job,
                        Err(_) => return,
                    };
                    let (scheduled, reply) = job;
                    match reply.recv() {
                        Ok(Response::Translated { .. }) => {
                            let us = scheduled.elapsed().as_micros() as u64;
                            latencies.lock().unwrap().push(us);
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(Response::Error { error, .. })
                            if error.kind == ErrorKind::TranslateFailed =>
                        {
                            translate_failed.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
            let t0 = Instant::now();
            for i in 0..n_requests {
                let scheduled = t0 + interval.mul_f64(i as f64);
                if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
                let (db, question) = &requests[i % requests.len()];
                let n = seq.fetch_add(1, Ordering::Relaxed);
                let job = TranslateJob {
                    id: Some(n as i64),
                    db: db.clone(),
                    question: question.clone(),
                    fault: fault_for(n, fault_every),
                    ..TranslateJob::default()
                };
                dispatched += 1;
                match engine.submit(job) {
                    Ok(reply) => tx.send((scheduled, reply)).expect("collectors alive"),
                    Err(e) if e.kind == ErrorKind::Overload => shed_at_submit += 1,
                    Err(_) => {
                        rejected.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            drop(tx); // collectors drain the channel and exit
        });
        let run_secs = t_run.elapsed().as_secs_f64();
        let stats = engine.stats_json(true);
        let mut latencies_us = latencies.into_inner().unwrap();
        latencies_us.sort_unstable();
        let completed = completed.load(Ordering::Relaxed);
        let translate_failed = translate_failed.load(Ordering::Relaxed);
        OpenLoopResult {
            offered_qps,
            // Responses actually served per second of wall clock — under
            // overload this sags below the offered rate.
            achieved_qps: (completed + translate_failed) as f64 / run_secs.max(1e-9),
            dispatched,
            completed,
            translate_failed,
            rejected: rejected.load(Ordering::Relaxed),
            shed_at_submit,
            latencies_us,
            occupancy_mean: json_num(&stats, &["batching", "occupancy", "mean"]),
            occupancy_p99: json_num(&stats, &["batching", "occupancy", "p99"]),
        }
    };

    let open_record = |name: &str, r: &OpenLoopResult, faulted: bool| -> Json {
        let mut fields = vec![
            ("type", Json::Str("bench".into())),
            ("name", Json::Str(name.into())),
            ("faults", Json::Bool(faulted)),
            ("workers", Json::Int(workers as i64)),
            ("offered_qps", Json::Num(r.offered_qps)),
            ("achieved_qps", Json::Num(r.achieved_qps)),
            ("dispatched", Json::Int(r.dispatched as i64)),
            ("completed", Json::Int(r.completed as i64)),
            ("translate_failed", Json::Int(r.translate_failed as i64)),
            ("rejected", Json::Int(r.rejected as i64)),
            ("shed_at_submit", Json::Int(r.shed_at_submit as i64)),
            ("p50_ms", Json::Num(percentile_ms(&r.latencies_us, 0.50))),
            ("p90_ms", Json::Num(percentile_ms(&r.latencies_us, 0.90))),
            ("p99_ms", Json::Num(percentile_ms(&r.latencies_us, 0.99))),
            ("occupancy_mean", Json::Num(r.occupancy_mean)),
            ("occupancy_p99", Json::Num(r.occupancy_p99)),
        ];
        if faulted {
            fields.push(("worker_panics", Json::Int(engine.stats().worker_panics() as i64)));
            fields.push(("worker_respawns", Json::Int(engine.stats().worker_respawns() as i64)));
            fields.push(("live_workers", Json::Int(engine.live_workers() as i64)));
        }
        Json::obj(fields)
    };

    let clean = open_loop(0);
    eprintln!(
        "open loop clean:   offered {:.1} qps, p50 {:.1} ms, p99 {:.1} ms ({} completed, {} shed)",
        clean.offered_qps,
        percentile_ms(&clean.latencies_us, 0.50),
        percentile_ms(&clean.latencies_us, 0.99),
        clean.completed,
        clean.shed_at_submit,
    );
    let faulted = open_loop(8);
    eprintln!(
        "open loop faulted: offered {:.1} qps, p50 {:.1} ms, p99 {:.1} ms ({} completed, {} shed, \
         {} panics total)",
        faulted.offered_qps,
        percentile_ms(&faulted.latencies_us, 0.50),
        percentile_ms(&faulted.latencies_us, 0.99),
        faulted.completed,
        faulted.shed_at_submit,
        engine.stats().worker_panics(),
    );
    if engine.live_workers() != workers {
        eprintln!(
            "bench_serve: WORKER LEAK — {} live of {workers} configured",
            engine.live_workers()
        );
        std::process::exit(1);
    }

    // --- Cross-request batching: workers × window sweep -------------------
    // A decode-dominant pipeline (beam 4) trained ONCE; every arm gets a
    // fresh engine on bit-identically rehydrated weights (model JSON round
    // trip), a fresh corpus, and a closed loop of `2×workers` client lanes.
    // At each worker count the pair differs only in the batch window, so
    // the qps ratio isolates what the batch assembler buys at that pool
    // size: near nothing at small pools (joint decode is compute-parity on
    // a single core), and an increasing win as the unbatched engine's
    // per-request-per-worker decode tapes start thrashing the cache. The
    // headline pair at the largest pool runs twice in alternating order
    // (unbatched, batched, batched, unbatched) so slow host drift cancels
    // out of the ratio of summed rates.
    struct BatchArm {
        workers: usize,
        lanes: usize,
        window_us: u64,
        qps: f64,
        completed: u64,
        other: u64,
        latencies_us: Vec<u64>,
        occupancy_mean: f64,
        occupancy_p99: f64,
        batches: f64,
        batch_members: f64,
        size_flushes: f64,
        window_flushes: f64,
    }
    let batch_window_us = env_usize("VN_BATCH_WINDOW_US", 2_000) as u64;
    let batch_max = env_usize("VN_BATCH_MAX", 8);
    // Total requests per arm; spread over however many lanes the arm has.
    let arm_requests = env_usize("VN_SERVE_BATCH_REQUESTS", if quick { 96 } else { 2048 });
    // Worker-pool sizes to sweep; `VN_SERVE_BATCH_WORKERS=a,b,c` overrides. The
    // last pool is the headline comparison, so it should be the most
    // oversubscribed one — that is where the unbatched engine's thrash is worst
    // and the one-batch-in-flight design pays off most.
    let worker_sweep: Vec<usize> = match std::env::var("VN_SERVE_BATCH_WORKERS") {
        Ok(s) => s
            .split(',')
            .filter_map(|t| t.trim().parse().ok())
            .filter(|&w| w > 0)
            .collect(),
        Err(_) => {
            if quick {
                vec![2, 8]
            } else {
                vec![4, 32, 256]
            }
        }
    };
    let (batch_model_json, batch_ner) = {
        let corpus = generate(&CorpusConfig {
            seed: 11,
            train_size: env_usize("VN_TRAIN", dt),
            dev_size: env_usize("VN_DEV", dd),
            rows_per_table: env_usize("VN_ROWS", dr),
            ..CorpusConfig::default()
        });
        // Training ignores the beam width (teacher forcing), so the decode
        // width is free to differ from the main section's greedy pipeline.
        let (pipeline, _) = train(
            &corpus,
            ValueMode::Full,
            ModelConfig { beam_width: 4, ..ModelConfig::tiny() },
            &TrainConfig { epochs: 2, threads: 1, ..Default::default() },
        );
        (pipeline.model.to_json(), pipeline.ner.clone())
    };
    let run_batch_arm = |workers: usize, window_us: u64| -> BatchArm {
        let corpus = generate(&CorpusConfig {
            seed: 11,
            train_size: env_usize("VN_TRAIN", dt),
            dev_size: env_usize("VN_DEV", dd),
            rows_per_table: env_usize("VN_ROWS", dr),
            ..CorpusConfig::default()
        });
        let model = valuenet_core::ValueNetModel::from_json(&batch_model_json)
            .expect("model JSON roundtrips");
        let pipeline = valuenet_core::Pipeline::new(model, ValueMode::Full, batch_ner.clone());
        let reqs: Vec<(String, String)> = corpus
            .dev
            .iter()
            .map(|s| (corpus.db(s).schema().db_id.clone(), s.question.clone()))
            .collect();
        let lanes = workers * 2;
        let per_lane = (arm_requests / lanes).max(2);
        let engine = Engine::start(pipeline, corpus.databases, ServeConfig {
            workers,
            queue_capacity: (lanes * 2).max(256),
            batch_window_us: window_us,
            batch_max,
            ..ServeConfig::default()
        });
        for (db, question) in &reqs {
            engine.translate_blocking(TranslateJob {
                id: Some(0),
                db: db.clone(),
                question: question.clone(),
                ..TranslateJob::default()
            });
        }
        let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(lanes * per_lane));
        let completed = AtomicU64::new(0);
        let other = AtomicU64::new(0);
        let _ = engine.stats_json(true); // reset the delta window
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for lane in 0..lanes {
                let (engine, reqs, latencies, completed, other) =
                    (&engine, &reqs, &latencies, &completed, &other);
                s.spawn(move || {
                    for i in 0..per_lane {
                        let (db, question) = &reqs[(lane * 7 + i) % reqs.len()];
                        let job = TranslateJob {
                            id: Some((lane * 1000 + i) as i64),
                            db: db.clone(),
                            question: question.clone(),
                            ..TranslateJob::default()
                        };
                        let t = Instant::now();
                        let resp = engine.translate_blocking(job);
                        latencies.lock().unwrap().push(t.elapsed().as_micros() as u64);
                        match resp {
                            Response::Translated { .. } => {
                                completed.fetch_add(1, Ordering::Relaxed)
                            }
                            _ => other.fetch_add(1, Ordering::Relaxed),
                        };
                    }
                });
            }
        });
        let secs = t0.elapsed().as_secs_f64();
        let stats = engine.stats_json(true);
        if engine.live_workers() != workers {
            eprintln!(
                "bench_serve: WORKER LEAK in batching arm — {} live of {workers}",
                engine.live_workers()
            );
            std::process::exit(1);
        }
        engine.shutdown();
        let mut latencies_us = latencies.into_inner().unwrap();
        latencies_us.sort_unstable();
        let (completed, other) = (completed.load(Ordering::Relaxed), other.load(Ordering::Relaxed));
        BatchArm {
            workers,
            lanes,
            window_us,
            qps: (completed + other) as f64 / secs.max(1e-9),
            completed,
            other,
            latencies_us,
            occupancy_mean: json_num(&stats, &["batching", "occupancy", "mean"]),
            occupancy_p99: json_num(&stats, &["batching", "occupancy", "p99"]),
            batches: json_num(&stats, &["batching", "batches"]),
            batch_members: json_num(&stats, &["batching", "members"]),
            size_flushes: json_num(&stats, &["batching", "size_flushes"]),
            window_flushes: json_num(&stats, &["batching", "window_flushes"]),
        }
    };
    let batch_record = |r: &BatchArm, speedup: Option<(f64, f64)>| -> Json {
        let arm = if r.window_us == 0 { "unbatched" } else { "batched" };
        let mut fields = vec![
            ("type", Json::Str("bench".into())),
            ("name", Json::Str("serve_batching".into())),
            ("arm", Json::Str(arm.into())),
            ("window_us", Json::Int(r.window_us as i64)),
            ("batch_max", Json::Int(batch_max as i64)),
            ("workers", Json::Int(r.workers as i64)),
            ("lanes", Json::Int(r.lanes as i64)),
            ("beam_width", Json::Int(4)),
            ("requests", Json::Int((r.completed + r.other) as i64)),
            ("completed", Json::Int(r.completed as i64)),
            ("other", Json::Int(r.other as i64)),
            ("queries_per_sec", Json::Num(r.qps)),
            ("p50_ms", Json::Num(percentile_ms(&r.latencies_us, 0.50))),
            ("p90_ms", Json::Num(percentile_ms(&r.latencies_us, 0.90))),
            ("p99_ms", Json::Num(percentile_ms(&r.latencies_us, 0.99))),
            ("occupancy_mean", Json::Num(r.occupancy_mean)),
            ("occupancy_p99", Json::Num(r.occupancy_p99)),
            ("batches", Json::Num(r.batches)),
            ("batch_members", Json::Num(r.batch_members)),
            ("size_flushes", Json::Num(r.size_flushes)),
            ("window_flushes", Json::Num(r.window_flushes)),
        ];
        if let Some((speedup, unbatched_p99)) = speedup {
            fields.push(("speedup_vs_unbatched", Json::Num(speedup)));
            fields.push(("unbatched_p99_ms", Json::Num(unbatched_p99)));
        }
        Json::obj(fields)
    };
    let mut batching_records: Vec<Json> = Vec::new();
    let mut headline: Option<Json> = None;
    for (i, &bw) in worker_sweep.iter().enumerate() {
        let last = i == worker_sweep.len() - 1;
        let mut arms = vec![run_batch_arm(bw, 0), run_batch_arm(bw, batch_window_us)];
        if last {
            // Headline pair: repeat in reverse order so drift cancels.
            arms.push(run_batch_arm(bw, batch_window_us));
            arms.push(run_batch_arm(bw, 0));
        }
        let (unbatched, batched): (Vec<&BatchArm>, Vec<&BatchArm>) =
            (arms.iter().filter(|a| a.window_us == 0).collect(),
             arms.iter().filter(|a| a.window_us != 0).collect());
        let uq: f64 = unbatched.iter().map(|a| a.qps).sum::<f64>() / unbatched.len() as f64;
        let bq: f64 = batched.iter().map(|a| a.qps).sum::<f64>() / batched.len() as f64;
        let speedup = bq / uq.max(1e-9);
        let mut u_lat: Vec<u64> =
            unbatched.iter().flat_map(|a| a.latencies_us.iter().copied()).collect();
        u_lat.sort_unstable();
        let mut b_lat: Vec<u64> =
            batched.iter().flat_map(|a| a.latencies_us.iter().copied()).collect();
        b_lat.sort_unstable();
        let (u_p99, b_p99) = (percentile_ms(&u_lat, 0.99), percentile_ms(&b_lat, 0.99));
        eprintln!(
            "batching w{bw:<3} unbatched {uq:.1} qps (p99 {u_p99:.1} ms) | batched {bq:.1} qps \
             (p99 {b_p99:.1} ms, occupancy {:.2}) | {speedup:.2}x",
            batched.iter().map(|a| a.occupancy_mean).sum::<f64>() / batched.len() as f64,
        );
        for arm in &arms {
            let sp = (arm.window_us != 0).then_some((speedup, u_p99));
            batching_records.push(batch_record(arm, sp));
        }
        if last {
            headline = Some(Json::obj(vec![
                ("type", Json::Str("bench".into())),
                ("name", Json::Str("serve_batching_headline".into())),
                ("workers", Json::Int(bw as i64)),
                ("lanes", Json::Int((bw * 2) as i64)),
                ("window_us", Json::Int(batch_window_us as i64)),
                ("batch_max", Json::Int(batch_max as i64)),
                ("unbatched_qps", Json::Num(uq)),
                ("batched_qps", Json::Num(bq)),
                ("speedup_vs_unbatched", Json::Num(speedup)),
                ("unbatched_p99_ms", Json::Num(u_p99)),
                ("batched_p99_ms", Json::Num(b_p99)),
            ]));
        }
    }
    let headline = headline.expect("worker sweep is non-empty");

    let sustained = Json::obj(vec![
        ("type", Json::Str("bench".into())),
        ("name", Json::Str("serve_sustained".into())),
        ("workers", Json::Int(workers as i64)),
        ("queue_capacity", Json::Int(queue_capacity as i64)),
        ("queries_per_sec", Json::Num(clean_qps)),
        ("faulted_queries_per_sec", Json::Num(fault_qps)),
        ("faulted_worker_panics", Json::Int(sustained_panics as i64)),
    ]);
    let open_clean = open_record("serve_open_loop", &clean, false);
    let open_faulted = open_record("serve_open_loop", &faulted, true);
    // The SLO burn rates over everything the bench pushed through the
    // engine. Injected faults all recover (degraded retries complete), so
    // burn should stay within budget — `vn-slo-check BENCH_serve.json`
    // gates on exactly this record.
    let slo = engine.slo_json("serve_bench");
    eprintln!("slo: {}", slo.render());

    let mut w =
        valuenet_obs::JsonlWriter::create("BENCH_serve.json").expect("can create BENCH_serve.json");
    w.write(Json::obj(vec![
        ("type", Json::Str("meta".into())),
        ("bench", Json::Str("serve".into())),
        ("quick", Json::Bool(quick)),
    ]))
    .expect("meta writes");
    w.write(sustained.clone()).expect("sustained record writes");
    w.write(open_clean.clone()).expect("open-loop record writes");
    w.write(open_faulted.clone()).expect("faulted open-loop record writes");
    for r in &batching_records {
        w.write(r.clone()).expect("batching record writes");
    }
    w.write(headline.clone()).expect("headline record writes");
    w.write(slo.clone()).expect("slo record writes");
    w.finish().expect("report flushes");
    println!("{}", sustained.render());
    println!("{}", open_clean.render());
    println!("{}", open_faulted.render());
    for r in &batching_records {
        println!("{}", r.render());
    }
    println!("{}", headline.render());
    println!("{}", slo.render());

    engine.shutdown();
    valuenet_obs::finish();
}
