//! Regenerates **Fig. 10**: Execution Accuracy of *ValueNet light* and
//! *ValueNet* on the dev split (unseen databases), averaged over several
//! seeds, against the paper's three leaderboard reference points and our
//! two executable baselines.
//!
//! Paper numbers (Spider dev, Execution Accuracy): ValueNet light ≈ 67%,
//! ValueNet ≈ 62%; GAZP + BERT 45.6%, BRIDGE + BERT 59.9%,
//! AuxNet + BART 62.0% (single reported points — those systems were
//! unpublished, so the paper, like us, cannot rerun them).
//!
//! ```text
//! VN_SEEDS=5 cargo run --release -p valuenet-bench --bin fig10_execution_accuracy
//! ```

use valuenet_bench::{evaluate, mean_std, BenchConfig};
use valuenet_core::{train, HeuristicBaseline, ModelConfig, ValueMode};
use valuenet_dataset::generate;
use valuenet_eval::{execution_accuracy, TextTable};
use valuenet_sql::parse_select;

fn main() {
    let cfg = BenchConfig::from_env();
    println!(
        "Fig. 10 — Execution Accuracy on unseen dev databases \
         ({} seeds × {} train / {} dev questions, {} epochs)\n",
        cfg.seeds, cfg.train_size, cfg.dev_size, cfg.epochs
    );

    let mut light_runs = Vec::new();
    let mut full_runs = Vec::new();
    let mut novalue_runs = Vec::new();
    let mut heuristic_runs = Vec::new();
    for seed in 0..cfg.seeds as u64 {
        let corpus = generate(&cfg.corpus(seed));
        eprintln!("[seed {seed}] training ValueNet light...");
        let (light, _) =
            train(&corpus, ValueMode::Light, ModelConfig::default(), &cfg.train_cfg(seed));
        light_runs.push(evaluate(&light, &corpus, &corpus.dev).execution_accuracy());

        eprintln!("[seed {seed}] training ValueNet (full)...");
        let (mut full, _) =
            train(&corpus, ValueMode::Full, ModelConfig::default(), &cfg.train_cfg(seed));
        full_runs.push(evaluate(&full, &corpus, &corpus.dev).execution_accuracy());

        // The NoValue baseline reuses the trained model with the value
        // candidates replaced by the constant placeholder.
        full.mode = ValueMode::NoValue;
        novalue_runs.push(evaluate(&full, &corpus, &corpus.dev).execution_accuracy());

        // Rule-based baseline needs no training.
        let hb = HeuristicBaseline::new();
        let mut correct = 0;
        let mut total = 0;
        for s in &corpus.dev {
            let db = corpus.db(s);
            let gold = parse_select(&s.sql).expect("gold parses");
            total += 1;
            if let Some(sql) = hb.translate(db, &s.question) {
                if execution_accuracy(db, &sql, &gold).is_correct() {
                    correct += 1;
                }
            }
        }
        heuristic_runs.push(correct as f64 / total.max(1) as f64);
    }

    let mut table =
        TextTable::new(vec!["system", "exec accuracy (mean)", "std", "paper reference"]);
    let mut row = |name: &str, runs: &[f64], paper: &str| {
        let (m, s) = mean_std(runs);
        table.row(vec![
            name.to_string(),
            format!("{:.1}%", 100.0 * m),
            format!("{:.1}", 100.0 * s),
            paper.to_string(),
        ]);
    };
    row("ValueNet light", &light_runs, "~67%");
    row("ValueNet", &full_runs, "~62%");
    row("NoValue placeholder (IRNet-style)", &novalue_runs, "n/a (motivating baseline)");
    row("Rule-based heuristic", &heuristic_runs, "n/a (floor)");
    table.row(vec!["GAZP + BERT (reported point)", "-", "-", "45.6%"]);
    table.row(vec!["BRIDGE + BERT (reported point)", "-", "-", "59.9%"]);
    table.row(vec!["AuxNet + BART (reported point)", "-", "-", "62.0%"]);
    print!("{table}");

    let (lm, _) = mean_std(&light_runs);
    let (fm, _) = mean_std(&full_runs);
    println!(
        "\nshape check: light ≥ full (paper gap 3–4 points): gap = {:.1} points",
        100.0 * (lm - fm)
    );
}
