//! Regenerates **Table I**: Execution Accuracy of ValueNet grouped by the
//! Spider query-difficulty heuristic.
//!
//! Paper: Easy 0.77, Medium 0.62, Hard 0.57, Extra-hard 0.43.
//!
//! ```text
//! OBS=1 OBS_CHROME_TRACE=trace.json \
//!   cargo run --release -p valuenet-bench --bin table1_difficulty
//! ```
//!
//! Outputs, all written to the working directory:
//!
//! * `results_table1.txt` — the accuracy table (also printed to stdout);
//! * `run_report.json` (path overridable via `OBS_REPORT`) — the structured
//!   run report joining per-difficulty Execution Accuracy with the
//!   per-stage latency distribution of the run (train + eval spans,
//!   counters, per-epoch metrics), plus a `quantized_execution_accuracy`
//!   section comparing a second dev sweep with int8 weight-only quantized
//!   inference against the f32 run, per difficulty and overall;
//! * optionally a Chrome trace / JSONL event stream via the standard
//!   `OBS_CHROME_TRACE` / `OBS_JSONL` variables.

use valuenet_bench::{evaluate, BenchConfig};
use valuenet_core::{train, ModelConfig, ValueMode};
use valuenet_dataset::generate;
use valuenet_eval::{Difficulty, TextTable};
use valuenet_obs::json::Json;
use valuenet_obs::DifficultyRow;

fn main() {
    // The run report needs span aggregates even when no sink is requested,
    // so collection is always on for this binary; env vars add sinks.
    if !valuenet_obs::init_from_env() {
        valuenet_obs::set_enabled(true);
    }
    let cfg = BenchConfig::from_env();
    let corpus = generate(&cfg.corpus(0));
    eprintln!("training ValueNet (full mode)...");
    let (pipeline, _) =
        train(&corpus, ValueMode::Full, ModelConfig::default(), &cfg.train_cfg(0));
    let stats = evaluate(&pipeline, &corpus, &corpus.dev);
    let by_diff = stats.by_difficulty();

    let mut out = format!(
        "Table I — ValueNet Execution Accuracy by query difficulty \
         ({} dev questions)\n\n",
        corpus.dev.len()
    );
    let paper = [("Easy", 0.77), ("Medium", 0.62), ("Hard", 0.57), ("Extra-Hard", 0.43)];
    let mut table = TextTable::new(vec!["Difficulty", "Accuracy", "n", "paper"]);
    let mut rows: Vec<DifficultyRow> = Vec::new();
    for (i, d) in Difficulty::ALL.iter().enumerate() {
        let (correct, total) = by_diff.get(d).copied().unwrap_or((0, 0));
        let acc = if total > 0 { correct as f64 / total as f64 } else { f64::NAN };
        table.row(vec![
            d.label().to_string(),
            if total > 0 { format!("{acc:.2}") } else { "-".into() },
            total.to_string(),
            format!("{:.2}", paper[i].1),
        ]);
        rows.push(DifficultyRow {
            label: d.label().to_string(),
            correct: correct as u64,
            total: total as u64,
        });
    }
    out.push_str(&table.to_string());
    out.push_str(&format!(
        "\noverall: {:.1}% execution accuracy, {:.1}% exact-match\n",
        100.0 * stats.execution_accuracy(),
        100.0 * stats.exact_match_accuracy()
    ));
    out.push_str("shape check: accuracy should decay monotonically with difficulty.\n");
    print!("{out}");
    if let Err(e) = std::fs::write("results_table1.txt", &out) {
        eprintln!("cannot write results_table1.txt: {e}");
    }

    // Second dev sweep with int8 weight-only quantized inference: the paper
    // metric must survive quantization, so the report records the
    // per-difficulty delta against the f32 run above.
    eprintln!("re-evaluating with int8 quantized inference...");
    pipeline.model.params.set_quantized(true);
    let qstats = evaluate(&pipeline, &corpus, &corpus.dev);
    pipeline.model.params.set_quantized(false);
    let q_by_diff = qstats.by_difficulty();
    let quant_rows: Vec<Json> = Difficulty::ALL
        .iter()
        .map(|d| {
            let (qc, qt) = q_by_diff.get(d).copied().unwrap_or((0, 0));
            let (fc, ft) = by_diff.get(d).copied().unwrap_or((0, 0));
            let acc = |c: usize, t: usize| {
                if t > 0 { Json::Num(c as f64 / t as f64) } else { Json::Null }
            };
            let delta = if qt > 0 && ft > 0 {
                Json::Num(qc as f64 / qt as f64 - fc as f64 / ft as f64)
            } else {
                Json::Null
            };
            Json::obj(vec![
                ("difficulty", Json::Str(d.label().to_string())),
                ("correct", Json::Int(qc as i64)),
                ("total", Json::Int(qt as i64)),
                ("accuracy", acc(qc, qt)),
                ("delta_vs_f32", delta),
            ])
        })
        .collect();
    let q_overall = qstats.execution_accuracy();
    let f_overall = stats.execution_accuracy();
    eprintln!(
        "quantized: {:.1}% execution accuracy (f32 {:.1}%, delta {:+.2} points)",
        100.0 * q_overall,
        100.0 * f_overall,
        100.0 * (q_overall - f_overall)
    );
    let quantized_section = Json::obj(vec![
        ("format", Json::Str("int8".into())),
        ("overall", Json::Num(q_overall)),
        ("overall_delta_vs_f32", Json::Num(q_overall - f_overall)),
        ("by_difficulty", Json::Arr(quant_rows)),
    ]);

    // Drive the sinks, then join the accuracy table with the per-stage
    // latency snapshot of this exact run.
    let snap = valuenet_obs::finish();
    let report_path =
        std::env::var("OBS_REPORT").unwrap_or_else(|_| "run_report.json".to_string());
    match valuenet_obs::write_run_report_with(
        &report_path,
        &rows,
        &snap,
        vec![("quantized_execution_accuracy".to_string(), quantized_section)],
    ) {
        Ok(()) => eprintln!("run report written to {report_path}"),
        Err(e) => eprintln!("cannot write {report_path}: {e}"),
    }
}
