//! Regenerates **Table I**: Execution Accuracy of ValueNet grouped by the
//! Spider query-difficulty heuristic.
//!
//! Paper: Easy 0.77, Medium 0.62, Hard 0.57, Extra-hard 0.43.
//!
//! ```text
//! cargo run --release -p valuenet-bench --bin table1_difficulty
//! ```

use valuenet_bench::{evaluate, BenchConfig};
use valuenet_core::{train, ModelConfig, ValueMode};
use valuenet_dataset::generate;
use valuenet_eval::{Difficulty, TextTable};

fn main() {
    let cfg = BenchConfig::from_env();
    let corpus = generate(&cfg.corpus(0));
    eprintln!("training ValueNet (full mode)...");
    let (pipeline, _) =
        train(&corpus, ValueMode::Full, ModelConfig::default(), &cfg.train_cfg(0));
    let stats = evaluate(&pipeline, &corpus, &corpus.dev);
    let by_diff = stats.by_difficulty();

    println!(
        "Table I — ValueNet Execution Accuracy by query difficulty \
         ({} dev questions)\n",
        corpus.dev.len()
    );
    let paper = [("Easy", 0.77), ("Medium", 0.62), ("Hard", 0.57), ("Extra-Hard", 0.43)];
    let mut table = TextTable::new(vec!["Difficulty", "Accuracy", "n", "paper"]);
    for (i, d) in Difficulty::ALL.iter().enumerate() {
        let (correct, total) = by_diff.get(d).copied().unwrap_or((0, 0));
        let acc = if total > 0 { correct as f64 / total as f64 } else { f64::NAN };
        table.row(vec![
            d.label().to_string(),
            if total > 0 { format!("{acc:.2}") } else { "-".into() },
            total.to_string(),
            format!("{:.2}", paper[i].1),
        ]);
    }
    print!("{table}");
    println!(
        "\noverall: {:.1}% execution accuracy, {:.1}% exact-match",
        100.0 * stats.execution_accuracy(),
        100.0 * stats.exact_match_accuracy()
    );
    println!("shape check: accuracy should decay monotonically with difficulty.");
}
