//! Thread-scaling measurement for the parallel training and evaluation
//! engine, written to `BENCH_parallel.json`.
//!
//! For each worker count the binary measures the marginal cost of one
//! training epoch (runtime of a 3-epoch run minus a 1-epoch run, halved —
//! subtracting out corpus preprocessing and vocabulary setup, which are
//! identical across thread counts) and the wall-clock time of a full dev
//! evaluation sweep. Speedup is reported relative to one worker and is
//! naturally bounded by the machine's available cores (recorded in the
//! output, since a single-core container cannot show parallel gains).
//!
//! Scale via the usual knobs: `VN_TRAIN`, `VN_DEV`, `VN_ROWS` (defaults
//! here: 96 / 48 / 12).

use std::time::Instant;
use valuenet_core::{evaluate_with_threads, train, ModelConfig, TrainConfig, ValueMode};
use valuenet_dataset::{generate, CorpusConfig};

#[derive(serde::Serialize)]
struct Scaling {
    /// Worker counts as requested on the command line / config.
    requested_threads: Vec<usize>,
    /// What `resolve_threads` actually granted after clamping to the
    /// machine's cores — on a one-core container every request collapses
    /// to 1, which explains flat "scaling" curves.
    effective_threads: Vec<usize>,
    millis: Vec<f64>,
    speedup_at_4: f64,
}

#[derive(serde::Serialize)]
struct Report {
    cores: usize,
    training_epoch: Scaling,
    eval_sweep: Scaling,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn scaling(threads: &[usize], millis: Vec<f64>) -> Scaling {
    let speedup_at_4 = millis[0] / millis[millis.len() - 1].max(1e-9);
    Scaling {
        requested_threads: threads.to_vec(),
        effective_threads: threads.iter().map(|&t| valuenet_par::resolve_threads(t)).collect(),
        millis,
        speedup_at_4,
    }
}

fn main() {
    let corpus = generate(&CorpusConfig {
        seed: 11,
        train_size: env_usize("VN_TRAIN", 96),
        dev_size: env_usize("VN_DEV", 48),
        rows_per_table: env_usize("VN_ROWS", 12),
        ..CorpusConfig::default()
    });
    let thread_counts = [1usize, 2, 4];

    let mut train_ms = Vec::new();
    for &threads in &thread_counts {
        let run = |epochs: usize| {
            let cfg = TrainConfig { epochs, threads, ..Default::default() };
            let t = Instant::now();
            train(&corpus, ValueMode::Light, ModelConfig::tiny(), &cfg);
            t.elapsed().as_secs_f64() * 1e3
        };
        let per_epoch = (run(3) - run(1)) / 2.0;
        let effective = valuenet_par::resolve_threads(threads);
        eprintln!("training epoch, {threads} requested ({effective} effective): {per_epoch:.1} ms");
        train_ms.push(per_epoch);
    }

    let (pipeline, _) = train(
        &corpus,
        ValueMode::Light,
        ModelConfig::tiny(),
        &TrainConfig { epochs: 2, ..Default::default() },
    );
    let mut eval_ms = Vec::new();
    for &threads in &thread_counts {
        let t = Instant::now();
        let stats = evaluate_with_threads(&pipeline, &corpus, &corpus.dev, threads);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        eprintln!(
            "eval sweep, {threads} requested ({} effective): {ms:.1} ms (accuracy {:.3})",
            valuenet_par::resolve_threads(threads),
            stats.execution_accuracy()
        );
        eval_ms.push(ms);
    }

    let report = Report {
        cores: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        training_epoch: scaling(&thread_counts, train_ms),
        eval_sweep: scaling(&thread_counts, eval_ms),
    };
    let json = serde_json::to_string(&report).expect("report serialises");
    std::fs::write("BENCH_parallel.json", &json).expect("can write BENCH_parallel.json");
    println!("{json}");
}
