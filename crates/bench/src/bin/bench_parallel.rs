//! Thread-scaling measurement for the parallel training and evaluation
//! engine, written to `BENCH_parallel.json`.
//!
//! For each worker count the binary measures the marginal cost of one
//! training epoch (runtime of a 3-epoch run minus a 1-epoch run, halved —
//! subtracting out corpus preprocessing and vocabulary setup, which are
//! identical across thread counts) and the wall-clock time of a full dev
//! evaluation sweep. Speedup is reported relative to one worker and is
//! naturally bounded by the machine's available cores (recorded in the
//! output, since a single-core container cannot show parallel gains).
//!
//! The report goes through the observability JSONL sink
//! ([`valuenet_obs::JsonlWriter`]), which stamps every record with a
//! `schema_version` so the perf-trajectory history stays parseable as the
//! format evolves. `OBS=1` / `OBS_JSONL` / `OBS_CHROME_TRACE` additionally
//! profile the measured runs themselves.
//!
//! Scale via the usual knobs: `VN_TRAIN`, `VN_DEV`, `VN_ROWS` (defaults
//! here: 96 / 48 / 12).

use std::time::Instant;
use valuenet_core::{evaluate_with_threads, train, ModelConfig, TrainConfig, ValueMode};
use valuenet_dataset::{generate, CorpusConfig};
use valuenet_obs::json::Json;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// One scaling curve as a JSON object: requested worker counts, what
/// `resolve_threads` actually granted after clamping to the machine's cores
/// (on a one-core container every request collapses to 1, which explains
/// flat "scaling" curves), and the measured times.
///
/// When every request collapses to a single effective worker the host cannot
/// express parallelism at all: the record then says so explicitly
/// (`parallelism_available: false`) and omits `speedup_at_4` — a "speedup"
/// of 1.0 measured on one core is noise, not signal, and downstream
/// trajectory tooling must not average it into real scaling numbers.
fn scaling(threads: &[usize], millis: Vec<f64>) -> Json {
    let effective: Vec<usize> = threads.iter().map(|&t| valuenet_par::resolve_threads(t)).collect();
    let parallelism_available = effective.iter().any(|&t| t > 1);
    let mut fields = vec![
        (
            "requested_threads",
            Json::Arr(threads.iter().map(|&t| Json::Int(t as i64)).collect()),
        ),
        (
            "effective_threads",
            Json::Arr(effective.iter().map(|&t| Json::Int(t as i64)).collect()),
        ),
        ("parallelism_available", Json::Bool(parallelism_available)),
    ];
    if parallelism_available {
        let speedup_at_4 = millis[0] / millis[millis.len() - 1].max(1e-9);
        fields.push(("speedup_at_4", Json::Num(speedup_at_4)));
    }
    fields.push(("millis", Json::Arr(millis.into_iter().map(Json::Num).collect())));
    Json::obj(fields)
}

fn main() {
    valuenet_obs::init_from_env();
    let corpus = generate(&CorpusConfig {
        seed: 11,
        train_size: env_usize("VN_TRAIN", 96),
        dev_size: env_usize("VN_DEV", 48),
        rows_per_table: env_usize("VN_ROWS", 12),
        ..CorpusConfig::default()
    });
    let thread_counts = [1usize, 2, 4];

    let mut train_ms = Vec::new();
    for &threads in &thread_counts {
        let run = |epochs: usize| {
            let cfg = TrainConfig { epochs, threads, ..Default::default() };
            let t = Instant::now();
            train(&corpus, ValueMode::Light, ModelConfig::tiny(), &cfg);
            t.elapsed().as_secs_f64() * 1e3
        };
        let per_epoch = (run(3) - run(1)) / 2.0;
        let effective = valuenet_par::resolve_threads(threads);
        eprintln!("training epoch, {threads} requested ({effective} effective): {per_epoch:.1} ms");
        train_ms.push(per_epoch);
    }

    let (pipeline, _) = train(
        &corpus,
        ValueMode::Light,
        ModelConfig::tiny(),
        &TrainConfig { epochs: 2, ..Default::default() },
    );
    let mut eval_ms = Vec::new();
    for &threads in &thread_counts {
        let t = Instant::now();
        let stats = evaluate_with_threads(&pipeline, &corpus, &corpus.dev, threads);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        eprintln!(
            "eval sweep, {threads} requested ({} effective): {ms:.1} ms (accuracy {:.3})",
            valuenet_par::resolve_threads(threads),
            stats.execution_accuracy()
        );
        eval_ms.push(ms);
    }

    let report = Json::obj(vec![
        (
            "cores",
            Json::Int(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) as i64),
        ),
        // Detected SIMD feature set, so perf-history comparisons across
        // machines know which kernel tier produced the numbers.
        ("simd", Json::Str(valuenet_tensor::simd::detected_level().name().into())),
        ("training_epoch", scaling(&thread_counts, train_ms)),
        ("eval_sweep", scaling(&thread_counts, eval_ms)),
    ]);
    let mut w = valuenet_obs::JsonlWriter::create("BENCH_parallel.json")
        .expect("can create BENCH_parallel.json");
    w.write(report.clone()).expect("report writes");
    w.finish().expect("report flushes");
    println!("{}", report.render());
    valuenet_obs::finish();
}
