//! Regenerates **Table II**: per-stage translation time over the dev split.
//!
//! Paper (1,034 dev samples on their testbed, milliseconds):
//! pre-processing 80±5, value lookup 234±43, encoder/decoder 76±14,
//! post-processing 13±2, query execution 15±3; total ≈ 418 ms.
//!
//! Absolute numbers are incomparable (different hardware, a small
//! from-scratch model instead of BERT); the *shape* to verify is that the
//! value lookup — a scan over the database content — dominates as the
//! databases grow. `VN_ROWS` scales the bases; the default here is larger
//! than the other binaries so the lookup-bound regime is visible.
//!
//! ```text
//! cargo run --release -p valuenet-bench --bin table2_translation_time
//! ```

use valuenet_bench::{evaluate, mean_std, BenchConfig};
use valuenet_core::{train, ModelConfig, ValueMode};
use valuenet_dataset::generate;
use valuenet_eval::TextTable;

fn main() {
    let mut cfg = BenchConfig::from_env();
    if std::env::var("VN_ROWS").is_err() {
        cfg.rows_per_table = 2000; // lookup-bound regime by default here
    }
    let corpus = generate(&cfg.corpus(0));
    eprintln!("training ValueNet (full mode) on {}-row tables...", cfg.rows_per_table);
    let (pipeline, _) =
        train(&corpus, ValueMode::Full, ModelConfig::default(), &cfg.train_cfg(0));
    let stats = evaluate(&pipeline, &corpus, &corpus.dev);

    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    let mut pre = Vec::new();
    let mut lookup = Vec::new();
    let mut encdec = Vec::new();
    let mut post = Vec::new();
    let mut exec = Vec::new();
    for s in &stats.samples {
        let t = s.prediction.timings;
        pre.push(ms(t.pre_processing));
        lookup.push(ms(t.value_lookup));
        encdec.push(ms(t.encoder_decoder));
        post.push(ms(t.post_processing));
        exec.push(ms(t.query_execution));
    }

    println!(
        "Table II — translation time per stage over {} dev samples \
         (rows per table: {})\n",
        stats.samples.len(),
        cfg.rows_per_table
    );
    let paper = [(80.0, 5.0), (234.0, 43.0), (76.0, 14.0), (13.0, 2.0), (15.0, 3.0)];
    let rows = [
        ("Pre-Processing", &pre),
        ("Value lookup", &lookup),
        ("Encoder/Decoder", &encdec),
        ("Post-Processing", &post),
        ("Query-Execution", &exec),
    ];
    let mut table = TextTable::new(vec![
        "Step",
        "Average Time [ms]",
        "Std Dev [ms]",
        "paper avg [ms]",
    ]);
    let mut total = 0.0;
    for (i, (name, series)) in rows.iter().enumerate() {
        let (m, s) = mean_std(series);
        total += m;
        table.row(vec![
            name.to_string(),
            format!("{m:.3}"),
            format!("{s:.3}"),
            format!("{:.0}", paper[i].0),
        ]);
    }
    print!("{table}");
    println!("\ntotal: {total:.3} ms per query (paper: ~418 ms on a Tesla V100 testbed)");
    let (lm, _) = mean_std(&lookup);
    println!(
        "shape check: value lookup share = {:.0}% (paper: 56%; grows with VN_ROWS)",
        100.0 * lm / total
    );
}
