//! Shared harness for the table/figure regeneration binaries.
//!
//! Every binary reads its scale from environment variables so the default
//! `cargo run` finishes in minutes while `VN_TRAIN=7000 VN_DEV=1034
//! VN_SEEDS=5 VN_EPOCHS=10` reproduces the paper-scale runs:
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `VN_TRAIN` | training questions | 1800 |
//! | `VN_DEV` | dev questions | 300 |
//! | `VN_ROWS` | rows per table | 30 |
//! | `VN_EPOCHS` | training epochs | 6 |
//! | `VN_SEEDS` | independent runs to average (Fig. 10) | 3 |
//! | `VN_SEED` | base RNG seed | 42 |

use std::collections::BTreeMap;
use valuenet_core::{Pipeline, Prediction, ValueMode};
use valuenet_dataset::{Corpus, CorpusConfig, Sample};
use valuenet_eval::{exact_match, execution_accuracy, Difficulty, ExecOutcome};
use valuenet_sql::{parse_select, SelectStmt};

/// Scale knobs for the experiment binaries.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Training questions.
    pub train_size: usize,
    /// Dev questions.
    pub dev_size: usize,
    /// Rows per table.
    pub rows_per_table: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Independent seeds to average.
    pub seeds: usize,
    /// Base seed.
    pub seed: u64,
    /// Surface-difficulty weights (Easy/Medium/Hard/Extra-hard); override
    /// with `VN_HARD=1` to bias towards the harder classes.
    pub surface_weights: [u32; 4],
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

impl BenchConfig {
    /// Reads the configuration from the environment (see module docs).
    pub fn from_env() -> Self {
        BenchConfig {
            train_size: env_usize("VN_TRAIN", 1800),
            dev_size: env_usize("VN_DEV", 300),
            rows_per_table: env_usize("VN_ROWS", 30),
            epochs: env_usize("VN_EPOCHS", 6),
            seeds: env_usize("VN_SEEDS", 3),
            seed: env_usize("VN_SEED", 42) as u64,
            surface_weights: if std::env::var("VN_HARD").is_ok() {
                [25, 25, 30, 20]
            } else {
                valuenet_dataset::DEFAULT_SURFACE_WEIGHTS
            },
        }
    }

    /// The corresponding corpus configuration.
    pub fn corpus(&self, seed_offset: u64) -> CorpusConfig {
        CorpusConfig {
            seed: self.seed + seed_offset,
            train_size: self.train_size,
            dev_size: self.dev_size,
            rows_per_table: self.rows_per_table,
            surface_weights: self.surface_weights,
        }
    }

    /// The corresponding training configuration.
    pub fn train_cfg(&self, seed_offset: u64) -> valuenet_core::TrainConfig {
        valuenet_core::TrainConfig {
            epochs: self.epochs,
            seed: self.seed + seed_offset,
            verbose: std::env::var("VN_VERBOSE").is_ok(),
            ..Default::default()
        }
    }
}

/// Evaluation outcome of one sample.
pub struct SampleEval {
    /// Index into the evaluated split.
    pub index: usize,
    /// The execution-accuracy outcome.
    pub outcome: ExecOutcome,
    /// Whether the sketch/schema components matched (Exact-Match metric).
    pub exact: bool,
    /// Query difficulty.
    pub difficulty: Difficulty,
    /// The full prediction (for error analysis and timing).
    pub prediction: Prediction,
    /// The parsed gold query.
    pub gold: SelectStmt,
}

/// Aggregate evaluation of a split.
pub struct EvalStats {
    /// Per-sample outcomes.
    pub samples: Vec<SampleEval>,
}

impl EvalStats {
    /// Execution accuracy over all samples (gold failures excluded).
    pub fn execution_accuracy(&self) -> f64 {
        let scored: Vec<&SampleEval> = self
            .samples
            .iter()
            .filter(|s| s.outcome != ExecOutcome::GoldFailed)
            .collect();
        if scored.is_empty() {
            return 0.0;
        }
        scored.iter().filter(|s| s.outcome.is_correct()).count() as f64 / scored.len() as f64
    }

    /// Exact-Matching accuracy.
    pub fn exact_match_accuracy(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|s| s.exact).count() as f64 / self.samples.len() as f64
    }

    /// `(correct, total)` per Spider difficulty.
    pub fn by_difficulty(&self) -> BTreeMap<Difficulty, (usize, usize)> {
        let mut map: BTreeMap<Difficulty, (usize, usize)> = BTreeMap::new();
        for s in &self.samples {
            if s.outcome == ExecOutcome::GoldFailed {
                continue;
            }
            let e = map.entry(s.difficulty).or_insert((0, 0));
            e.1 += 1;
            if s.outcome.is_correct() {
                e.0 += 1;
            }
        }
        map
    }

    /// The failed samples.
    pub fn failures(&self) -> Vec<&SampleEval> {
        self.samples
            .iter()
            .filter(|s| {
                matches!(s.outcome, ExecOutcome::WrongResult | ExecOutcome::PredictionFailed)
            })
            .collect()
    }
}

/// Runs a pipeline over a sample set and scores every prediction. In
/// [`ValueMode::Light`] the gold value options are passed through (the
/// oracle the paper describes).
pub fn evaluate(pipeline: &Pipeline, corpus: &Corpus, samples: &[Sample]) -> EvalStats {
    let mut out = Vec::with_capacity(samples.len());
    for (index, sample) in samples.iter().enumerate() {
        let db = corpus.db(sample);
        let gold = parse_select(&sample.sql).expect("gold SQL parses by construction");
        let gold_values = match pipeline.mode {
            ValueMode::Light => Some(sample.values.as_slice()),
            _ => None,
        };
        let prediction = pipeline.translate(db, &sample.question, gold_values);
        let (outcome, exact) = match &prediction.sql {
            Some(sql) => (execution_accuracy(db, sql, &gold), exact_match(sql, &gold)),
            None => (ExecOutcome::PredictionFailed, false),
        };
        out.push(SampleEval {
            index,
            outcome,
            exact,
            difficulty: sample.difficulty,
            prediction,
            gold,
        });
    }
    EvalStats { samples: out }
}

/// Mean and (population) standard deviation of a series.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
    (mean, var.sqrt())
}
