//! Shared harness for the table/figure regeneration binaries.
//!
//! Every binary reads its scale from environment variables so the default
//! `cargo run` finishes in minutes while `VN_TRAIN=7000 VN_DEV=1034
//! VN_SEEDS=5 VN_EPOCHS=10` reproduces the paper-scale runs:
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `VN_TRAIN` | training questions | 1800 |
//! | `VN_DEV` | dev questions | 300 |
//! | `VN_ROWS` | rows per table | 30 |
//! | `VN_EPOCHS` | training epochs | 6 |
//! | `VN_SEEDS` | independent runs to average (Fig. 10) | 3 |
//! | `VN_SEED` | base RNG seed | 42 |
//! | `VN_THREADS` | worker threads (0 = all cores); results are identical for any value | 0 |

use valuenet_dataset::CorpusConfig;

pub use valuenet_core::{evaluate, evaluate_with_threads, EvalStats, SampleEval};

/// Scale knobs for the experiment binaries.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Training questions.
    pub train_size: usize,
    /// Dev questions.
    pub dev_size: usize,
    /// Rows per table.
    pub rows_per_table: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Independent seeds to average.
    pub seeds: usize,
    /// Base seed.
    pub seed: u64,
    /// Surface-difficulty weights (Easy/Medium/Hard/Extra-hard); override
    /// with `VN_HARD=1` to bias towards the harder classes.
    pub surface_weights: [u32; 4],
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

impl BenchConfig {
    /// Reads the configuration from the environment (see module docs).
    pub fn from_env() -> Self {
        BenchConfig {
            train_size: env_usize("VN_TRAIN", 1800),
            dev_size: env_usize("VN_DEV", 300),
            rows_per_table: env_usize("VN_ROWS", 30),
            epochs: env_usize("VN_EPOCHS", 6),
            seeds: env_usize("VN_SEEDS", 3),
            seed: env_usize("VN_SEED", 42) as u64,
            surface_weights: if std::env::var("VN_HARD").is_ok() {
                [25, 25, 30, 20]
            } else {
                valuenet_dataset::DEFAULT_SURFACE_WEIGHTS
            },
        }
    }

    /// The corresponding corpus configuration.
    pub fn corpus(&self, seed_offset: u64) -> CorpusConfig {
        CorpusConfig {
            seed: self.seed + seed_offset,
            train_size: self.train_size,
            dev_size: self.dev_size,
            rows_per_table: self.rows_per_table,
            surface_weights: self.surface_weights,
        }
    }

    /// The corresponding training configuration.
    pub fn train_cfg(&self, seed_offset: u64) -> valuenet_core::TrainConfig {
        valuenet_core::TrainConfig {
            epochs: self.epochs,
            seed: self.seed + seed_offset,
            verbose: std::env::var("VN_VERBOSE").is_ok(),
            threads: env_usize("VN_THREADS", 0),
            ..Default::default()
        }
    }
}

/// Mean and (population) standard deviation of a series.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
    (mean, var.sqrt())
}
