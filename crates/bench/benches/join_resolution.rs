//! Criterion bench of the schema-graph join planning (Section III-C2):
//! shortest paths and the Steiner-tree heuristic on synthetic schemas of
//! growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use valuenet_schema::{ColumnType, DbSchema, SchemaBuilder, SchemaGraph, TableId};

/// A chain-of-stars schema: `n` hubs in a chain, each with 3 satellites —
/// a caricature of a warehouse schema with bridge tables.
fn chain_of_stars(n: usize) -> DbSchema {
    let mut b = SchemaBuilder::new("synthetic");
    for i in 0..n {
        b = b
            .table(&format!("hub{i}"), &[("id", ColumnType::Number), ("next_id", ColumnType::Number)])
            .primary_key(&format!("hub{i}"), "id");
        for s in 0..3 {
            b = b.table(
                &format!("sat{i}_{s}"),
                &[("id", ColumnType::Number), ("hub_id", ColumnType::Number)],
            );
        }
    }
    for i in 0..n {
        for s in 0..3 {
            b = b.foreign_key(&format!("sat{i}_{s}"), "hub_id", &format!("hub{i}"), "id");
        }
        if i + 1 < n {
            b = b.foreign_key(&format!("hub{i}"), "next_id", &format!("hub{}", i + 1), "id");
        }
    }
    b.build()
}

fn bench_joins(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_resolution");
    for hubs in [4usize, 16, 64] {
        let schema = chain_of_stars(hubs);
        let graph = SchemaGraph::new(&schema);
        let first_sat = schema.table_by_name("sat0_0").unwrap();
        let last_sat = schema.table_by_name(&format!("sat{}_2", hubs - 1)).unwrap();
        group.bench_with_input(
            BenchmarkId::new("shortest_path", hubs),
            &graph,
            |b, graph| b.iter(|| graph.shortest_path(first_sat, last_sat).unwrap()),
        );
        // Steiner tree over satellites spread across the chain.
        let terminals: Vec<TableId> = (0..hubs)
            .map(|i| schema.table_by_name(&format!("sat{i}_1")).unwrap())
            .collect();
        group.bench_with_input(
            BenchmarkId::new("steiner_tree", hubs),
            &graph,
            |b, graph| b.iter(|| graph.join_tree(&terminals).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_joins);
criterion_main!(benches);
