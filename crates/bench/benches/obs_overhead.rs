//! Disabled-observability overhead check.
//!
//! The whole instrumentation layer is gated on one relaxed atomic load, so
//! with observability disabled the instrumented [`Tensor::matmul`] must stay
//! within noise of [`Tensor::matmul_uninstrumented`] (the same kernel with
//! no gate at all). This bench interleaves rounds of both variants, reports
//! the best-round times, writes the measured delta to `BENCH_obs.json`
//! (through the versioned JSONL envelope), and fails if the instrumented
//! path regresses by more than the assertion bound.
//!
//! The bound (25%) is deliberately far above the expected delta (<2%): one
//! atomic load amortised over a 2·n³-FLOP kernel is measurement noise, and a
//! shared-CI box can easily jitter single-digit percent. The *recorded*
//! delta in `BENCH_obs.json` is the trend to watch; the assertion only
//! catches a broken gate (e.g. the disabled path taking a lock).
//!
//! A second arm measures the *serving* hot path: the same sustained
//! closed-loop sweep against two engines, one with request tracing on
//! (`record_traces: true`, the production default) and one with it off.
//! The trace plumbing — `RequestTrace` allocation at admission, the
//! per-attempt ambient `SpanCtx`, stage-gate stamping, flight-recorder
//! insertion — budgets <2% of sustained throughput; the recorded delta is
//! the trend to watch and the assertion again only catches gross breakage.
//!
//! Run with `cargo bench -p valuenet-bench --bench obs_overhead`
//! (`VN_OBS_BENCH_QUICK=1` shrinks the measurement for smoke runs).

use std::hint::black_box;
use std::time::Instant;
use valuenet_core::{train, ModelConfig, TrainConfig, ValueMode};
use valuenet_dataset::{generate, CorpusConfig};
use valuenet_obs::json::Json;
use valuenet_serve::{Engine, ServeConfig, TranslateJob};
use valuenet_tensor::Tensor;

/// Deterministic pseudo-random tensor (xorshift; no RNG dependency needed).
fn filled(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut x = seed | 1;
    let data = (0..rows * cols)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % 1000) as f32 / 1000.0 - 0.5
        })
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// Best-of-rounds nanoseconds for `iters` calls of `f`.
fn measure(rounds: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

fn main() {
    let quick = std::env::var("VN_OBS_BENCH_QUICK").map(|v| v != "0").unwrap_or(false);
    let (rounds, iters, n) = if quick { (3, 20, 48) } else { (7, 60, 96) };

    // The gate must be off: this bench measures the *disabled* path.
    valuenet_obs::set_enabled(false);
    let a = filled(n, n, 0xC0FFEE);
    let b = filled(n, n, 0xBEEF);

    // Warm up both paths, then interleave: measure() alternates complete
    // rounds so slow drift (thermal, scheduler) hits both variants equally.
    for _ in 0..5 {
        black_box(a.matmul(&b));
        black_box(a.matmul_uninstrumented(&b));
    }
    let mut instrumented_ns = f64::INFINITY;
    let mut uninstrumented_ns = f64::INFINITY;
    for _ in 0..2 {
        instrumented_ns =
            instrumented_ns.min(measure(rounds, iters, || {
                black_box(black_box(&a).matmul(black_box(&b)));
            }));
        uninstrumented_ns =
            uninstrumented_ns.min(measure(rounds, iters, || {
                black_box(black_box(&a).matmul_uninstrumented(black_box(&b)));
            }));
    }

    let delta = instrumented_ns / uninstrumented_ns - 1.0;
    println!(
        "obs_overhead: {n}x{n} matmul, disabled path: instrumented {instrumented_ns:.0} ns, \
         uninstrumented {uninstrumented_ns:.0} ns, delta {:+.2}%",
        delta * 100.0
    );

    let report = Json::obj(vec![
        ("type", Json::Str("bench".into())),
        ("bench", Json::Str("obs_overhead".into())),
        ("matrix_size", Json::Int(n as i64)),
        ("instrumented_ns", Json::Num(instrumented_ns)),
        ("uninstrumented_ns", Json::Num(uninstrumented_ns)),
        ("delta_fraction", Json::Num(delta)),
        ("quick", Json::Bool(quick)),
    ]);

    // --- Serve-path arm: request-tracing overhead on sustained qps --------
    let (traced_qps, untraced_qps) = serve_trace_overhead(quick);
    let serve_delta = untraced_qps / traced_qps - 1.0;
    println!(
        "obs_overhead: serve sustained, traced {traced_qps:.1} qps vs untraced \
         {untraced_qps:.1} qps, trace-plumbing cost {:+.2}%",
        serve_delta * 100.0
    );
    let serve_report = Json::obj(vec![
        ("type", Json::Str("bench".into())),
        ("bench", Json::Str("serve_trace_overhead".into())),
        ("traced_qps", Json::Num(traced_qps)),
        ("untraced_qps", Json::Num(untraced_qps)),
        ("delta_fraction", Json::Num(serve_delta)),
        ("budget_fraction", Json::Num(0.02)),
        ("quick", Json::Bool(quick)),
    ]);

    // Benches run with cwd = the package dir; anchor the artifact at the
    // workspace root next to BENCH_parallel.json.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    let mut w = valuenet_obs::JsonlWriter::create(path).expect("can create BENCH_obs.json");
    w.write(Json::obj(vec![
        ("type", Json::Str("meta".into())),
        ("bench", Json::Str("obs_overhead".into())),
        ("quick", Json::Bool(quick)),
    ]))
    .expect("meta writes");
    w.write(report).expect("report writes");
    w.write(serve_report).expect("serve report writes");
    w.finish().expect("report flushes");

    assert!(
        delta < 0.25,
        "disabled-observability matmul regressed {:.1}% (> 25%): the enabled() gate is no \
         longer near-zero-cost",
        delta * 100.0
    );
    // Loose for shared-runner jitter; the <2% budget is tracked through the
    // recorded delta on dedicated hardware.
    assert!(
        serve_delta < 0.25,
        "request tracing cost {:.1}% of sustained serve throughput (> 25%): the trace \
         plumbing is no longer cheap",
        serve_delta * 100.0
    );
}

/// Best-of-rounds sustained throughput (queries/sec) for a traced and an
/// untraced engine, interleaved round by round so drift hits both equally.
/// Both engines run the identical deterministically-trained pipeline.
fn serve_trace_overhead(quick: bool) -> (f64, f64) {
    let (dt, dd, dr, rounds) = if quick { (32, 16, 6, 2) } else { (48, 24, 8, 4) };
    let cc = CorpusConfig {
        seed: 11,
        train_size: dt,
        dev_size: dd,
        rows_per_table: dr,
        ..CorpusConfig::default()
    };
    let corpus = generate(&cc);
    let requests: Vec<(String, String)> = corpus
        .dev
        .iter()
        .map(|s| (corpus.db(s).schema().db_id.clone(), s.question.clone()))
        .collect();
    // Training is deterministic: both engines serve bit-identical models.
    let mk_engine = |record_traces: bool| {
        let c = generate(&cc);
        let (pipeline, _) = train(
            &c,
            ValueMode::Full,
            ModelConfig::tiny(),
            &TrainConfig { epochs: 2, threads: 1, verbose: false, ..Default::default() },
        );
        Engine::start(pipeline, c.databases, ServeConfig {
            workers: 1,
            queue_capacity: 16,
            record_traces,
            ..ServeConfig::default()
        })
    };
    let traced = mk_engine(true);
    let untraced = mk_engine(false);

    let mut seq = 0i64;
    let mut sweep = |engine: &Engine| -> f64 {
        let t0 = Instant::now();
        for (db, question) in &requests {
            seq += 1;
            black_box(engine.translate_blocking(TranslateJob {
                id: Some(seq),
                db: db.clone(),
                question: question.clone(),
                ..TranslateJob::default()
            }));
        }
        requests.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9)
    };

    // Warm both (cold caches on the first request per database).
    sweep(&traced);
    sweep(&untraced);
    let mut traced_qps = 0f64;
    let mut untraced_qps = 0f64;
    for _ in 0..rounds {
        traced_qps = traced_qps.max(sweep(&traced));
        untraced_qps = untraced_qps.max(sweep(&untraced));
    }
    traced.shutdown();
    untraced.shutdown();
    (traced_qps, untraced_qps)
}
