//! Criterion bench of the inverted-index lookups that dominate Table II's
//! "Value lookup" stage, across database sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use valuenet_dataset::all_domains;
use valuenet_storage::Database;

fn flights_db(rows: usize) -> Database {
    let mut rng = SmallRng::seed_from_u64(7);
    let spec = all_domains(&mut rng, rows).into_iter().nth(1).expect("flights domain");
    Database::with_rows(spec.schema.clone(), spec.rows.clone())
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("value_lookup");
    for rows in [100usize, 1000, 4000] {
        let db = flights_db(rows);
        group.bench_with_input(BenchmarkId::new("find_exact", rows), &db, |b, db| {
            b.iter(|| db.index().find_exact("JFK"))
        });
        group.bench_with_input(BenchmarkId::new("find_similar_d2", rows), &db, |b, db| {
            b.iter(|| db.index().find_similar("Lufthansa", 2))
        });
        group.bench_with_input(BenchmarkId::new("find_like", rows), &db, |b, db| {
            b.iter(|| db.index().find_like_anywhere("%-08-%"))
        });
    }
    group.finish();

    // Index construction cost (amortised once per database).
    let mut group = c.benchmark_group("index_build");
    for rows in [100usize, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, &rows| {
            let mut rng = SmallRng::seed_from_u64(7);
            let spec = all_domains(&mut rng, rows).into_iter().nth(1).unwrap();
            b.iter(|| Database::with_rows(spec.schema.clone(), spec.rows.clone()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lookup);
criterion_main!(benches);
