//! Criterion bench of the value-candidate pipeline (Section IV-B): NER,
//! generation and validation on the paper's example questions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use valuenet_dataset::all_domains;
use valuenet_preprocess::{
    generate_candidates, preprocess, tokenize_question, CandidateConfig, HeuristicNer, Ner,
};
use valuenet_storage::Database;

fn bench_candidates(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(5);
    let specs = all_domains(&mut rng, 400);
    let flights = &specs[1];
    let db = Database::with_rows(flights.schema.clone(), flights.rows.clone());
    let cfg = CandidateConfig::default();
    let ner = HeuristicNer::new();

    let questions = [
        ("easy_number", "Show all flights with a duration of more than 6 hours"),
        (
            "hard_airport",
            "Find all routes that have destination John F Kennedy International Airport",
        ),
        ("misspelled", "List the flights operated by Lufthanza"),
        ("month_wildcard", "Which flights departed in August?"),
    ];

    let mut group = c.benchmark_group("candidate_generation");
    for (name, q) in &questions {
        group.bench_with_input(BenchmarkId::from_parameter(name), q, |b, q| {
            b.iter(|| {
                let tokens = tokenize_question(q);
                let extracted = ner.extract(q, &tokens);
                generate_candidates(&extracted, &tokens, &db, &cfg)
            })
        });
    }
    group.finish();

    c.bench_function("preprocess_full", |b| {
        b.iter(|| {
            preprocess(
                "Find all routes that have destination John F Kennedy International Airport",
                &db,
                &ner,
                &cfg,
            )
        })
    });
}

criterion_group!(benches, bench_candidates);
criterion_main!(benches);
