//! Criterion bench: the cache-blocked packed matmul kernel against the
//! naive reference kernel across square sizes, plus the transposed-operand
//! kernels against their materialise-then-multiply equivalents.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use valuenet_tensor::Tensor;

fn random_tensor(rng: &mut SmallRng, rows: usize, cols: usize) -> Tensor {
    Tensor::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen::<f32>() - 0.5).collect())
}

fn bench_matmul(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(7);

    let mut group = c.benchmark_group("matmul_naive");
    for n in [64usize, 128, 256, 512] {
        let a = random_tensor(&mut rng, n, n);
        let b = random_tensor(&mut rng, n, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| a.matmul_naive(&b))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("matmul_blocked");
    for n in [64usize, 128, 256, 512] {
        let a = random_tensor(&mut rng, n, n);
        let b = random_tensor(&mut rng, n, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| a.matmul(&b))
        });
    }
    group.finish();

    // Backward-pass shapes: grad kernels vs. materialising the transpose.
    let n = 256;
    let g = random_tensor(&mut rng, n, n);
    let b = random_tensor(&mut rng, n, n);
    let mut group = c.benchmark_group("matmul_backward_256");
    group.bench_function("transposed_b_kernel", |bch| {
        bch.iter(|| g.matmul_transposed_b(&b))
    });
    group.bench_function("transposed_b_materialised", |bch| {
        bch.iter(|| g.matmul_naive(&b.transpose()))
    });
    group.bench_function("transposed_a_kernel", |bch| {
        bch.iter(|| b.matmul_transposed_a(&g))
    });
    group.bench_function("transposed_a_materialised", |bch| {
        bch.iter(|| b.transpose().matmul_naive(&g))
    });
    group.finish();
}

criterion_group!(benches, bench_matmul);
criterion_main!(benches);
