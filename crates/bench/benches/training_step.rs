//! Criterion bench of one training step (forward + backward + Adam) and of
//! raw autodiff primitives — the compute budget behind the trainer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use valuenet_core::{
    assemble_candidates, build_input, ModelConfig, ValueMode, ValueNetModel, Vocab,
};
use valuenet_dataset::{generate, CorpusConfig};
use valuenet_nn::{Adam, AdamConfig};
use valuenet_preprocess::{preprocess, CandidateConfig, HeuristicNer};
use valuenet_semql::ast_to_actions;
use valuenet_tensor::{Graph, Tensor};

fn bench_training(c: &mut Criterion) {
    let corpus = generate(&CorpusConfig {
        seed: 42,
        train_size: 40,
        dev_size: 8,
        rows_per_table: 20,
        ..CorpusConfig::default()
    });
    let sample = &corpus.train[0];
    let db = corpus.db(sample);
    let vocab = Vocab::build(corpus.train.iter().map(|s| s.question.as_str()));
    let pre = preprocess(&sample.question, db, &HeuristicNer::new(), &CandidateConfig::default());
    let cands = assemble_candidates(db, &pre, ValueMode::Light, Some(&sample.values), true);
    let input = build_input(db, &pre, &cands, &vocab);
    let actions = ast_to_actions(&sample.semql);

    for (name, cfg) in [("tiny", ModelConfig::tiny()), ("default", ModelConfig::default())] {
        let model = ValueNetModel::new(cfg, vocab.clone(), 7);
        c.bench_function(&format!("forward_loss_{name}"), |b| {
            b.iter(|| {
                let mut g = Graph::new();
                let loss = model.loss(&mut g, &input, &actions, None);
                g.value(loss).scalar_value()
            })
        });
        c.bench_function(&format!("forward_backward_{name}"), |b| {
            b.iter(|| {
                let mut g = Graph::new();
                let loss = model.loss(&mut g, &input, &actions, None);
                g.backward(loss)
            })
        });
        let mut model = model;
        let mut opt = Adam::new(
            &model.params,
            AdamConfig { group_lrs: vec![1e-3, 1e-3, 1e-3], ..Default::default() },
        );
        c.bench_function(&format!("full_train_step_{name}"), |b| {
            b.iter(|| {
                let mut g = Graph::new();
                let loss = model.loss(&mut g, &input, &actions, None);
                let grads = g.backward(loss);
                opt.step(&mut model.params, &grads);
            })
        });
        c.bench_function(&format!("greedy_decode_{name}"), |b| {
            b.iter(|| model.predict(&input).ok())
        });
    }

    // Raw matmul throughput (the hot primitive).
    let mut rng = SmallRng::seed_from_u64(1);
    let mut group = c.benchmark_group("matmul");
    for n in [32usize, 64, 128] {
        let a = valuenet_nn::Initializer::Uniform(1.0).sample(&mut rng, n, n);
        let b_m = valuenet_nn::Initializer::Uniform(1.0).sample(&mut rng, n, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| a.matmul(&b_m))
        });
    }
    group.finish();

    // Backward pass through a deep chain (tape overhead).
    c.bench_function("autodiff_chain_depth_100", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let mut x = g.param(Tensor::full(1, 64, 0.5), 0);
            for _ in 0..100 {
                x = g.tanh(x);
            }
            let loss = g.sum_all(x);
            g.backward(loss)
        })
    });
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
