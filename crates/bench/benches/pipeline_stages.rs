//! Criterion bench of the end-to-end translation and its stages
//! (the micro counterpart of Table II).

use criterion::{criterion_group, criterion_main, Criterion};
use valuenet_core::{train, ModelConfig, TrainConfig, ValueMode};
use valuenet_dataset::{generate, CorpusConfig};
use valuenet_exec::execute;
use valuenet_sql::parse_select;

fn bench_pipeline(c: &mut Criterion) {
    let corpus = generate(&CorpusConfig {
        seed: 42,
        train_size: 300,
        dev_size: 40,
        rows_per_table: 60,
        ..CorpusConfig::default()
    });
    let (pipeline, _) = train(
        &corpus,
        ValueMode::Full,
        ModelConfig::tiny(),
        &TrainConfig { epochs: 2, ..Default::default() },
    );
    let sample = &corpus.dev[0];
    let db = corpus.db(sample);

    c.bench_function("translate_end_to_end", |b| {
        b.iter(|| pipeline.translate(db, &sample.question, None))
    });

    let gold = parse_select(&sample.sql).unwrap();
    c.bench_function("execute_gold_query", |b| b.iter(|| execute(db, &gold).unwrap()));

    c.bench_function("model_predict_only", |b| {
        // Isolates encoder/decoder from pre/post-processing.
        let pred = pipeline.translate(db, &sample.question, None);
        assert!(pred.semql.is_some());
        b.iter(|| {
            let pre = valuenet_preprocess::preprocess(
                &sample.question,
                db,
                &pipeline.ner,
                &pipeline.cand_cfg,
            );
            let cands = valuenet_core::assemble_candidates(
                db,
                &pre,
                ValueMode::Full,
                None,
                false,
            );
            let input = valuenet_core::build_input(db, &pre, &cands, &pipeline.model.vocab);
            pipeline.model.predict(&input).ok()
        })
    });
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
