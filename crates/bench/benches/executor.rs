//! Criterion bench of the SQL executor (the Query-Execution stage).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use valuenet_dataset::all_domains;
use valuenet_exec::execute;
use valuenet_sql::parse_select;
use valuenet_storage::Database;

fn pets_db(rows: usize) -> Database {
    let mut rng = SmallRng::seed_from_u64(3);
    let spec = all_domains(&mut rng, rows).into_iter().next().expect("student_pets domain");
    Database::with_rows(spec.schema.clone(), spec.rows.clone())
}

fn bench_executor(c: &mut Criterion) {
    let queries = [
        ("filter_scan", "SELECT name FROM student WHERE age > 20"),
        (
            "three_way_join",
            "SELECT count(*) FROM student AS T1 JOIN has_pet AS T2 ON T1.stu_id = T2.stu_id \
             JOIN pet AS T3 ON T2.pet_id = T3.pet_id WHERE T3.pet_type = 'dog'",
        ),
        (
            "group_having_order",
            "SELECT home_country, count(*) FROM student GROUP BY home_country \
             HAVING count(*) > 1 ORDER BY count(*) DESC",
        ),
        (
            "nested_subquery",
            "SELECT name FROM student WHERE age > (SELECT avg(age) FROM student)",
        ),
        (
            "set_operation",
            "SELECT home_country FROM student WHERE age > 22 \
             EXCEPT SELECT home_country FROM student WHERE age < 20",
        ),
    ];
    for rows in [50usize, 400] {
        let db = pets_db(rows);
        let mut group = c.benchmark_group(format!("executor_{rows}rows"));
        for (name, sql) in &queries {
            let stmt = parse_select(sql).unwrap();
            group.bench_with_input(BenchmarkId::from_parameter(name), &stmt, |b, stmt| {
                b.iter(|| execute(&db, stmt).unwrap())
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_executor);
criterion_main!(benches);
