//! Criterion bench: thread scaling of the data-parallel trainer and the
//! parallel evaluation sweep. Results are bit-identical across thread
//! counts; only wall-clock time changes (bounded by the machine's cores).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use valuenet_core::{evaluate_with_threads, train, ModelConfig, TrainConfig, ValueMode};
use valuenet_dataset::{generate, Corpus, CorpusConfig};

fn small_corpus() -> Corpus {
    generate(&CorpusConfig {
        seed: 11,
        train_size: 48,
        dev_size: 24,
        rows_per_table: 12,
        ..CorpusConfig::default()
    })
}

fn bench_parallel(c: &mut Criterion) {
    let corpus = small_corpus();

    let mut group = c.benchmark_group("training_epoch");
    for threads in [1usize, 2, 4] {
        let cfg = TrainConfig { epochs: 1, threads, ..Default::default() };
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| train(&corpus, ValueMode::Light, ModelConfig::tiny(), &cfg))
        });
    }
    group.finish();

    let (pipeline, _) = train(
        &corpus,
        ValueMode::Light,
        ModelConfig::tiny(),
        &TrainConfig { epochs: 2, ..Default::default() },
    );
    let mut group = c.benchmark_group("eval_sweep");
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| evaluate_with_threads(&pipeline, &corpus, &corpus.dev, threads))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
