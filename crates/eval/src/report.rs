//! Plain-text table rendering for the benchmark binaries.

use std::fmt;

/// A simple aligned text table (used by the fig/table regeneration binaries
/// to print the paper's rows).
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            writeln!(f, "| {} |", padded.join(" | "))
        };
        print_row(f, &self.headers)?;
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "|-{}-|", sep.join("-|-"))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(vec!["Difficulty", "Accuracy"]);
        t.row(vec!["Easy", "0.77"]);
        t.row(vec!["Extra-Hard", "0.43"]);
        let s = t.to_string();
        assert!(s.contains("| Easy       | 0.77     |"), "{s}");
        assert!(s.lines().count() == 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }
}
