//! The two Spider accuracy metrics.

use std::collections::BTreeSet;
use valuenet_exec::execute;
use valuenet_sql::{Expr, SelectStmt};
use valuenet_storage::Database;

/// Outcome of an Execution Accuracy check on one sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecOutcome {
    /// Predicted and gold results match.
    Correct,
    /// Both executed; the results differ.
    WrongResult,
    /// The predicted query failed to execute.
    PredictionFailed,
    /// The gold query failed to execute (a dataset bug; skipped in scoring).
    GoldFailed,
}

impl ExecOutcome {
    /// Whether the sample counts as correct.
    pub fn is_correct(self) -> bool {
        self == ExecOutcome::Correct
    }
}

/// Spider *Execution Accuracy*: execute predicted and gold queries and
/// compare the result sets (ordered only when both carry an ORDER BY).
pub fn execution_accuracy(
    db: &Database,
    predicted: &SelectStmt,
    gold: &SelectStmt,
) -> ExecOutcome {
    let gold_rs = match execute(db, gold) {
        Ok(rs) => rs,
        Err(_) => return ExecOutcome::GoldFailed,
    };
    let pred_rs = match execute(db, predicted) {
        Ok(rs) => rs,
        Err(_) => return ExecOutcome::PredictionFailed,
    };
    let _compare = valuenet_obs::span("eval.compare");
    if pred_rs.result_eq(&gold_rs) {
        ExecOutcome::Correct
    } else {
        ExecOutcome::WrongResult
    }
}

/// A literal-free fingerprint of an expression, for component matching.
fn strip_values(e: &Expr) -> String {
    match e {
        Expr::Lit(_) => "?".into(),
        Expr::Column(c) => c.column.to_lowercase(),
        Expr::Agg { func, distinct, arg } => {
            format!("{}({}{})", func.keyword(), if *distinct { "distinct " } else { "" }, strip_values(arg))
        }
        Expr::Binary { op, lhs, rhs } => {
            format!("({} {} {})", strip_values(lhs), op.symbol(), strip_values(rhs))
        }
        Expr::Not(inner) => format!("not {}", strip_values(inner)),
        Expr::Between { expr, negated, .. } => {
            format!("({} {}between ? ?)", strip_values(expr), if *negated { "not " } else { "" })
        }
        Expr::InList { expr, negated, .. } => {
            format!("({} {}in ?)", strip_values(expr), if *negated { "not " } else { "" })
        }
        Expr::InSubquery { expr, subquery, negated } => format!(
            "({} {}in <{}>)",
            strip_values(expr),
            if *negated { "not " } else { "" },
            fingerprint(subquery)
        ),
        Expr::Like { expr, negated, .. } => {
            format!("({} {}like ?)", strip_values(expr), if *negated { "not " } else { "" })
        }
        Expr::Subquery(s) => format!("<{}>", fingerprint(s)),
    }
}

/// Decomposes a WHERE/HAVING tree into its comparison components.
fn predicate_components(e: &Expr, out: &mut BTreeSet<String>) {
    match e {
        Expr::Binary { op, lhs, rhs } if !op.is_comparison() => {
            predicate_components(lhs, out);
            predicate_components(rhs, out);
        }
        other => {
            out.insert(strip_values(other));
        }
    }
}

/// Order-insensitive, value-insensitive fingerprint of one query.
fn fingerprint(stmt: &SelectStmt) -> String {
    let core = &stmt.core;
    let select: BTreeSet<String> =
        core.items.iter().map(|it| strip_values(&it.expr)).collect();
    let mut tables: BTreeSet<String> = BTreeSet::new();
    if let Some(f) = &core.from {
        tables.insert(f.name.to_lowercase());
    }
    for j in &core.joins {
        tables.insert(j.table.name.to_lowercase());
    }
    let mut preds: BTreeSet<String> = BTreeSet::new();
    if let Some(w) = &core.where_clause {
        predicate_components(w, &mut preds);
    }
    let mut having: BTreeSet<String> = BTreeSet::new();
    if let Some(h) = &core.having {
        predicate_components(h, &mut having);
    }
    let group: BTreeSet<String> = core.group_by.iter().map(strip_values).collect();
    let order: Vec<String> = stmt
        .order_by
        .iter()
        .map(|o| format!("{} {}", strip_values(&o.expr), if o.desc { "desc" } else { "asc" }))
        .collect();
    let compound = match &stmt.compound {
        Some((op, rhs)) => format!("{} {}", op.keyword(), fingerprint(rhs)),
        None => String::new(),
    };
    format!(
        "sel[{}{:?}] tab{:?} where{:?} group{:?} having{:?} order{:?} limit[{}] {compound}",
        if core.distinct { "distinct " } else { "" },
        select,
        tables,
        preds,
        group,
        having,
        order,
        stmt.limit.map(|l| l.to_string()).unwrap_or_default(),
    )
}

/// Spider *Exact Matching Accuracy* ("Exact Set Match without Values"):
/// component-wise comparison of predicted and gold queries with literals
/// replaced by placeholders, tolerant to projection/condition ordering.
pub fn exact_match(predicted: &SelectStmt, gold: &SelectStmt) -> bool {
    fingerprint(predicted) == fingerprint(gold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use valuenet_schema::{ColumnType, SchemaBuilder};
    use valuenet_sql::parse_select;

    fn db() -> Database {
        let schema = SchemaBuilder::new("t")
            .table("student", &[("id", ColumnType::Number), ("name", ColumnType::Text), ("age", ColumnType::Number)])
            .build();
        let mut db = Database::new(schema);
        let s = db.schema().table_by_name("student").unwrap();
        db.insert(s, vec![1.into(), "Alice".into(), 21.into()]);
        db.insert(s, vec![2.into(), "Bob".into(), 19.into()]);
        db.rebuild_index();
        db
    }

    fn q(sql: &str) -> SelectStmt {
        parse_select(sql).unwrap()
    }

    #[test]
    fn execution_accuracy_outcomes() {
        let db = db();
        let gold = q("SELECT name FROM student WHERE age > 20");
        assert!(execution_accuracy(&db, &q("SELECT name FROM student WHERE age >= 21"), &gold)
            .is_correct());
        assert_eq!(
            execution_accuracy(&db, &q("SELECT name FROM student WHERE age > 18"), &gold),
            ExecOutcome::WrongResult
        );
        assert_eq!(
            execution_accuracy(&db, &q("SELECT nosuch FROM student"), &gold),
            ExecOutcome::PredictionFailed
        );
        assert_eq!(
            execution_accuracy(&db, &gold, &q("SELECT x FROM nosuch")),
            ExecOutcome::GoldFailed
        );
    }

    #[test]
    fn execution_accuracy_cares_about_values() {
        // Same sketch, different value → different result → wrong. This is
        // exactly what Exact Match cannot see.
        let db = db();
        let gold = q("SELECT name FROM student WHERE age > 20");
        let pred = q("SELECT name FROM student WHERE age > 1");
        assert!(!execution_accuracy(&db, &pred, &gold).is_correct());
        assert!(exact_match(&pred, &gold), "exact match ignores values");
    }

    #[test]
    fn exact_match_tolerates_ordering() {
        assert!(exact_match(
            &q("SELECT a, b FROM t WHERE x = 1 AND y = 2"),
            &q("SELECT b, a FROM t WHERE y = 9 AND x = 3"),
        ));
    }

    #[test]
    fn exact_match_detects_component_differences() {
        assert!(!exact_match(&q("SELECT a FROM t"), &q("SELECT a FROM t WHERE x = 1")));
        assert!(!exact_match(&q("SELECT a FROM t ORDER BY a ASC"), &q("SELECT a FROM t ORDER BY a DESC")));
        assert!(!exact_match(&q("SELECT a FROM t LIMIT 1"), &q("SELECT a FROM t LIMIT 2")));
        assert!(!exact_match(&q("SELECT count(a) FROM t"), &q("SELECT sum(a) FROM t")));
        assert!(!exact_match(&q("SELECT DISTINCT a FROM t"), &q("SELECT a FROM t")));
    }

    #[test]
    fn exact_match_sees_nesting() {
        assert!(exact_match(
            &q("SELECT a FROM t WHERE x > (SELECT avg(x) FROM t)"),
            &q("SELECT a FROM t WHERE x > (SELECT avg(x) FROM t)"),
        ));
        assert!(!exact_match(
            &q("SELECT a FROM t WHERE x > (SELECT avg(x) FROM t)"),
            &q("SELECT a FROM t WHERE x > (SELECT max(x) FROM t)"),
        ));
    }
}
