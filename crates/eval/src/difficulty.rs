//! Spider's query-hardness heuristic.
//!
//! A faithful port of the `eval_hardness` logic from the official Spider
//! evaluation script: three component counts decide the bucket. "Queries
//! that contain more SQL keywords … are considered to be harder"
//! (paper Section V-F).

use serde::{Deserialize, Serialize};
use valuenet_sql::{Expr, SelectStmt};

/// Spider's four difficulty levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Difficulty {
    /// Single-table, at most one simple component.
    Easy,
    /// A couple of components.
    Medium,
    /// Several components or one nesting.
    Hard,
    /// Heavy nesting / many components.
    ExtraHard,
}

impl Difficulty {
    /// All levels, in order.
    pub const ALL: [Difficulty; 4] =
        [Difficulty::Easy, Difficulty::Medium, Difficulty::Hard, Difficulty::ExtraHard];

    /// Display label matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Difficulty::Easy => "Easy",
            Difficulty::Medium => "Medium",
            Difficulty::Hard => "Hard",
            Difficulty::ExtraHard => "Extra-Hard",
        }
    }
}

struct Counts {
    comp1: usize,
    comp2: usize,
    others: usize,
}

fn count_or_like(e: &Expr, ors: &mut usize, likes: &mut usize, conds: &mut usize) {
    match e {
        Expr::Binary { op, lhs, rhs } if !op.is_comparison() => {
            if *op == valuenet_sql::BinOp::Or {
                *ors += 1;
            }
            count_or_like(lhs, ors, likes, conds);
            count_or_like(rhs, ors, likes, conds);
        }
        Expr::Like { .. } => {
            *likes += 1;
            *conds += 1;
        }
        Expr::Not(inner) => count_or_like(inner, ors, likes, conds),
        _ => *conds += 1,
    }
}

fn count_nested(e: &Expr) -> usize {
    match e {
        Expr::Binary { lhs, rhs, .. } => count_nested(lhs) + count_nested(rhs),
        Expr::Not(inner) => count_nested(inner),
        Expr::Subquery(_) | Expr::InSubquery { .. } => 1,
        Expr::Between { .. } | Expr::InList { .. } | Expr::Like { .. } => 0,
        _ => 0,
    }
}

fn count_aggs(stmt: &SelectStmt) -> usize {
    stmt.core
        .items
        .iter()
        .filter(|it| it.expr.contains_aggregate())
        .count()
        + stmt.order_by.iter().filter(|o| o.expr.contains_aggregate()).count()
        + stmt.core.having.as_ref().map_or(0, |h| usize::from(h.contains_aggregate()))
}

fn counts(stmt: &SelectStmt) -> Counts {
    let core = &stmt.core;
    let mut comp1 = 0;
    let mut ors = 0;
    let mut likes = 0;
    let mut where_conds = 0;
    if let Some(w) = &core.where_clause {
        comp1 += 1;
        count_or_like(w, &mut ors, &mut likes, &mut where_conds);
    }
    if !core.group_by.is_empty() {
        comp1 += 1;
    }
    if !stmt.order_by.is_empty() {
        comp1 += 1;
    }
    if stmt.limit.is_some() {
        comp1 += 1;
    }
    if !core.joins.is_empty() {
        comp1 += 1;
    }
    comp1 += ors + likes;

    let mut comp2 = 0;
    if stmt.compound.is_some() {
        comp2 += 1;
    }
    if let Some(w) = &core.where_clause {
        comp2 += count_nested(w);
    }
    if let Some(h) = &core.having {
        comp2 += count_nested(h);
    }

    let mut others = 0;
    if count_aggs(stmt) > 1 {
        others += 1;
    }
    if core.items.len() > 1 {
        others += 1;
    }
    if where_conds > 1 {
        others += 1;
    }
    if core.group_by.len() > 1 {
        others += 1;
    }
    Counts { comp1, comp2, others }
}

/// Classifies a query with Spider's official hardness rules. For compound
/// queries the counts of both sides contribute (the right side adds to the
/// nesting count), matching the script's treatment of set operations.
pub fn spider_difficulty(stmt: &SelectStmt) -> Difficulty {
    let c = counts(stmt);
    let (comp1, comp2, others) = (c.comp1, c.comp2, c.others);
    if comp1 <= 1 && others == 0 && comp2 == 0 {
        Difficulty::Easy
    } else if (others <= 2 && comp1 <= 1 && comp2 == 0)
        || (comp1 <= 2 && others < 2 && comp2 == 0)
    {
        Difficulty::Medium
    } else if (others > 2 && comp1 <= 2 && comp2 == 0)
        || (comp1 > 2 && comp1 <= 3 && others <= 2 && comp2 == 0)
        || (comp1 <= 1 && others == 0 && comp2 <= 1)
    {
        Difficulty::Hard
    } else {
        Difficulty::ExtraHard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use valuenet_sql::parse_select;

    fn diff(sql: &str) -> Difficulty {
        spider_difficulty(&parse_select(sql).unwrap())
    }

    #[test]
    fn easy_queries() {
        assert_eq!(diff("SELECT name FROM student"), Difficulty::Easy);
        assert_eq!(diff("SELECT count(*) FROM student"), Difficulty::Easy);
        assert_eq!(diff("SELECT name FROM student WHERE age > 20"), Difficulty::Easy);
    }

    #[test]
    fn medium_queries() {
        assert_eq!(
            diff("SELECT name, age FROM student WHERE age > 20"),
            Difficulty::Medium
        );
        assert_eq!(
            diff("SELECT T1.name FROM student AS T1 JOIN has_pet AS T2 ON T1.id = T2.sid WHERE T2.pid = 3"),
            Difficulty::Medium
        );
        assert_eq!(
            diff("SELECT name FROM student GROUP BY name"),
            Difficulty::Easy,
            "single group-by only"
        );
    }

    #[test]
    fn hard_queries() {
        assert_eq!(
            diff(
                "SELECT name FROM student WHERE age > (SELECT avg(age) FROM student)"
            ),
            Difficulty::Hard
        );
        assert_eq!(
            diff(
                "SELECT country, count(*) FROM student \
                 WHERE age > 20 GROUP BY country ORDER BY count(*) DESC"
            ),
            Difficulty::Hard
        );
        // A simple set operation is Hard (comp2 = 1, everything else small).
        assert_eq!(
            diff(
                "SELECT name FROM student WHERE country = 'France' \
                 INTERSECT SELECT name FROM student WHERE age < 20"
            ),
            Difficulty::Hard
        );
    }

    #[test]
    fn extra_hard_queries() {
        assert_eq!(
            diff(
                "SELECT name FROM student WHERE age > 20 AND id IN (SELECT sid FROM has_pet) \
                 ORDER BY age DESC LIMIT 3"
            ),
            Difficulty::ExtraHard
        );
        // Join + where + group + order pushes comp1 past 3.
        assert_eq!(
            diff(
                "SELECT T1.country, count(*) FROM student AS T1 JOIN has_pet AS T2 ON T1.id = T2.sid \
                 WHERE T1.age > 20 GROUP BY T1.country ORDER BY count(*) DESC"
            ),
            Difficulty::ExtraHard
        );
    }

    #[test]
    fn ordering_of_levels() {
        assert!(Difficulty::Easy < Difficulty::Medium);
        assert!(Difficulty::Hard < Difficulty::ExtraHard);
        assert_eq!(Difficulty::ALL.len(), 4);
    }
}
