//! Evaluation: the two Spider metrics, the difficulty classifier, and the
//! paper's error analysis (Section V).
//!
//! - [`execution_accuracy`] — the metric ValueNet is evaluated on: run both
//!   the predicted and the gold query against the database and compare the
//!   result sets. This is the only metric that exercises *values*.
//! - [`exact_match`] — Spider's "Exact Set Match without Values": component
//!   sets are compared after stripping literals, tolerant to ordering
//!   (`SELECT A, B` ≡ `SELECT B, A`).
//! - [`spider_difficulty`] — the official four-level hardness heuristic
//!   (Easy / Medium / Hard / Extra-hard), reimplemented over our SQL AST.
//! - [`error_analysis`] — classifies failed predictions into the paper's
//!   Section V-G causes (column, table, sketch, value selection) by
//!   comparing predicted and gold SemQL action sequences.

//! ```
//! use valuenet_eval::{exact_match, spider_difficulty, Difficulty};
//! use valuenet_sql::parse_select;
//!
//! let gold = parse_select("SELECT name FROM student WHERE age > 20").unwrap();
//! let pred = parse_select("SELECT name FROM student WHERE age > 99").unwrap();
//! // Exact Match ignores values — exactly why the paper insists on
//! // Execution Accuracy.
//! assert!(exact_match(&pred, &gold));
//! assert_eq!(spider_difficulty(&gold), Difficulty::Easy);
//! ```

mod analysis;
mod difficulty;
mod metrics;
mod report;

pub use analysis::{error_analysis, ErrorCause, ErrorReport};
pub use difficulty::{spider_difficulty, Difficulty};
pub use metrics::{exact_match, execution_accuracy, ExecOutcome};
pub use report::TextTable;
