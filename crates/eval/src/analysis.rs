//! Error analysis (paper Section V-G).
//!
//! Failed predictions are classified by comparing the predicted and gold
//! SemQL action sequences: diverging sketch actions are *SQL-sketch errors*,
//! diverging column / table / value pointers are *column / table / value
//! selection errors*. As in the paper, one example can exhibit several
//! causes.

use serde::{Deserialize, Serialize};
use valuenet_semql::{ast_to_actions, Action, SemQl};

/// The paper's error categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorCause {
    /// Wrong column pointer.
    Column,
    /// Wrong table pointer.
    Table,
    /// Wrong grammar-rule (sketch) action.
    Sketch,
    /// Wrong value selected.
    Value,
}

impl ErrorCause {
    /// All causes, in the paper's reporting order.
    pub const ALL: [ErrorCause; 4] =
        [ErrorCause::Column, ErrorCause::Table, ErrorCause::Sketch, ErrorCause::Value];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            ErrorCause::Column => "Column Prediction",
            ErrorCause::Table => "Table Prediction",
            ErrorCause::Sketch => "SQL Sketch",
            ErrorCause::Value => "Value Selection",
        }
    }
}

/// Causes found for one failed sample.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ErrorReport {
    /// All causes present (possibly several, as in the paper).
    pub causes: Vec<ErrorCause>,
}

impl ErrorReport {
    /// Whether a specific cause was identified.
    pub fn has(&self, cause: ErrorCause) -> bool {
        self.causes.contains(&cause)
    }
}

/// Compares predicted and gold trees. `pred_values`/`gold_values` are the
/// resolved value texts so that value pointers can be compared by content
/// rather than by index.
pub fn error_analysis(
    predicted: &SemQl,
    gold: &SemQl,
    pred_values: &[String],
    gold_values: &[String],
) -> ErrorReport {
    let pa = ast_to_actions(predicted);
    let ga = ast_to_actions(gold);
    let mut report = ErrorReport::default();
    let add = |c: ErrorCause, report: &mut ErrorReport| {
        if !report.causes.contains(&c) {
            report.causes.push(c);
        }
    };

    // Sketch comparison: the subsequence of non-pointer actions.
    let psk: Vec<&Action> = pa.iter().filter(|a| a.sketch_index().is_some()).collect();
    let gsk: Vec<&Action> = ga.iter().filter(|a| a.sketch_index().is_some()).collect();
    if psk.len() != gsk.len() || psk.iter().zip(&gsk).any(|(a, b)| a != b) {
        add(ErrorCause::Sketch, &mut report);
    }

    // Pointer comparisons: positional when the sketches agree, set-based
    // otherwise (a sketch divergence shifts positions).
    let pc: Vec<usize> = pa.iter().filter_map(|a| match a { Action::C(c) => Some(*c), _ => None }).collect();
    let gc: Vec<usize> = ga.iter().filter_map(|a| match a { Action::C(c) => Some(*c), _ => None }).collect();
    if !same_multiset(&pc, &gc) {
        add(ErrorCause::Column, &mut report);
    }
    let pt: Vec<usize> = pa.iter().filter_map(|a| match a { Action::T(t) => Some(*t), _ => None }).collect();
    let gt: Vec<usize> = ga.iter().filter_map(|a| match a { Action::T(t) => Some(*t), _ => None }).collect();
    if !same_multiset(&pt, &gt) {
        add(ErrorCause::Table, &mut report);
    }

    // Value comparison by resolved text.
    let pv: Vec<&str> = pa
        .iter()
        .filter_map(|a| match a {
            Action::V(v) => Some(pred_values.get(*v).map(String::as_str).unwrap_or("<missing>")),
            _ => None,
        })
        .collect();
    let gv: Vec<&str> = ga
        .iter()
        .filter_map(|a| match a {
            Action::V(v) => Some(gold_values.get(*v).map(String::as_str).unwrap_or("<missing>")),
            _ => None,
        })
        .collect();
    let pv_norm: Vec<String> = pv.iter().map(|s| s.to_lowercase()).collect();
    let gv_norm: Vec<String> = gv.iter().map(|s| s.to_lowercase()).collect();
    if !same_multiset(&pv_norm, &gv_norm) {
        add(ErrorCause::Value, &mut report);
    }
    report
}

fn same_multiset<T: Ord + Clone>(a: &[T], b: &[T]) -> bool {
    let mut a = a.to_vec();
    let mut b = b.to_vec();
    a.sort();
    b.sort();
    a == b
}

#[cfg(test)]
mod tests {
    use super::*;
    use valuenet_schema::{ColumnId, TableId};
    use valuenet_semql::{Agg, CmpOp, Filter, QueryR, Select, SemQl, ValueRef};

    fn simple(col: usize, table: usize, value: usize) -> SemQl {
        SemQl::Single(Box::new(QueryR {
            select: Select::new(vec![Agg::plain(ColumnId(col), TableId(table))]),
            order: None,
            superlative: None,
            filter: Some(Filter::Cmp {
                op: CmpOp::Eq,
                agg: Agg::plain(ColumnId(col), TableId(table)),
                value: ValueRef(value),
            }),
        }))
    }

    #[test]
    fn identical_trees_have_no_causes() {
        let g = simple(2, 0, 0);
        let r = error_analysis(&g, &g, &["France".into()], &["France".into()]);
        assert!(r.causes.is_empty());
    }

    #[test]
    fn wrong_column_detected() {
        let pred = simple(3, 0, 0);
        let gold = simple(2, 0, 0);
        let r = error_analysis(&pred, &gold, &["x".into()], &["x".into()]);
        assert!(r.has(ErrorCause::Column));
        assert!(!r.has(ErrorCause::Table));
        assert!(!r.has(ErrorCause::Sketch));
    }

    #[test]
    fn wrong_table_detected() {
        let pred = simple(2, 1, 0);
        let gold = simple(2, 0, 0);
        let r = error_analysis(&pred, &gold, &["x".into()], &["x".into()]);
        assert!(r.has(ErrorCause::Table));
    }

    #[test]
    fn wrong_value_detected() {
        let pred = simple(2, 0, 0);
        let gold = simple(2, 0, 0);
        let r = error_analysis(&pred, &gold, &["Germany".into()], &["France".into()]);
        assert_eq!(r.causes, vec![ErrorCause::Value]);
        // Case differences are not value errors.
        let r2 = error_analysis(&pred, &gold, &["france".into()], &["France".into()]);
        assert!(r2.causes.is_empty());
    }

    #[test]
    fn sketch_divergence_detected() {
        let pred = SemQl::Single(Box::new(QueryR {
            select: Select::new(vec![Agg::plain(ColumnId(2), TableId(0))]),
            order: None,
            superlative: None,
            filter: Some(Filter::Cmp {
                op: CmpOp::Gt, // gold uses Eq
                agg: Agg::plain(ColumnId(2), TableId(0)),
                value: ValueRef(0),
            }),
        }));
        let gold = simple(2, 0, 0);
        let r = error_analysis(&pred, &gold, &["5".into()], &["5".into()]);
        assert_eq!(r.causes, vec![ErrorCause::Sketch]);
    }

    #[test]
    fn multiple_causes_can_coexist() {
        let pred = SemQl::Single(Box::new(QueryR {
            select: Select::new(vec![Agg::plain(ColumnId(4), TableId(1))]),
            order: None,
            superlative: None,
            filter: None,
        }));
        let gold = simple(2, 0, 0);
        let r = error_analysis(&pred, &gold, &[], &["France".into()]);
        assert!(r.has(ErrorCause::Sketch));
        assert!(r.has(ErrorCause::Column));
        assert!(r.has(ErrorCause::Table));
        assert!(r.has(ErrorCause::Value));
    }
}
