//! Abstract syntax tree for the covered SQL subset.

use serde::{Deserialize, Serialize};

/// A literal value appearing in SQL text.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Literal {
    /// `NULL`.
    Null,
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Single-quoted string literal (unescaped form).
    Text(String),
}

impl Literal {
    /// Parses a bare token into the most specific literal type.
    pub fn infer(s: &str) -> Literal {
        if let Ok(i) = s.parse::<i64>() {
            Literal::Int(i)
        } else if let Ok(f) = s.parse::<f64>() {
            Literal::Float(f)
        } else {
            Literal::Text(s.to_string())
        }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    /// `COUNT`.
    Count,
    /// `SUM`.
    Sum,
    /// `AVG`.
    Avg,
    /// `MIN`.
    Min,
    /// `MAX`.
    Max,
}

impl AggFunc {
    /// SQL keyword for the function.
    pub fn keyword(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

/// Binary operators (comparisons and boolean connectives).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinOp {
    /// SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Eq => "=",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }

    /// True for comparison (non-boolean-connective) operators.
    pub fn is_comparison(self) -> bool {
        !matches!(self, BinOp::And | BinOp::Or)
    }
}

/// Reference to a column, optionally qualified: `T1.age`, `age`, `T1.*`, `*`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColumnRef {
    /// Table name or alias qualifier.
    pub table: Option<String>,
    /// Column name; `*` denotes all columns.
    pub column: String,
}

impl ColumnRef {
    /// Unqualified reference.
    pub fn bare(column: impl Into<String>) -> Self {
        ColumnRef { table: None, column: column.into() }
    }

    /// Qualified reference.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef { table: Some(table.into()), column: column.into() }
    }

    /// Whether this is a `*` (or `T.*`) reference.
    pub fn is_star(&self) -> bool {
        self.column == "*"
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Column reference.
    Column(ColumnRef),
    /// Literal.
    Lit(Literal),
    /// Aggregate application, e.g. `count(DISTINCT T1.name)` or `count(*)`.
    Agg {
        /// The aggregate function.
        func: AggFunc,
        /// Whether `DISTINCT` applies to the argument.
        distinct: bool,
        /// Argument (a column reference, possibly `*`).
        arg: Box<Expr>,
    },
    /// Binary operation (comparison or AND/OR).
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Logical negation.
    Not(Box<Expr>),
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// Whether the predicate is negated.
        negated: bool,
    },
    /// `expr [NOT] IN (v1, v2, ...)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// Whether the predicate is negated.
        negated: bool,
    },
    /// `expr [NOT] IN (SELECT ...)`.
    InSubquery {
        /// Tested expression.
        expr: Box<Expr>,
        /// The subquery (must project a single column).
        subquery: Box<SelectStmt>,
        /// Whether the predicate is negated.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern`.
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern with `%`/`_` wildcards.
        pattern: Box<Expr>,
        /// Whether the predicate is negated.
        negated: bool,
    },
    /// Scalar subquery `(SELECT ...)` used as a value.
    Subquery(Box<SelectStmt>),
}

impl Expr {
    /// Convenience constructor for comparisons and connectives.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }

    /// Whether the expression contains any aggregate application.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Agg { .. } => true,
            Expr::Column(_) | Expr::Lit(_) => false,
            Expr::Binary { lhs, rhs, .. } => lhs.contains_aggregate() || rhs.contains_aggregate(),
            Expr::Not(e) => e.contains_aggregate(),
            Expr::Between { expr, low, high, .. } => {
                expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate()
            }
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::InSubquery { expr, .. } => expr.contains_aggregate(),
            Expr::Like { expr, pattern, .. } => {
                expr.contains_aggregate() || pattern.contains_aggregate()
            }
            Expr::Subquery(_) => false,
        }
    }

    /// Collects every column reference in this expression (not descending
    /// into subqueries).
    pub fn collect_columns<'a>(&'a self, out: &mut Vec<&'a ColumnRef>) {
        match self {
            Expr::Column(c) => out.push(c),
            Expr::Lit(_) | Expr::Subquery(_) => {}
            Expr::Agg { arg, .. } => arg.collect_columns(out),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_columns(out);
                rhs.collect_columns(out);
            }
            Expr::Not(e) => e.collect_columns(out),
            Expr::Between { expr, low, high, .. } => {
                expr.collect_columns(out);
                low.collect_columns(out);
                high.collect_columns(out);
            }
            Expr::InList { expr, list, .. } => {
                expr.collect_columns(out);
                for e in list {
                    e.collect_columns(out);
                }
            }
            Expr::InSubquery { expr, .. } => expr.collect_columns(out),
            Expr::Like { expr, pattern, .. } => {
                expr.collect_columns(out);
                pattern.collect_columns(out);
            }
        }
    }
}

/// One projected item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectItem {
    /// The projected expression.
    pub expr: Expr,
    /// Optional `AS` alias.
    pub alias: Option<String>,
}

/// A table reference in `FROM` or `JOIN`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableRef {
    /// Physical table name.
    pub name: String,
    /// Optional alias (`AS T1`).
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table is addressed by in the query.
    pub fn effective_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// An `INNER JOIN`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Join {
    /// Joined table.
    pub table: TableRef,
    /// `ON` condition; `None` denotes a cross join (the failure mode the
    /// paper attributes to IRNet under Execution Accuracy).
    pub on: Option<Expr>,
}

/// The body of one `SELECT` (everything before ORDER BY / set operators).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectCore {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// Projections.
    pub items: Vec<SelectItem>,
    /// First `FROM` table; `None` only while under construction.
    pub from: Option<TableRef>,
    /// Joined tables, in order.
    pub joins: Vec<Join>,
    /// `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
}

impl SelectCore {
    /// An empty core (no projections, no FROM).
    pub fn new() -> Self {
        SelectCore {
            distinct: false,
            items: Vec::new(),
            from: None,
            joins: Vec::new(),
            where_clause: None,
            group_by: Vec::new(),
            having: None,
        }
    }
}

impl Default for SelectCore {
    fn default() -> Self {
        Self::new()
    }
}

/// Set operators combining two queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompoundOp {
    /// `UNION` (duplicate-eliminating).
    Union,
    /// `UNION ALL`.
    UnionAll,
    /// `INTERSECT`.
    Intersect,
    /// `EXCEPT`.
    Except,
}

impl CompoundOp {
    /// SQL spelling.
    pub fn keyword(self) -> &'static str {
        match self {
            CompoundOp::Union => "UNION",
            CompoundOp::UnionAll => "UNION ALL",
            CompoundOp::Intersect => "INTERSECT",
            CompoundOp::Except => "EXCEPT",
        }
    }
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrderItem {
    /// Sort key.
    pub expr: Expr,
    /// Descending?
    pub desc: bool,
}

/// A complete query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectStmt {
    /// The select body.
    pub core: SelectCore,
    /// `ORDER BY` keys (applies to `core`; see the crate docs for the
    /// compound-operand caveat).
    pub order_by: Vec<OrderItem>,
    /// `LIMIT`.
    pub limit: Option<u64>,
    /// Optional set operation with a right-hand query.
    pub compound: Option<(CompoundOp, Box<SelectStmt>)>,
}

impl SelectStmt {
    /// A statement wrapping just a core.
    pub fn simple(core: SelectCore) -> Self {
        SelectStmt { core, order_by: Vec::new(), limit: None, compound: None }
    }

    /// Whether the *final* result of this statement carries a meaningful row
    /// order (used by the Execution Accuracy comparison).
    pub fn is_ordered(&self) -> bool {
        self.compound.is_none() && !self.order_by.is_empty()
    }
}
