//! Canonical SQL rendering via `Display`.
//!
//! The printer emits exactly the dialect the parser accepts, so
//! `parse_select(&stmt.to_string())` round-trips for every AST the system
//! produces (a property test in the integration suite relies on this).

use crate::ast::*;
use std::fmt;

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Null => write!(f, "NULL"),
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Literal::Text(s) => write!(f, "'{}'", s.replace('\'', "''")),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Lit(l) => write!(f, "{l}"),
            Expr::Agg { func, distinct, arg } => {
                write!(f, "{}(", func.keyword())?;
                if *distinct {
                    write!(f, "DISTINCT ")?;
                }
                write!(f, "{arg})")
            }
            Expr::Binary { op, lhs, rhs } => {
                if op.is_comparison() {
                    write!(f, "{lhs} {} {rhs}", op.symbol())
                } else {
                    // Parenthesize nested boolean operands so the exact tree
                    // shape (including associativity) survives reparsing.
                    let fmt_operand =
                        |f: &mut fmt::Formatter<'_>, e: &Expr| -> fmt::Result {
                            match e {
                                Expr::Binary { op: inner, .. } if !inner.is_comparison() => {
                                    write!(f, "({e})")
                                }
                                _ => write!(f, "{e}"),
                            }
                        };
                    fmt_operand(f, lhs)?;
                    write!(f, " {} ", op.symbol())?;
                    fmt_operand(f, rhs)
                }
            }
            Expr::Not(e) => write!(f, "NOT {e}"),
            Expr::Between { expr, low, high, negated } => {
                if *negated {
                    write!(f, "{expr} NOT BETWEEN {low} AND {high}")
                } else {
                    write!(f, "{expr} BETWEEN {low} AND {high}")
                }
            }
            Expr::InList { expr, list, negated } => {
                let items: Vec<String> = list.iter().map(|e| e.to_string()).collect();
                if *negated {
                    write!(f, "{expr} NOT IN ({})", items.join(", "))
                } else {
                    write!(f, "{expr} IN ({})", items.join(", "))
                }
            }
            Expr::InSubquery { expr, subquery, negated } => {
                if *negated {
                    write!(f, "{expr} NOT IN ({subquery})")
                } else {
                    write!(f, "{expr} IN ({subquery})")
                }
            }
            Expr::Like { expr, pattern, negated } => {
                if *negated {
                    write!(f, "{expr} NOT LIKE {pattern}")
                } else {
                    write!(f, "{expr} LIKE {pattern}")
                }
            }
            Expr::Subquery(s) => write!(f, "({s})"),
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.alias {
            Some(a) => write!(f, "{} AS {a}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

impl fmt::Display for SelectCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        let items: Vec<String> = self
            .items
            .iter()
            .map(|it| match &it.alias {
                Some(a) => format!("{} AS {a}", it.expr),
                None => it.expr.to_string(),
            })
            .collect();
        write!(f, "{}", items.join(", "))?;
        if let Some(from) = &self.from {
            write!(f, " FROM {from}")?;
            for j in &self.joins {
                write!(f, " JOIN {}", j.table)?;
                if let Some(on) = &j.on {
                    write!(f, " ON {on}")?;
                }
            }
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            let keys: Vec<String> = self.group_by.iter().map(|e| e.to_string()).collect();
            write!(f, " GROUP BY {}", keys.join(", "))?;
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.core)?;
        if !self.order_by.is_empty() {
            let keys: Vec<String> = self
                .order_by
                .iter()
                .map(|o| {
                    if o.desc {
                        format!("{} DESC", o.expr)
                    } else {
                        format!("{} ASC", o.expr)
                    }
                })
                .collect();
            write!(f, " ORDER BY {}", keys.join(", "))?;
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        if let Some((op, rhs)) = &self.compound {
            write!(f, " {} {rhs}", op.keyword())?;
        }
        Ok(())
    }
}

/// Failure modes of the parse → print → parse identity check.
#[derive(Debug, Clone, PartialEq)]
pub enum RoundTripError {
    /// The input SQL did not parse.
    Parse {
        /// The offending SQL.
        sql: String,
        /// The parser's error.
        error: crate::ParseError,
    },
    /// The printed form of a parsed statement did not parse back.
    Reparse {
        /// The printer's output.
        printed: String,
        /// The parser's error.
        error: crate::ParseError,
    },
    /// Parsing the printed form produced a different AST.
    AstChanged {
        /// The original SQL.
        sql: String,
        /// The printer's output.
        printed: String,
    },
}

impl fmt::Display for RoundTripError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoundTripError::Parse { sql, error } => write!(f, "parse of {sql:?} failed: {error}"),
            RoundTripError::Reparse { printed, error } => {
                write!(f, "reparse of printed form {printed:?} failed: {error}")
            }
            RoundTripError::AstChanged { sql, printed } => {
                write!(f, "round trip changed the AST of {sql:?} (printed as {printed:?})")
            }
        }
    }
}

impl std::error::Error for RoundTripError {}

/// Checks that parse → print → parse is the identity on `sql`, returning the
/// parsed statement on success.
///
/// This is the `Result` form of the printer's core guarantee; callers that
/// feed generated or untrusted SQL (the fuzz harness, corpus tests) use it
/// instead of unwrap/panic helpers.
pub fn check_round_trip(sql: &str) -> Result<SelectStmt, RoundTripError> {
    let q1 = crate::parse_select(sql)
        .map_err(|error| RoundTripError::Parse { sql: sql.to_string(), error })?;
    let printed = q1.to_string();
    let q2 = crate::parse_select(&printed)
        .map_err(|error| RoundTripError::Reparse { printed: printed.clone(), error })?;
    if q1 != q2 {
        return Err(RoundTripError::AstChanged { sql: sql.to_string(), printed });
    }
    Ok(q1)
}

#[cfg(test)]
mod tests {
    use super::RoundTripError;
    use crate::{check_round_trip, parse_select};

    /// Parse → print → parse must be the identity on the AST.
    fn round_trip(sql: &str) {
        if let Err(e) = check_round_trip(sql) {
            panic!("{e}");
        }
    }

    #[test]
    fn round_trips() {
        for sql in [
            "SELECT name FROM student",
            "SELECT DISTINCT T1.name FROM student AS T1",
            "SELECT count(*) FROM student AS T1 JOIN has_pet AS T2 ON T1.stu_id = T2.stu_id WHERE T1.home_country = 'France' AND T1.age > 20",
            "SELECT T1.grade, count(DISTINCT T1.name) FROM student AS T1 GROUP BY T1.grade HAVING count(*) > 2",
            "SELECT name FROM t ORDER BY age DESC LIMIT 3",
            "SELECT name FROM t WHERE age > (SELECT avg(age) FROM t)",
            "SELECT name FROM t WHERE id NOT IN (SELECT stu_id FROM has_pet)",
            "SELECT name FROM t WHERE age BETWEEN 10 AND 20 AND name LIKE '%Ha%'",
            "SELECT a FROM t UNION SELECT b FROM u",
            "SELECT a FROM t EXCEPT SELECT a FROM u INTERSECT SELECT c FROM v",
            "SELECT x FROM t WHERE (a = 1 OR b = 2) AND c = 3",
            "SELECT x FROM t WHERE a NOT BETWEEN 1 AND 2 OR b NOT LIKE 'q%'",
            "SELECT *, T1.* FROM t AS T1",
            "SELECT name FROM t WHERE note = 'O''Brien said \"hi\"'",
            "SELECT a FROM t WHERE b = 3.5 AND c = -2",
            "SELECT sum(T1.weight) AS total FROM pet AS T1",
        ] {
            round_trip(sql);
        }
    }

    #[test]
    fn boolean_parenthesization_preserved() {
        let q = parse_select("SELECT x FROM t WHERE (a = 1 OR b = 2) AND c = 3").unwrap();
        let s = q.to_string();
        assert!(s.contains("(a = 1 OR b = 2) AND"), "printed: {s}");
    }

    #[test]
    fn check_round_trip_reports_parse_errors() {
        match check_round_trip("SELECT FROM WHERE") {
            Err(RoundTripError::Parse { sql, .. }) => assert_eq!(sql, "SELECT FROM WHERE"),
            other => panic!("expected a Parse error, got {other:?}"),
        }
    }

    #[test]
    fn float_formatting_reparses_as_float() {
        let q = parse_select("SELECT a FROM t WHERE b = 2.0").unwrap();
        let s = q.to_string();
        assert!(s.contains("2.0"), "printed: {s}");
        round_trip("SELECT a FROM t WHERE b = 2.0");
    }
}
