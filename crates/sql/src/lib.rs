//! SQL front-end: AST, lexer, parser and printer.
//!
//! Covers the SQL subset that the SemQL 2.0 grammar (paper Fig. 2) can
//! express, which in turn covers the Spider query distribution: SELECT with
//! DISTINCT and aggregates, INNER JOIN with `ON` clauses, WHERE with
//! AND/OR, comparison/BETWEEN/LIKE/IN predicates and (uncorrelated) nested
//! subqueries, GROUP BY + HAVING, ORDER BY with LIMIT, and the UNION /
//! INTERSECT / EXCEPT set operations.
//!
//! One deliberate deviation from standard SQL precedence: in a compound
//! query each operand is a complete [`SelectStmt`], so an `ORDER BY` binds
//! to the operand it follows rather than to the whole compound. The crate is
//! both the only producer and the only consumer of this dialect, and the
//! query generator never emits `ORDER BY` inside compound operands, so
//! standard queries are unaffected.
//!
//! ```
//! use valuenet_sql::parse_select;
//!
//! let q = parse_select(
//!     "SELECT count(*) FROM student AS T1 JOIN has_pet AS T2 ON T1.stu_id = T2.stu_id \
//!      WHERE T1.home_country = 'France' AND T1.age > 20",
//! )
//! .unwrap();
//! assert_eq!(q.core.joins.len(), 1);
//! let round_trip = valuenet_sql::parse_select(&q.to_string()).unwrap();
//! assert_eq!(q, round_trip);
//! ```

mod ast;
mod lexer;
mod parser;
mod printer;

pub use ast::{
    AggFunc, BinOp, ColumnRef, CompoundOp, Expr, Join, Literal, OrderItem, SelectCore,
    SelectItem, SelectStmt, TableRef,
};
pub use lexer::{tokenize, LexError, Token};
pub use parser::{parse_select, ParseError};
pub use printer::{check_round_trip, RoundTripError};
