//! Recursive-descent parser for the covered SQL subset.

use crate::ast::*;
use crate::lexer::{tokenize, LexError, Token};
use std::fmt;

/// Parsing failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { message: e.to_string() }
    }
}

/// Parses a complete `SELECT` statement (optionally `;`-terminated).
pub fn parse_select(input: &str) -> Result<SelectStmt, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.select_stmt()?;
    if p.peek().is_some_and(|t| *t == Token::Semicolon) {
        p.advance();
    }
    match p.peek() {
        None => Ok(stmt),
        Some(t) => Err(ParseError { message: format!("trailing input at token {t:?}") }),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn advance(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("keyword {kw}")))
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        if self.peek() == Some(t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.unexpected(&format!("{t:?}")))
        }
    }

    fn unexpected(&self, wanted: &str) -> ParseError {
        ParseError {
            message: match self.peek() {
                Some(t) => format!("expected {wanted}, found {t:?} at token {}", self.pos),
                None => format!("expected {wanted}, found end of input"),
            },
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.unexpected("identifier")),
        }
    }

    fn select_stmt(&mut self) -> Result<SelectStmt, ParseError> {
        let core = self.select_core()?;
        let mut stmt = SelectStmt::simple(core);
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                stmt.order_by.push(OrderItem { expr, desc });
                if !self.eat_comma() {
                    break;
                }
            }
        }
        if self.eat_kw("LIMIT") {
            match self.advance() {
                Some(Token::Int(n)) if *n >= 0 => stmt.limit = Some(*n as u64),
                _ => return Err(ParseError { message: "LIMIT expects a non-negative integer".into() }),
            }
        }
        let op = if self.eat_kw("UNION") {
            Some(if self.eat_kw("ALL") { CompoundOp::UnionAll } else { CompoundOp::Union })
        } else if self.eat_kw("INTERSECT") {
            Some(CompoundOp::Intersect)
        } else if self.eat_kw("EXCEPT") {
            Some(CompoundOp::Except)
        } else {
            None
        };
        if let Some(op) = op {
            let rhs = self.select_stmt()?;
            stmt.compound = Some((op, Box::new(rhs)));
        }
        Ok(stmt)
    }

    fn eat_comma(&mut self) -> bool {
        if self.peek() == Some(&Token::Comma) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn select_core(&mut self) -> Result<SelectCore, ParseError> {
        self.expect_kw("SELECT")?;
        let mut core = SelectCore::new();
        core.distinct = self.eat_kw("DISTINCT");
        loop {
            let expr = self.expr()?;
            let alias = if self.eat_kw("AS") { Some(self.ident()?) } else { None };
            core.items.push(SelectItem { expr, alias });
            if !self.eat_comma() {
                break;
            }
        }
        if self.eat_kw("FROM") {
            core.from = Some(self.table_ref()?);
            loop {
                let inner = self.eat_kw("INNER");
                if self.eat_kw("JOIN") {
                    let table = self.table_ref()?;
                    let on = if self.eat_kw("ON") { Some(self.expr()?) } else { None };
                    core.joins.push(Join { table, on });
                } else if inner {
                    return Err(self.unexpected("JOIN after INNER"));
                } else {
                    break;
                }
            }
        }
        if self.eat_kw("WHERE") {
            core.where_clause = Some(self.expr()?);
        }
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                core.group_by.push(self.expr()?);
                if !self.eat_comma() {
                    break;
                }
            }
        }
        if self.eat_kw("HAVING") {
            core.having = Some(self.expr()?);
        }
        Ok(core)
    }

    fn table_ref(&mut self) -> Result<TableRef, ParseError> {
        let name = self.ident()?;
        // Alias follows either as `AS ident` or as a bare non-keyword ident.
        let has_alias = self.eat_kw("AS")
            || matches!(self.peek(), Some(Token::Ident(s)) if !is_reserved(s));
        let alias = if has_alias { Some(self.ident()?) } else { None };
        Ok(TableRef { name, alias })
    }

    // Precedence: OR < AND < NOT < predicate.
    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("OR") {
            let rhs = self.and_expr()?;
            lhs = Expr::binary(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("AND") {
            let rhs = self.not_expr()?;
            lhs = Expr::binary(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw("NOT") {
            // `NOT` directly before IN/LIKE/BETWEEN is handled in predicate();
            // here it is a prefix boolean negation.
            let inner = self.not_expr()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.predicate()
    }

    fn predicate(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.primary()?;
        let negated = self.eat_kw("NOT");
        if let Some(op) = self.comparison_op() {
            if negated {
                return Err(ParseError { message: "NOT before comparison operator".into() });
            }
            let rhs = self.primary()?;
            return Ok(Expr::binary(op, lhs, rhs));
        }
        if self.eat_kw("BETWEEN") {
            let low = self.primary()?;
            self.expect_kw("AND")?;
            let high = self.primary()?;
            return Ok(Expr::Between {
                expr: Box::new(lhs),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("LIKE") {
            let pattern = self.primary()?;
            return Ok(Expr::Like { expr: Box::new(lhs), pattern: Box::new(pattern), negated });
        }
        if self.eat_kw("IN") {
            self.expect(&Token::LParen)?;
            if self.peek().is_some_and(|t| t.is_kw("SELECT")) {
                let sub = self.select_stmt()?;
                self.expect(&Token::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(lhs),
                    subquery: Box::new(sub),
                    negated,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.primary()?);
                if !self.eat_comma() {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::InList { expr: Box::new(lhs), list, negated });
        }
        if negated {
            return Err(ParseError { message: "dangling NOT".into() });
        }
        Ok(lhs)
    }

    fn comparison_op(&mut self) -> Option<BinOp> {
        let op = match self.peek()? {
            Token::Eq => BinOp::Eq,
            Token::Ne => BinOp::Ne,
            Token::Lt => BinOp::Lt,
            Token::Le => BinOp::Le,
            Token::Gt => BinOp::Gt,
            Token::Ge => BinOp::Ge,
            _ => return None,
        };
        self.pos += 1;
        Some(op)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Token::Int(n)) => {
                let n = *n;
                self.pos += 1;
                Ok(Expr::Lit(Literal::Int(n)))
            }
            Some(Token::Float(f)) => {
                let f = *f;
                self.pos += 1;
                Ok(Expr::Lit(Literal::Float(f)))
            }
            Some(Token::Str(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(Expr::Lit(Literal::Text(s)))
            }
            Some(Token::Star) => {
                self.pos += 1;
                Ok(Expr::Column(ColumnRef::bare("*")))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                if self.peek().is_some_and(|t| t.is_kw("SELECT")) {
                    let sub = self.select_stmt()?;
                    self.expect(&Token::RParen)?;
                    Ok(Expr::Subquery(Box::new(sub)))
                } else {
                    let e = self.expr()?;
                    self.expect(&Token::RParen)?;
                    Ok(e)
                }
            }
            Some(Token::Ident(s)) => {
                if let Some(func) = agg_func(s) {
                    if self.peek2() == Some(&Token::LParen) {
                        self.pos += 2;
                        let distinct = self.eat_kw("DISTINCT");
                        let arg = if self.peek() == Some(&Token::Star) {
                            self.pos += 1;
                            Expr::Column(ColumnRef::bare("*"))
                        } else {
                            self.primary()?
                        };
                        self.expect(&Token::RParen)?;
                        return Ok(Expr::Agg { func, distinct, arg: Box::new(arg) });
                    }
                }
                if s.eq_ignore_ascii_case("NULL") {
                    self.pos += 1;
                    return Ok(Expr::Lit(Literal::Null));
                }
                let first = self.ident()?;
                if self.peek() == Some(&Token::Dot) {
                    self.pos += 1;
                    if self.peek() == Some(&Token::Star) {
                        self.pos += 1;
                        return Ok(Expr::Column(ColumnRef::qualified(first, "*")));
                    }
                    let col = self.ident()?;
                    Ok(Expr::Column(ColumnRef::qualified(first, col)))
                } else {
                    Ok(Expr::Column(ColumnRef::bare(first)))
                }
            }
            _ => Err(self.unexpected("expression")),
        }
    }
}

fn agg_func(s: &str) -> Option<AggFunc> {
    match s.to_ascii_lowercase().as_str() {
        "count" => Some(AggFunc::Count),
        "sum" => Some(AggFunc::Sum),
        "avg" => Some(AggFunc::Avg),
        "min" => Some(AggFunc::Min),
        "max" => Some(AggFunc::Max),
        _ => None,
    }
}

fn is_reserved(s: &str) -> bool {
    const RESERVED: &[&str] = &[
        "select", "distinct", "from", "join", "inner", "on", "where", "and", "or", "not", "in",
        "between", "like", "group", "by", "having", "order", "asc", "desc", "limit", "union",
        "all", "intersect", "except", "as", "null",
    ];
    RESERVED.contains(&s.to_ascii_lowercase().as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_select() {
        let q = parse_select("SELECT name FROM student").unwrap();
        assert_eq!(q.core.items.len(), 1);
        assert_eq!(q.core.from.as_ref().unwrap().name, "student");
        assert!(q.core.where_clause.is_none());
    }

    #[test]
    fn running_example() {
        let q = parse_select(
            "SELECT count(*) FROM student AS T1 JOIN has_pet AS T2 ON T1.stu_id = T2.stu_id \
             WHERE T1.home_country = 'France' AND T1.age > 20",
        )
        .unwrap();
        assert_eq!(q.core.joins.len(), 1);
        let on = q.core.joins[0].on.as_ref().unwrap();
        assert!(matches!(on, Expr::Binary { op: BinOp::Eq, .. }));
        let w = q.core.where_clause.as_ref().unwrap();
        assert!(matches!(w, Expr::Binary { op: BinOp::And, .. }));
    }

    #[test]
    fn aggregates_and_group_by() {
        let q = parse_select(
            "SELECT T1.grade, count(DISTINCT T1.name), avg(T1.age) FROM student AS T1 \
             GROUP BY T1.grade HAVING count(*) > 2",
        )
        .unwrap();
        assert_eq!(q.core.items.len(), 3);
        assert!(matches!(
            q.core.items[1].expr,
            Expr::Agg { func: AggFunc::Count, distinct: true, .. }
        ));
        assert_eq!(q.core.group_by.len(), 1);
        assert!(q.core.having.is_some());
    }

    #[test]
    fn order_and_limit() {
        let q = parse_select("SELECT name FROM t ORDER BY age DESC, name LIMIT 3").unwrap();
        assert_eq!(q.order_by.len(), 2);
        assert!(q.order_by[0].desc);
        assert!(!q.order_by[1].desc);
        assert_eq!(q.limit, Some(3));
        assert!(q.is_ordered());
    }

    #[test]
    fn nested_subquery_comparison() {
        let q = parse_select("SELECT name FROM t WHERE age > (SELECT avg(age) FROM t)").unwrap();
        let w = q.core.where_clause.unwrap();
        match w {
            Expr::Binary { op: BinOp::Gt, rhs, .. } => {
                assert!(matches!(*rhs, Expr::Subquery(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn in_and_not_in_subquery() {
        let q = parse_select(
            "SELECT name FROM t WHERE id NOT IN (SELECT stu_id FROM has_pet)",
        )
        .unwrap();
        assert!(matches!(q.core.where_clause.unwrap(), Expr::InSubquery { negated: true, .. }));
        let q2 = parse_select("SELECT name FROM t WHERE id IN (1, 2, 3)").unwrap();
        match q2.core.where_clause.unwrap() {
            Expr::InList { list, negated, .. } => {
                assert_eq!(list.len(), 3);
                assert!(!negated);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn between_and_like() {
        let q = parse_select(
            "SELECT name FROM t WHERE age BETWEEN 10 AND 20 AND name LIKE '%Ha%'",
        )
        .unwrap();
        let w = q.core.where_clause.unwrap();
        match w {
            Expr::Binary { op: BinOp::And, lhs, rhs } => {
                assert!(matches!(*lhs, Expr::Between { negated: false, .. }));
                assert!(matches!(*rhs, Expr::Like { negated: false, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        let q2 = parse_select("SELECT a FROM t WHERE a NOT LIKE 'x%'").unwrap();
        assert!(matches!(q2.core.where_clause.unwrap(), Expr::Like { negated: true, .. }));
    }

    #[test]
    fn compound_ops() {
        let q = parse_select("SELECT a FROM t UNION SELECT b FROM u INTERSECT SELECT c FROM v")
            .unwrap();
        let (op, rhs) = q.compound.unwrap();
        assert_eq!(op, CompoundOp::Union);
        let (op2, _) = rhs.compound.clone().unwrap();
        assert_eq!(op2, CompoundOp::Intersect);
        assert!(!q.core.items.is_empty());
    }

    #[test]
    fn except_query() {
        let q = parse_select("SELECT a FROM t EXCEPT SELECT a FROM u").unwrap();
        assert_eq!(q.compound.as_ref().unwrap().0, CompoundOp::Except);
        assert!(!q.is_ordered());
    }

    #[test]
    fn implicit_alias() {
        let q = parse_select("SELECT T1.a FROM t T1 WHERE T1.a = 1").unwrap();
        assert_eq!(q.core.from.unwrap().alias.as_deref(), Some("T1"));
    }

    #[test]
    fn or_precedence() {
        // a = 1 OR b = 2 AND c = 3  →  OR(a=1, AND(b=2, c=3))
        let q = parse_select("SELECT x FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        match q.core.where_clause.unwrap() {
            Expr::Binary { op: BinOp::Or, rhs, .. } => {
                assert!(matches!(*rhs, Expr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parenthesized_boolean() {
        let q = parse_select("SELECT x FROM t WHERE (a = 1 OR b = 2) AND c = 3").unwrap();
        match q.core.where_clause.unwrap() {
            Expr::Binary { op: BinOp::And, lhs, .. } => {
                assert!(matches!(*lhs, Expr::Binary { op: BinOp::Or, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn star_variants() {
        let q = parse_select("SELECT *, T1.*, count(*) FROM t AS T1").unwrap();
        assert!(matches!(&q.core.items[0].expr, Expr::Column(c) if c.is_star() && c.table.is_none()));
        assert!(
            matches!(&q.core.items[1].expr, Expr::Column(c) if c.is_star() && c.table.as_deref() == Some("T1"))
        );
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_select("SELECT").is_err());
        assert!(parse_select("SELECT a FROM").is_err());
        assert!(parse_select("SELECT a FROM t WHERE").is_err());
        assert!(parse_select("SELECT a FROM t LIMIT x").is_err());
        assert!(parse_select("SELECT a FROM t extra garbage ,").is_err());
        assert!(parse_select("FROM t SELECT a").is_err());
    }

    #[test]
    fn trailing_semicolon_ok() {
        assert!(parse_select("SELECT a FROM t;").is_ok());
    }

    #[test]
    fn keywords_case_insensitive() {
        let q = parse_select("select A from T where B like 'x%' order by A asc limit 1").unwrap();
        assert_eq!(q.limit, Some(1));
        assert_eq!(q.order_by.len(), 1);
    }
}
