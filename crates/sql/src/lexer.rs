//! SQL tokenizer.

use std::fmt;

/// A lexical token. Keywords are uppercased identifiers matched by the
/// parser; the lexer itself only distinguishes token classes.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (original spelling preserved).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Single-quoted string (unescaped contents).
    Str(String),
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `;`
    Semicolon,
}

impl Token {
    /// Whether this token is the identifier/keyword `kw` (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Lexing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes SQL text.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            b')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            b',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            b'.' => {
                // A dot starting a number (".5") is rare in SQL and unused by
                // our generator; treat '.' as a separator always.
                tokens.push(Token::Dot);
                i += 1;
            }
            b'*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            b';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            b'=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(LexError { message: "expected '=' after '!'".into(), offset: i });
                }
            }
            b'<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    tokens.push(Token::Le);
                    i += 2;
                }
                Some(b'>') => {
                    tokens.push(Token::Ne);
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            },
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            b'\'' => {
                let mut s = String::new();
                let start = i;
                i += 1;
                loop {
                    match bytes.get(i) {
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            // Consume one UTF-8 scalar value.
                            let rest = &input[i..];
                            let ch = rest.chars().next().expect("non-empty");
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                        None => {
                            return Err(LexError {
                                message: "unterminated string literal".into(),
                                offset: start,
                            })
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            b'"' => {
                // Double-quoted identifiers / strings: Spider gold queries use
                // them for string literals, so accept them as strings.
                let mut s = String::new();
                let start = i;
                i += 1;
                loop {
                    match bytes.get(i) {
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            let rest = &input[i..];
                            let ch = rest.chars().next().expect("non-empty");
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                        None => {
                            return Err(LexError {
                                message: "unterminated quoted name".into(),
                                offset: start,
                            })
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && i + 1 < bytes.len()
                    && bytes[i + 1].is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                if is_float {
                    let f: f64 = text.parse().map_err(|_| LexError {
                        message: format!("bad float literal '{text}'"),
                        offset: start,
                    })?;
                    tokens.push(Token::Float(f));
                } else {
                    let n: i64 = text.parse().map_err(|_| LexError {
                        message: format!("bad integer literal '{text}'"),
                        offset: start,
                    })?;
                    tokens.push(Token::Int(n));
                }
            }
            b'-' => {
                // Negative numeric literal (the parser never needs binary minus).
                if bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
                    let start = i;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let mut is_float = false;
                    if i < bytes.len()
                        && bytes[i] == b'.'
                        && i + 1 < bytes.len()
                        && bytes[i + 1].is_ascii_digit()
                    {
                        is_float = true;
                        i += 1;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                    let text = &input[start..i];
                    if is_float {
                        tokens.push(Token::Float(text.parse().unwrap()));
                    } else {
                        tokens.push(Token::Int(text.parse().unwrap()));
                    }
                } else {
                    return Err(LexError {
                        message: "unexpected '-' (arithmetic is not supported)".into(),
                        offset: i,
                    });
                }
            }
            _ if b.is_ascii_alphabetic() || b == b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_string()));
            }
            _ => {
                return Err(LexError {
                    message: format!("unexpected character '{}'", &input[i..].chars().next().unwrap()),
                    offset: i,
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_query() {
        let toks = tokenize("SELECT a, b FROM t WHERE x >= 2.5").unwrap();
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert!(toks[0].is_kw("select"));
        assert_eq!(toks[2], Token::Comma);
        assert_eq!(toks[8], Token::Ge);
        assert_eq!(toks[9], Token::Float(2.5));
    }

    #[test]
    fn strings_with_escapes() {
        let toks = tokenize("'O''Brien' \"JFK\"").unwrap();
        assert_eq!(toks, vec![Token::Str("O'Brien".into()), Token::Str("JFK".into())]);
    }

    #[test]
    fn operators() {
        let toks = tokenize("= != <> < <= > >= ( ) . * ;").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Eq,
                Token::Ne,
                Token::Ne,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::LParen,
                Token::RParen,
                Token::Dot,
                Token::Star,
                Token::Semicolon,
            ]
        );
    }

    #[test]
    fn numbers() {
        let toks = tokenize("42 3.25 -7 -0.5").unwrap();
        assert_eq!(
            toks,
            vec![Token::Int(42), Token::Float(3.25), Token::Int(-7), Token::Float(-0.5)]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        let err = tokenize("SELECT 'oops").unwrap_err();
        assert!(err.message.contains("unterminated"));
        assert_eq!(err.offset, 7);
    }

    #[test]
    fn unicode_in_strings() {
        let toks = tokenize("'Zürich'").unwrap();
        assert_eq!(toks, vec![Token::Str("Zürich".into())]);
    }

    #[test]
    fn bad_char_errors() {
        assert!(tokenize("SELECT #").is_err());
        assert!(tokenize("a ! b").is_err());
    }
}
