//! Property test: arbitrary well-formed ASTs print to SQL that reparses to
//! the identical AST.

use proptest::prelude::*;
use valuenet_sql::{
    parse_select, AggFunc, BinOp, ColumnRef, CompoundOp, Expr, Join, Literal, OrderItem,
    SelectCore, SelectItem, SelectStmt, TableRef,
};

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_filter("not reserved", |s| {
        !matches!(
            s.as_str(),
            "select" | "distinct" | "from" | "join" | "inner" | "on" | "where" | "and" | "or"
                | "not" | "in" | "between" | "like" | "group" | "by" | "having" | "order"
                | "asc" | "desc" | "limit" | "union" | "all" | "intersect" | "except" | "as"
                | "null" | "count" | "sum" | "avg" | "min" | "max" | "is"
        )
    })
}

fn literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        any::<i32>().prop_map(|i| Literal::Int(i as i64)),
        (-1000i32..1000, 1u32..100).prop_map(|(a, b)| Literal::Float(a as f64 + b as f64 / 100.0)),
        "[a-zA-Z0-9 '%_-]{0,12}".prop_map(Literal::Text),
        Just(Literal::Null),
    ]
}

fn column_ref() -> impl Strategy<Value = ColumnRef> {
    (proptest::option::of(ident()), ident())
        .prop_map(|(t, c)| ColumnRef { table: t, column: c })
}

fn agg() -> impl Strategy<Value = Expr> {
    (
        proptest::sample::select(vec![
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
        ]),
        any::<bool>(),
        column_ref(),
    )
        .prop_map(|(func, distinct, c)| Expr::Agg {
            func,
            // DISTINCT * is not printable/parsable; restrict.
            distinct: distinct && c.column != "*",
            arg: Box::new(Expr::Column(c)),
        })
}

fn value_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        literal().prop_map(Expr::Lit),
        column_ref().prop_map(Expr::Column),
        agg(),
    ]
}

fn comparison() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (
            proptest::sample::select(vec![
                BinOp::Eq,
                BinOp::Ne,
                BinOp::Lt,
                BinOp::Le,
                BinOp::Gt,
                BinOp::Ge
            ]),
            column_ref(),
            value_expr()
        )
            .prop_map(|(op, l, r)| Expr::binary(op, Expr::Column(l), r)),
        (column_ref(), literal(), literal(), any::<bool>()).prop_map(|(c, lo, hi, neg)| {
            Expr::Between {
                expr: Box::new(Expr::Column(c)),
                low: Box::new(Expr::Lit(lo)),
                high: Box::new(Expr::Lit(hi)),
                negated: neg,
            }
        }),
        (column_ref(), "[a-z%_]{1,8}", any::<bool>()).prop_map(|(c, pat, neg)| Expr::Like {
            expr: Box::new(Expr::Column(c)),
            pattern: Box::new(Expr::Lit(Literal::Text(pat))),
            negated: neg,
        }),
        (column_ref(), prop::collection::vec(literal(), 1..4), any::<bool>()).prop_map(
            |(c, list, neg)| Expr::InList {
                expr: Box::new(Expr::Column(c)),
                list: list.into_iter().map(Expr::Lit).collect(),
                negated: neg,
            }
        ),
    ]
}

fn predicate() -> impl Strategy<Value = Expr> {
    comparison().prop_recursive(2, 8, 2, |inner| {
        (
            proptest::sample::select(vec![BinOp::And, BinOp::Or]),
            inner.clone(),
            inner,
        )
            .prop_map(|(op, a, b)| Expr::binary(op, a, b))
    })
}

fn select_core() -> impl Strategy<Value = SelectCore> {
    (
        any::<bool>(),
        prop::collection::vec(value_expr(), 1..4),
        ident(),
        proptest::option::of((ident(), proptest::option::of(comparison()))),
        proptest::option::of(predicate()),
        prop::collection::vec(column_ref().prop_map(Expr::Column), 0..3),
        proptest::option::of(comparison()),
    )
        .prop_map(|(distinct, items, from, join, where_clause, group_by, having)| SelectCore {
            distinct,
            items: items.into_iter().map(|e| SelectItem { expr: e, alias: None }).collect(),
            from: Some(TableRef { name: from, alias: Some("T1".into()) }),
            joins: join
                .map(|(name, on)| {
                    vec![Join { table: TableRef { name, alias: Some("T2".into()) }, on }]
                })
                .unwrap_or_default(),
            where_clause,
            group_by,
            having,
        })
}

fn select_stmt() -> impl Strategy<Value = SelectStmt> {
    (
        select_core(),
        prop::collection::vec((value_expr(), any::<bool>()), 0..3),
        proptest::option::of(0u64..100),
        proptest::option::of((
            proptest::sample::select(vec![
                CompoundOp::Union,
                CompoundOp::UnionAll,
                CompoundOp::Intersect,
                CompoundOp::Except,
            ]),
            select_core(),
        )),
    )
        .prop_map(|(core, order, limit, compound)| SelectStmt {
            core,
            order_by: order
                .into_iter()
                .map(|(e, desc)| OrderItem { expr: e, desc })
                .collect(),
            limit,
            compound: compound
                .map(|(op, rhs)| (op, Box::new(SelectStmt::simple(rhs)))),
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, max_shrink_iters: 256, ..ProptestConfig::default() })]

    #[test]
    fn print_parse_round_trip(stmt in select_stmt()) {
        let text = stmt.to_string();
        let reparsed = parse_select(&text)
            .unwrap_or_else(|e| panic!("printed SQL failed to parse: {text}\n{e}"));
        prop_assert_eq!(reparsed, stmt, "round trip changed the AST for: {}", text);
    }
}
