//! SemQL → SQL lowering tests: the generated SQL must parse, execute and
//! return the hand-computed results; SQL → SemQL must round-trip.

use valuenet_exec::execute;
use valuenet_schema::{ColumnId, ColumnType, DbSchema, SchemaBuilder, SchemaGraph, TableId};
use valuenet_semql::{
    actions_to_ast, ast_to_actions, semql_from_sql, to_sql, Agg, CmpOp, Filter, LowerError,
    Order, QueryR, ResolvedValue, Select, SemQl, Superlative, ValueRef,
};
use valuenet_sql::{parse_select, AggFunc};
use valuenet_storage::Database;

fn pets_schema() -> DbSchema {
    SchemaBuilder::new("pets")
        .table(
            "student",
            &[
                ("stu_id", ColumnType::Number),
                ("name", ColumnType::Text),
                ("age", ColumnType::Number),
                ("home_country", ColumnType::Text),
            ],
        )
        .primary_key("student", "stu_id")
        .table("has_pet", &[("stu_id", ColumnType::Number), ("pet_id", ColumnType::Number)])
        .table(
            "pet",
            &[
                ("pet_id", ColumnType::Number),
                ("pet_type", ColumnType::Text),
                ("weight", ColumnType::Number),
            ],
        )
        .primary_key("pet", "pet_id")
        .foreign_key("has_pet", "stu_id", "student", "stu_id")
        .foreign_key("has_pet", "pet_id", "pet", "pet_id")
        .build()
}

fn pets_db() -> Database {
    let schema = pets_schema();
    let mut db = Database::new(schema);
    let student = db.schema().table_by_name("student").unwrap();
    let has_pet = db.schema().table_by_name("has_pet").unwrap();
    let pet = db.schema().table_by_name("pet").unwrap();
    db.insert(student, vec![1.into(), "Alice".into(), 21.into(), "France".into()]);
    db.insert(student, vec![2.into(), "Bob".into(), 19.into(), "France".into()]);
    db.insert(student, vec![3.into(), "Carol".into(), 25.into(), "Germany".into()]);
    db.insert(pet, vec![1.into(), "dog".into(), 12.0.into()]);
    db.insert(pet, vec![2.into(), "cat".into(), 4.5.into()]);
    db.insert(has_pet, vec![1.into(), 1.into()]);
    db.insert(has_pet, vec![1.into(), 2.into()]);
    db.insert(has_pet, vec![3.into(), 1.into()]);
    db.rebuild_index();
    db
}

/// Column helper by (table, column) name.
fn col(schema: &DbSchema, table: &str, column: &str) -> (ColumnId, TableId) {
    let t = schema.table_by_name(table).unwrap();
    (schema.column_by_name(t, column).unwrap(), t)
}

#[test]
fn running_example_lowers_and_executes() {
    // "How many pets are owned by French students that are older than 20?"
    let schema = pets_schema();
    let graph = SchemaGraph::new(&schema);
    let student = schema.table_by_name("student").unwrap();
    let pet = schema.table_by_name("pet").unwrap();
    let (country, _) = col(&schema, "student", "home_country");
    let (age, _) = col(&schema, "student", "age");

    // count(pet.*) with filters on student: the join tree must pull in
    // has_pet as a bridge.
    let tree = SemQl::Single(Box::new(QueryR {
        select: Select::new(vec![Agg::count_star(pet)]),
        order: None,
        superlative: None,
        filter: Some(Filter::And(
            Box::new(Filter::Cmp {
                op: CmpOp::Eq,
                agg: Agg::plain(country, student),
                value: ValueRef(0),
            }),
            Box::new(Filter::Cmp {
                op: CmpOp::Gt,
                agg: Agg::plain(age, student),
                value: ValueRef(1),
            }),
        )),
    }));
    let values = vec![ResolvedValue::new("France"), ResolvedValue::new("20")];
    let sql = to_sql(&tree, &schema, &graph, &values).unwrap();
    let text = sql.to_string();
    assert!(text.contains("JOIN"), "bridge table missing: {text}");
    assert!(text.contains("ON"), "ON clause missing: {text}");
    assert!(text.contains("'France'"), "text value not quoted: {text}");
    assert!(text.contains("> 20"), "numeric value quoted: {text}");

    // The printed SQL must reparse to the same AST.
    assert_eq!(parse_select(&text).unwrap(), sql);

    // And execute to the right answer: Alice (France, 21) owns 2 pets,
    // Carol is German, Bob is 19. → 2.
    let db = pets_db();
    let rs = execute(&db, &sql).unwrap();
    assert_eq!(rs.rows[0][0].as_number(), Some(2.0));
}

#[test]
fn superlative_lowers_to_order_limit() {
    let schema = pets_schema();
    let graph = SchemaGraph::new(&schema);
    let (ptype, pet) = col(&schema, "pet", "pet_type");
    let (weight, _) = col(&schema, "pet", "weight");
    let tree = SemQl::Single(Box::new(QueryR {
        select: Select::new(vec![Agg::plain(ptype, pet)]),
        order: None,
        superlative: Some(Superlative {
            most: true,
            limit: ValueRef(0),
            agg: Agg::plain(weight, pet),
        }),
        filter: None,
    }));
    let sql = to_sql(&tree, &schema, &graph, &[ResolvedValue::new("1")]).unwrap();
    let text = sql.to_string();
    assert!(text.contains("ORDER BY"), "{text}");
    assert!(text.contains("DESC"), "{text}");
    assert!(text.ends_with("LIMIT 1"), "{text}");
    let db = pets_db();
    let rs = execute(&db, &sql).unwrap();
    assert_eq!(rs.rows[0][0].to_string(), "dog");
}

#[test]
fn non_numeric_limit_falls_back_to_one() {
    let schema = pets_schema();
    let graph = SchemaGraph::new(&schema);
    let (weight, pet) = col(&schema, "pet", "weight");
    let tree = SemQl::Single(Box::new(QueryR {
        select: Select::new(vec![Agg::plain(weight, pet)]),
        order: None,
        superlative: Some(Superlative {
            most: false,
            limit: ValueRef(0),
            agg: Agg::plain(weight, pet),
        }),
        filter: None,
    }));
    let sql = to_sql(&tree, &schema, &graph, &[ResolvedValue::new("lots")]).unwrap();
    assert_eq!(sql.limit, Some(1));
}

#[test]
fn group_by_inferred_for_mixed_projection() {
    // "How many pets does each student own?" →
    // SELECT name, count(*) ... GROUP BY name
    let schema = pets_schema();
    let graph = SchemaGraph::new(&schema);
    let (name, student) = col(&schema, "student", "name");
    let has_pet = schema.table_by_name("has_pet").unwrap();
    let tree = SemQl::Single(Box::new(QueryR {
        select: Select::new(vec![Agg::plain(name, student), Agg::count_star(has_pet)]),
        order: None,
        superlative: None,
        filter: None,
    }));
    let sql = to_sql(&tree, &schema, &graph, &[]).unwrap();
    let text = sql.to_string();
    assert!(text.contains("GROUP BY"), "{text}");
    let db = pets_db();
    let rs = execute(&db, &sql).unwrap();
    // Alice owns 2, Carol owns 1 (only students in has_pet).
    assert_eq!(rs.rows.len(), 2);
}

#[test]
fn aggregate_filter_becomes_having() {
    // Students owning more than one pet.
    let schema = pets_schema();
    let graph = SchemaGraph::new(&schema);
    let (name, student) = col(&schema, "student", "name");
    let has_pet = schema.table_by_name("has_pet").unwrap();
    let tree = SemQl::Single(Box::new(QueryR {
        select: Select::new(vec![Agg::plain(name, student)]),
        order: None,
        superlative: None,
        filter: Some(Filter::Cmp {
            op: CmpOp::Gt,
            agg: Agg::count_star(has_pet),
            value: ValueRef(0),
        }),
    }));
    let sql = to_sql(&tree, &schema, &graph, &[ResolvedValue::new("1")]).unwrap();
    let text = sql.to_string();
    assert!(text.contains("HAVING"), "{text}");
    assert!(text.contains("GROUP BY"), "{text}");
    let db = pets_db();
    let rs = execute(&db, &sql).unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0].to_string(), "Alice");
}

#[test]
fn like_value_gets_wildcards() {
    let schema = pets_schema();
    let graph = SchemaGraph::new(&schema);
    let (name, student) = col(&schema, "student", "name");
    let tree = SemQl::Single(Box::new(QueryR {
        select: Select::new(vec![Agg::plain(name, student)]),
        order: None,
        superlative: None,
        filter: Some(Filter::Like {
            agg: Agg::plain(name, student),
            value: ValueRef(0),
            negated: false,
        }),
    }));
    let sql = to_sql(&tree, &schema, &graph, &[ResolvedValue::new("li")]).unwrap();
    assert!(sql.to_string().contains("'%li%'"), "{sql}");
    // Already-wildcarded values pass through unchanged.
    let sql2 = to_sql(&tree, &schema, &graph, &[ResolvedValue::new("li%")]).unwrap();
    assert!(sql2.to_string().contains("'li%'"), "{sql2}");
}

#[test]
fn nested_query_lowering() {
    // Students older than the average age.
    let schema = pets_schema();
    let graph = SchemaGraph::new(&schema);
    let (name, student) = col(&schema, "student", "name");
    let (age, _) = col(&schema, "student", "age");
    let tree = SemQl::Single(Box::new(QueryR {
        select: Select::new(vec![Agg::plain(name, student)]),
        order: None,
        superlative: None,
        filter: Some(Filter::CmpNested {
            op: CmpOp::Gt,
            agg: Agg::plain(age, student),
            query: Box::new(QueryR::select_only(Select::new(vec![Agg::with(
                AggFunc::Avg,
                age,
                student,
            )]))),
        }),
    }));
    let sql = to_sql(&tree, &schema, &graph, &[]).unwrap();
    let text = sql.to_string();
    assert!(text.contains("(SELECT avg("), "{text}");
    let db = pets_db();
    let rs = execute(&db, &sql).unwrap();
    // avg age = (21+19+25)/3 = 21.67 → Carol only... wait, 25 > 21.67,
    // 21 < 21.67, 19 < 21.67 → Carol.
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0].to_string(), "Carol");
}

#[test]
fn except_compound_lowers() {
    // Students without pets: all names EXCEPT pet-owner names.
    let schema = pets_schema();
    let graph = SchemaGraph::new(&schema);
    let (name, student) = col(&schema, "student", "name");
    let has_pet = schema.table_by_name("has_pet").unwrap();
    let (hp_sid, _) = col(&schema, "has_pet", "stu_id");
    let (sid, _) = col(&schema, "student", "stu_id");
    let left = QueryR::select_only(Select::new(vec![Agg::plain(name, student)]));
    let right = QueryR {
        select: Select::new(vec![Agg::plain(name, student)]),
        order: None,
        superlative: None,
        filter: Some(Filter::In {
            agg: Agg::plain(sid, student),
            query: Box::new(QueryR::select_only(Select::new(vec![Agg::plain(
                hp_sid, has_pet,
            )]))),
            negated: false,
        }),
    };
    let tree = SemQl::Except(Box::new(left), Box::new(right));
    let sql = to_sql(&tree, &schema, &graph, &[]).unwrap();
    let db = pets_db();
    let rs = execute(&db, &sql).unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0].to_string(), "Bob");
}

#[test]
fn missing_value_errors() {
    let schema = pets_schema();
    let graph = SchemaGraph::new(&schema);
    let (age, student) = col(&schema, "student", "age");
    let tree = SemQl::Single(Box::new(QueryR {
        select: Select::new(vec![Agg::plain(age, student)]),
        order: None,
        superlative: None,
        filter: Some(Filter::Cmp {
            op: CmpOp::Gt,
            agg: Agg::plain(age, student),
            value: ValueRef(3),
        }),
    }));
    assert_eq!(to_sql(&tree, &schema, &graph, &[]), Err(LowerError::MissingValue(3)));
}

#[test]
fn boolean_value_formatting() {
    let schema = SchemaBuilder::new("b")
        .table("lang", &[("name", ColumnType::Text), ("is_official", ColumnType::Boolean)])
        .build();
    let graph = SchemaGraph::new(&schema);
    let lang = schema.table_by_name("lang").unwrap();
    let (name, _) = col(&schema, "lang", "name");
    let (official, _) = col(&schema, "lang", "is_official");
    let tree = SemQl::Single(Box::new(QueryR {
        select: Select::new(vec![Agg::plain(name, lang)]),
        order: None,
        superlative: None,
        filter: Some(Filter::Cmp {
            op: CmpOp::Eq,
            agg: Agg::plain(official, lang),
            value: ValueRef(0),
        }),
    }));
    let sql = to_sql(&tree, &schema, &graph, &[ResolvedValue::new("True")]).unwrap();
    assert!(sql.to_string().contains("= 1"), "{sql}");
    let sql = to_sql(&tree, &schema, &graph, &[ResolvedValue::new("no")]).unwrap();
    assert!(sql.to_string().contains("= 0"), "{sql}");
}

#[test]
fn sql_semql_round_trip_through_lowering() {
    // SemQL → SQL → SemQL must preserve the tree (modulo value indices,
    // which the importer re-numbers identically for canonical trees).
    let schema = pets_schema();
    let graph = SchemaGraph::new(&schema);
    let (country, student) = col(&schema, "student", "home_country");
    let (age, _) = col(&schema, "student", "age");
    let (name, _) = col(&schema, "student", "name");
    let tree = SemQl::Single(Box::new(QueryR {
        select: Select::new(vec![Agg::plain(name, student)]),
        order: Some(Order { desc: true, agg: Agg::plain(age, student) }),
        superlative: None,
        filter: Some(Filter::And(
            Box::new(Filter::Cmp {
                op: CmpOp::Eq,
                agg: Agg::plain(country, student),
                value: ValueRef(0),
            }),
            Box::new(Filter::Between {
                agg: Agg::plain(age, student),
                low: ValueRef(1),
                high: ValueRef(2),
            }),
        )),
    }));
    let values = vec![
        ResolvedValue::new("France"),
        ResolvedValue::new("18"),
        ResolvedValue::new("25"),
    ];
    let sql = to_sql(&tree, &schema, &graph, &values).unwrap();
    let imported = semql_from_sql(&schema, &sql).unwrap();
    assert_eq!(imported.semql, tree);
    assert_eq!(imported.values, vec!["France", "18", "25"]);

    // The action encoding must also survive the full trip.
    let actions = ast_to_actions(&imported.semql);
    assert_eq!(actions_to_ast(&actions).unwrap(), tree);
}

#[test]
fn import_superlative_and_nested() {
    let schema = pets_schema();
    let sql = parse_select(
        "SELECT T1.pet_type FROM pet AS T1 WHERE T1.weight > \
         (SELECT avg(T1.weight) FROM pet AS T1) ORDER BY T1.weight DESC LIMIT 2",
    )
    .unwrap();
    let imported = semql_from_sql(&schema, &sql).unwrap();
    let q = imported.semql.main_query();
    let sup = q.superlative.as_ref().expect("superlative");
    assert!(sup.most);
    assert_eq!(imported.values[sup.limit.0], "2");
    assert!(matches!(q.filter, Some(Filter::CmpNested { op: CmpOp::Gt, .. })));
}

#[test]
fn import_rejects_unsupported() {
    let schema = pets_schema();
    let sql = parse_select("SELECT name FROM student LIMIT 3").unwrap();
    assert!(semql_from_sql(&schema, &sql).is_err(), "LIMIT without ORDER BY");
    let sql = parse_select("SELECT name FROM student WHERE age IN (1, 2)").unwrap();
    assert!(semql_from_sql(&schema, &sql).is_err(), "IN list is outside the grammar");
}
