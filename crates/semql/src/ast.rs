//! Typed SemQL 2.0 abstract syntax tree.

use serde::{Deserialize, Serialize};
use valuenet_schema::{ColumnId, TableId};
use valuenet_sql::AggFunc;

/// Index into the value-candidate list attached to a query (the `V`
/// nonterminal — the paper's extension over SemQL 1.0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ValueRef(pub usize);

/// The root `Z`: an optional set operation over one or two `R` queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SemQl {
    /// `intersect R R`
    Intersect(Box<QueryR>, Box<QueryR>),
    /// `union R R`
    Union(Box<QueryR>, Box<QueryR>),
    /// `except R R`
    Except(Box<QueryR>, Box<QueryR>),
    /// plain `R`
    Single(Box<QueryR>),
}

impl SemQl {
    /// The left/only query.
    pub fn main_query(&self) -> &QueryR {
        match self {
            SemQl::Intersect(q, _) | SemQl::Union(q, _) | SemQl::Except(q, _) => q,
            SemQl::Single(q) => q,
        }
    }

    /// All value references used anywhere in the tree, in decoding order.
    pub fn value_refs(&self) -> Vec<ValueRef> {
        let mut out = Vec::new();
        match self {
            SemQl::Intersect(a, b) | SemQl::Union(a, b) | SemQl::Except(a, b) => {
                a.collect_value_refs(&mut out);
                b.collect_value_refs(&mut out);
            }
            SemQl::Single(q) => q.collect_value_refs(&mut out),
        }
        out
    }
}

/// An `R` query: a Select plus at most one of Order/Superlative and an
/// optional Filter (the six `R` productions).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryR {
    /// The projection.
    pub select: Select,
    /// `asc A` / `desc A`, mutually exclusive with `superlative`.
    pub order: Option<Order>,
    /// `most V A` / `least V A`, mutually exclusive with `order`.
    pub superlative: Option<Superlative>,
    /// The filter tree.
    pub filter: Option<Filter>,
}

impl QueryR {
    /// A bare projection query.
    pub fn select_only(select: Select) -> Self {
        QueryR { select, order: None, superlative: None, filter: None }
    }

    /// Tables referenced directly by this query (not by nested queries).
    pub fn own_tables(&self) -> Vec<TableId> {
        let mut out = Vec::new();
        let mut push = |t: TableId| {
            if !out.contains(&t) {
                out.push(t);
            }
        };
        for a in &self.select.aggs {
            push(a.table);
        }
        if let Some(o) = &self.order {
            push(o.agg.table);
        }
        if let Some(s) = &self.superlative {
            push(s.agg.table);
        }
        if let Some(f) = &self.filter {
            f.collect_tables(&mut out);
        }
        out
    }

    fn collect_value_refs(&self, out: &mut Vec<ValueRef>) {
        if let Some(s) = &self.superlative {
            out.push(s.limit);
        }
        if let Some(f) = &self.filter {
            f.collect_value_refs(out);
        }
    }

    /// Whether this query (including nested ones) uses any value.
    pub fn uses_values(&self) -> bool {
        let mut refs = Vec::new();
        self.collect_value_refs(&mut refs);
        !refs.is_empty()
    }
}

/// `Select ::= distinct N | N` with `N` being 1–5 aggregated columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Select {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// The projected `A`s (1..=5).
    pub aggs: Vec<Agg>,
}

impl Select {
    /// A non-distinct projection.
    pub fn new(aggs: Vec<Agg>) -> Self {
        assert!(
            (1..=5).contains(&aggs.len()),
            "Select supports 1..=5 projections, got {}",
            aggs.len()
        );
        Select { distinct: false, aggs }
    }
}

/// `Order ::= asc A | desc A` — ORDER BY without LIMIT.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Order {
    /// Descending?
    pub desc: bool,
    /// Sort key.
    pub agg: Agg,
}

/// `Superlative ::= most V A | least V A` — ORDER BY + LIMIT `V`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Superlative {
    /// `most` (descending) or `least` (ascending)?
    pub most: bool,
    /// The LIMIT count (a value candidate, usually "1" or e.g. "3").
    pub limit: ValueRef,
    /// Sort key.
    pub agg: Agg,
}

/// Comparison operators usable in filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The corresponding SQL binary operator.
    pub fn to_sql(self) -> valuenet_sql::BinOp {
        use valuenet_sql::BinOp;
        match self {
            CmpOp::Eq => BinOp::Eq,
            CmpOp::Ne => BinOp::Ne,
            CmpOp::Lt => BinOp::Lt,
            CmpOp::Gt => BinOp::Gt,
            CmpOp::Le => BinOp::Le,
            CmpOp::Ge => BinOp::Ge,
        }
    }
}

/// The `Filter` nonterminal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Filter {
    /// `and Filter Filter`
    And(Box<Filter>, Box<Filter>),
    /// `or Filter Filter`
    Or(Box<Filter>, Box<Filter>),
    /// `op A V` — comparison against a value candidate.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left-hand aggregated column.
        agg: Agg,
        /// Right-hand value.
        value: ValueRef,
    },
    /// `op A R` — comparison against a nested query.
    CmpNested {
        /// Operator.
        op: CmpOp,
        /// Left-hand aggregated column.
        agg: Agg,
        /// Nested query producing the comparison value.
        query: Box<QueryR>,
    },
    /// `between A V V`.
    Between {
        /// Tested aggregated column.
        agg: Agg,
        /// Lower bound.
        low: ValueRef,
        /// Upper bound.
        high: ValueRef,
    },
    /// `like A V` / `not_like A V`.
    Like {
        /// Tested column.
        agg: Agg,
        /// Pattern source value.
        value: ValueRef,
        /// Negated?
        negated: bool,
    },
    /// `in A R` / `not_in A R`.
    In {
        /// Tested column.
        agg: Agg,
        /// Nested query producing the candidate set.
        query: Box<QueryR>,
        /// Negated?
        negated: bool,
    },
}

impl Filter {
    fn collect_tables(&self, out: &mut Vec<TableId>) {
        let push = |t: TableId, out: &mut Vec<TableId>| {
            if !out.contains(&t) {
                out.push(t);
            }
        };
        match self {
            Filter::And(a, b) | Filter::Or(a, b) => {
                a.collect_tables(out);
                b.collect_tables(out);
            }
            Filter::Cmp { agg, .. }
            | Filter::CmpNested { agg, .. }
            | Filter::Between { agg, .. }
            | Filter::Like { agg, .. }
            | Filter::In { agg, .. } => push(agg.table, out),
        }
    }

    fn collect_value_refs(&self, out: &mut Vec<ValueRef>) {
        match self {
            Filter::And(a, b) | Filter::Or(a, b) => {
                a.collect_value_refs(out);
                b.collect_value_refs(out);
            }
            Filter::Cmp { value, .. } => out.push(*value),
            Filter::Between { low, high, .. } => {
                out.push(*low);
                out.push(*high);
            }
            Filter::Like { value, .. } => out.push(*value),
            Filter::CmpNested { query, .. } | Filter::In { query, .. } => {
                query.collect_value_refs(out);
            }
        }
    }

    /// Whether the filter tree contains any aggregate function application
    /// (those conditions become HAVING clauses).
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Filter::And(a, b) | Filter::Or(a, b) => {
                a.contains_aggregate() || b.contains_aggregate()
            }
            Filter::Cmp { agg, .. }
            | Filter::CmpNested { agg, .. }
            | Filter::Between { agg, .. }
            | Filter::Like { agg, .. }
            | Filter::In { agg, .. } => agg.func.is_some(),
        }
    }
}

/// `A ::= [agg] C T` — a column of a table, optionally aggregated. The `*`
/// pseudo-column still names a table (`count(*)` is attributed to the table
/// being counted, as in Spider's annotation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Agg {
    /// The aggregate function, `None` for a plain column.
    pub func: Option<AggFunc>,
    /// The column (may be [`ColumnId::STAR`]).
    pub column: ColumnId,
    /// The table the column belongs to.
    pub table: TableId,
}

impl Agg {
    /// A plain (unaggregated) column.
    pub fn plain(column: ColumnId, table: TableId) -> Self {
        Agg { func: None, column, table }
    }

    /// An aggregated column.
    pub fn with(func: AggFunc, column: ColumnId, table: TableId) -> Self {
        Agg { func: Some(func), column, table }
    }

    /// `count(*)` over a table.
    pub fn count_star(table: TableId) -> Self {
        Agg { func: Some(AggFunc::Count), column: ColumnId::STAR, table }
    }
}
