//! SQL → SemQL import (the training-data direction).
//!
//! The original system trains on Spider's gold SQL, which must first be
//! converted into SemQL action sequences. This importer handles the SQL
//! dialect this workspace produces (which mirrors Spider's query shapes):
//! aliased inner joins, WHERE/HAVING conjunctions over comparisons, BETWEEN,
//! LIKE, IN (subquery), nested scalar subqueries, ORDER BY (+ LIMIT →
//! Superlative) and one level of UNION/INTERSECT/EXCEPT. GROUP BY clauses
//! are dropped — SemQL re-infers them during lowering.

use crate::ast::*;
use std::fmt;
use valuenet_schema::{ColumnId, DbSchema, TableId};
use valuenet_sql::{BinOp, ColumnRef, CompoundOp, Expr, Literal, SelectStmt};

/// Import failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImportError {
    /// SQL construct outside the SemQL grammar.
    Unsupported(String),
    /// Unresolvable table name.
    UnknownTable(String),
    /// Unresolvable column name.
    UnknownColumn(String),
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImportError::Unsupported(s) => write!(f, "unsupported SQL construct: {s}"),
            ImportError::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            ImportError::UnknownColumn(c) => write!(f, "unknown column '{c}'"),
        }
    }
}

impl std::error::Error for ImportError {}

/// A converted query plus the literal values it references, in `ValueRef`
/// order (so `values[v.0]` is the text of value `v`).
#[derive(Debug, Clone)]
pub struct ImportResult {
    /// The SemQL tree.
    pub semql: SemQl,
    /// Extracted literal texts.
    pub values: Vec<String>,
}

/// Converts a parsed SQL statement into SemQL.
pub fn semql_from_sql(schema: &DbSchema, stmt: &SelectStmt) -> Result<ImportResult, ImportError> {
    let mut values = Vec::new();
    let semql = match &stmt.compound {
        None => SemQl::Single(Box::new(import_query(schema, stmt, &mut values)?)),
        Some((op, rhs)) => {
            if rhs.compound.is_some() {
                return Err(ImportError::Unsupported("chained compound operators".into()));
            }
            let left = import_query(schema, stmt, &mut values)?;
            let right = import_query(schema, rhs, &mut values)?;
            match op {
                CompoundOp::Union | CompoundOp::UnionAll => {
                    SemQl::Union(Box::new(left), Box::new(right))
                }
                CompoundOp::Intersect => SemQl::Intersect(Box::new(left), Box::new(right)),
                CompoundOp::Except => SemQl::Except(Box::new(left), Box::new(right)),
            }
        }
    };
    Ok(ImportResult { semql, values })
}

struct Scope {
    /// `(effective name, table)` in FROM order.
    entries: Vec<(String, TableId)>,
}

impl Scope {
    fn resolve_table(&self, name: &str) -> Option<TableId> {
        self.entries
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|&(_, t)| t)
    }

    fn resolve_column(
        &self,
        schema: &DbSchema,
        c: &ColumnRef,
    ) -> Result<(ColumnId, TableId), ImportError> {
        match &c.table {
            Some(q) => {
                let t = self
                    .resolve_table(q)
                    .or_else(|| schema.table_by_name(q))
                    .ok_or_else(|| ImportError::UnknownTable(q.clone()))?;
                if c.is_star() {
                    return Ok((ColumnId::STAR, t));
                }
                let col = schema
                    .column_by_name(t, &c.column)
                    .ok_or_else(|| ImportError::UnknownColumn(format!("{q}.{}", c.column)))?;
                Ok((col, t))
            }
            None => {
                if c.is_star() {
                    // SQL does not say which table a bare `*` counts; SemQL
                    // does. Attribute it to the *last* joined table — for
                    // `A JOIN B ... HAVING count(*)` patterns the counted
                    // entity is the joined one, and without joins this is
                    // simply the FROM table.
                    let t = self
                        .entries
                        .last()
                        .map(|&(_, t)| t)
                        .ok_or_else(|| ImportError::Unsupported("* without FROM".into()))?;
                    return Ok((ColumnId::STAR, t));
                }
                for &(_, t) in &self.entries {
                    if let Some(col) = schema.column_by_name(t, &c.column) {
                        return Ok((col, t));
                    }
                }
                Err(ImportError::UnknownColumn(c.column.clone()))
            }
        }
    }
}

/// Imports one statement (ignoring its compound tail) as a `QueryR`.
fn import_query(
    schema: &DbSchema,
    stmt: &SelectStmt,
    values: &mut Vec<String>,
) -> Result<QueryR, ImportError> {
    let core = &stmt.core;
    let mut entries = Vec::new();
    if let Some(from) = &core.from {
        let t = schema
            .table_by_name(&from.name)
            .ok_or_else(|| ImportError::UnknownTable(from.name.clone()))?;
        entries.push((from.effective_name().to_string(), t));
        for j in &core.joins {
            let t = schema
                .table_by_name(&j.table.name)
                .ok_or_else(|| ImportError::UnknownTable(j.table.name.clone()))?;
            entries.push((j.table.effective_name().to_string(), t));
        }
    }
    let scope = Scope { entries };

    let mut aggs = Vec::with_capacity(core.items.len());
    for item in &core.items {
        aggs.push(expr_to_agg(schema, &scope, &item.expr)?);
    }
    if aggs.is_empty() || aggs.len() > 5 {
        return Err(ImportError::Unsupported(format!("{} projections", aggs.len())));
    }

    let mut q = QueryR {
        select: Select { distinct: core.distinct, aggs },
        order: None,
        superlative: None,
        filter: None,
    };

    // Order / Superlative come before filters so value indices match the
    // canonical action order (superlative V precedes filter Vs).
    if let Some(first) = stmt.order_by.first() {
        if stmt.order_by.len() > 1 {
            return Err(ImportError::Unsupported("multiple ORDER BY keys".into()));
        }
        let agg = expr_to_agg(schema, &scope, &first.expr)?;
        match stmt.limit {
            Some(l) => {
                values.push(l.to_string());
                q.superlative = Some(Superlative {
                    most: first.desc,
                    limit: ValueRef(values.len() - 1),
                    agg,
                });
            }
            None => q.order = Some(Order { desc: first.desc, agg }),
        }
    } else if stmt.limit.is_some() {
        return Err(ImportError::Unsupported("LIMIT without ORDER BY".into()));
    }

    let mut filters = Vec::new();
    if let Some(w) = &core.where_clause {
        filters.push(expr_to_filter(schema, &scope, w, values)?);
    }
    if let Some(h) = &core.having {
        filters.push(expr_to_filter(schema, &scope, h, values)?);
    }
    q.filter = filters.into_iter().reduce(|a, b| Filter::And(Box::new(a), Box::new(b)));
    Ok(q)
}

fn expr_to_agg(schema: &DbSchema, scope: &Scope, e: &Expr) -> Result<Agg, ImportError> {
    match e {
        Expr::Column(c) => {
            let (col, table) = scope.resolve_column(schema, c)?;
            Ok(Agg::plain(col, table))
        }
        Expr::Agg { func, arg, .. } => match arg.as_ref() {
            Expr::Column(c) => {
                let (col, table) = scope.resolve_column(schema, c)?;
                Ok(Agg::with(*func, col, table))
            }
            other => Err(ImportError::Unsupported(format!("aggregate argument {other}"))),
        },
        other => Err(ImportError::Unsupported(format!("projection {other}"))),
    }
}

fn literal_text(l: &Literal) -> Result<String, ImportError> {
    Ok(match l {
        Literal::Int(i) => i.to_string(),
        Literal::Float(f) => f.to_string(),
        Literal::Text(s) => s.clone(),
        Literal::Null => return Err(ImportError::Unsupported("NULL literal".into())),
    })
}

fn push_value(values: &mut Vec<String>, text: String) -> ValueRef {
    values.push(text);
    ValueRef(values.len() - 1)
}

fn expr_to_filter(
    schema: &DbSchema,
    scope: &Scope,
    e: &Expr,
    values: &mut Vec<String>,
) -> Result<Filter, ImportError> {
    match e {
        Expr::Binary { op: BinOp::And, lhs, rhs } => Ok(Filter::And(
            Box::new(expr_to_filter(schema, scope, lhs, values)?),
            Box::new(expr_to_filter(schema, scope, rhs, values)?),
        )),
        Expr::Binary { op: BinOp::Or, lhs, rhs } => Ok(Filter::Or(
            Box::new(expr_to_filter(schema, scope, lhs, values)?),
            Box::new(expr_to_filter(schema, scope, rhs, values)?),
        )),
        Expr::Binary { op, lhs, rhs } => {
            let cmp = match op {
                BinOp::Eq => CmpOp::Eq,
                BinOp::Ne => CmpOp::Ne,
                BinOp::Lt => CmpOp::Lt,
                BinOp::Le => CmpOp::Le,
                BinOp::Gt => CmpOp::Gt,
                BinOp::Ge => CmpOp::Ge,
                BinOp::And | BinOp::Or => unreachable!("handled above"),
            };
            let agg = expr_to_agg(schema, scope, lhs)?;
            match rhs.as_ref() {
                Expr::Lit(l) => {
                    let v = push_value(values, literal_text(l)?);
                    Ok(Filter::Cmp { op: cmp, agg, value: v })
                }
                Expr::Subquery(sub) => {
                    if sub.compound.is_some() {
                        return Err(ImportError::Unsupported("compound subquery".into()));
                    }
                    let query = Box::new(import_query(schema, sub, values)?);
                    Ok(Filter::CmpNested { op: cmp, agg, query })
                }
                other => Err(ImportError::Unsupported(format!("comparison rhs {other}"))),
            }
        }
        Expr::Between { expr, low, high, negated } => {
            if *negated {
                return Err(ImportError::Unsupported("NOT BETWEEN".into()));
            }
            let agg = expr_to_agg(schema, scope, expr)?;
            let (Expr::Lit(l), Expr::Lit(h)) = (low.as_ref(), high.as_ref()) else {
                return Err(ImportError::Unsupported("non-literal BETWEEN bounds".into()));
            };
            let low = push_value(values, literal_text(l)?);
            let high = push_value(values, literal_text(h)?);
            Ok(Filter::Between { agg, low, high })
        }
        Expr::Like { expr, pattern, negated } => {
            let agg = expr_to_agg(schema, scope, expr)?;
            let Expr::Lit(Literal::Text(p)) = pattern.as_ref() else {
                return Err(ImportError::Unsupported("non-text LIKE pattern".into()));
            };
            // Recover the core value from the wildcard pattern.
            let core = p.trim_matches('%').to_string();
            let v = push_value(values, core);
            Ok(Filter::Like { agg, value: v, negated: *negated })
        }
        Expr::InSubquery { expr, subquery, negated } => {
            let agg = expr_to_agg(schema, scope, expr)?;
            if subquery.compound.is_some() {
                return Err(ImportError::Unsupported("compound subquery".into()));
            }
            let query = Box::new(import_query(schema, subquery, values)?);
            Ok(Filter::In { agg, query, negated: *negated })
        }
        other => Err(ImportError::Unsupported(format!("filter {other}"))),
    }
}
