//! Flat action encoding of SemQL trees and the transition system used for
//! grammar-constrained decoding.
//!
//! The decoder (paper Section II-B1) chooses, at every step, from a set of
//! options that "dynamically changes depending on the preceding node in the
//! SemQL 2.0 tree". [`TransitionSystem`] maintains the stack of pending
//! nonterminals and exposes exactly the legal next actions; the neural
//! decoder masks its output distribution to that set.

use crate::ast::*;
use serde::{Deserialize, Serialize};
use valuenet_schema::{ColumnId, TableId};
use valuenet_sql::AggFunc;

/// Productions of `Z`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ZRule {
    /// `intersect R R`
    Intersect,
    /// `union R R`
    Union,
    /// `except R R`
    Except,
    /// plain `R`
    Single,
}

/// Productions of `R` (which optional parts follow the Select).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RRule {
    /// `Select`
    S,
    /// `Select Filter`
    SF,
    /// `Select Order`
    SO,
    /// `Select Superlative`
    SSup,
    /// `Select Order Filter`
    SOF,
    /// `Select Superlative Filter`
    SSupF,
}

/// Productions of `Filter`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FilterRule {
    /// `and Filter Filter`
    And,
    /// `or Filter Filter`
    Or,
    /// `= A V`
    Eq,
    /// `= A R`
    EqNested,
    /// `!= A V`
    Ne,
    /// `!= A R`
    NeNested,
    /// `< A V`
    Lt,
    /// `< A R`
    LtNested,
    /// `> A V`
    Gt,
    /// `> A R`
    GtNested,
    /// `<= A V`
    Le,
    /// `<= A R`
    LeNested,
    /// `>= A V`
    Ge,
    /// `>= A R`
    GeNested,
    /// `between A V V`
    Between,
    /// `like A V`
    Like,
    /// `not_like A V`
    NotLike,
    /// `in A R`
    In,
    /// `not_in A R`
    NotIn,
}

impl FilterRule {
    /// Whether the rule's right-hand side is a nested query.
    pub fn is_nested(self) -> bool {
        matches!(
            self,
            FilterRule::EqNested
                | FilterRule::NeNested
                | FilterRule::LtNested
                | FilterRule::GtNested
                | FilterRule::LeNested
                | FilterRule::GeNested
                | FilterRule::In
                | FilterRule::NotIn
        )
    }
}

/// One decoding action: either a grammar-rule application (a "sketch"
/// action, fixed vocabulary) or a pointer selection (`C`/`T`/`V`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// Apply a `Z` production.
    Z(ZRule),
    /// Apply an `R` production.
    R(RRule),
    /// Apply `Select ::= [distinct] N` — the flag is `distinct`.
    SelectRule(bool),
    /// Apply `N ::= A{n}` with `n` in `1..=5`.
    N(usize),
    /// Apply `Order ::= asc|desc A` — the flag is `desc`.
    OrderRule(bool),
    /// Apply `Superlative ::= most|least V A` — the flag is `most`.
    SupRule(bool),
    /// Apply a `Filter` production.
    F(FilterRule),
    /// Apply `A ::= [agg] C T`.
    A(Option<AggFunc>),
    /// Point at schema column `C` (index into `DbSchema::columns`).
    C(usize),
    /// Point at schema table `T` (index into `DbSchema::tables`).
    T(usize),
    /// Point at value candidate `V` (index into the candidate list).
    V(usize),
}

/// Number of distinct sketch (non-pointer) actions.
pub const SKETCH_VOCAB: usize = 46;

const FILTER_RULES: [FilterRule; 19] = [
    FilterRule::And,
    FilterRule::Or,
    FilterRule::Eq,
    FilterRule::EqNested,
    FilterRule::Ne,
    FilterRule::NeNested,
    FilterRule::Lt,
    FilterRule::LtNested,
    FilterRule::Gt,
    FilterRule::GtNested,
    FilterRule::Le,
    FilterRule::LeNested,
    FilterRule::Ge,
    FilterRule::GeNested,
    FilterRule::Between,
    FilterRule::Like,
    FilterRule::NotLike,
    FilterRule::In,
    FilterRule::NotIn,
];

const AGG_OPTIONS: [Option<AggFunc>; 6] = [
    None,
    Some(AggFunc::Max),
    Some(AggFunc::Min),
    Some(AggFunc::Count),
    Some(AggFunc::Sum),
    Some(AggFunc::Avg),
];

impl Action {
    /// Dense index of a sketch action in `0..SKETCH_VOCAB`; `None` for
    /// pointer actions.
    pub fn sketch_index(&self) -> Option<usize> {
        Some(match self {
            Action::Z(r) => *r as usize,
            Action::R(r) => 4 + *r as usize,
            Action::SelectRule(d) => 10 + usize::from(*d),
            Action::N(n) => {
                debug_assert!((1..=5).contains(n));
                12 + (n - 1)
            }
            Action::OrderRule(d) => 17 + usize::from(*d),
            Action::SupRule(m) => 19 + usize::from(*m),
            Action::F(r) => 21 + *r as usize,
            Action::A(f) => {
                40 + AGG_OPTIONS.iter().position(|x| x == f).expect("agg option")
            }
            Action::C(_) | Action::T(_) | Action::V(_) => return None,
        })
    }

    /// Inverse of [`Action::sketch_index`].
    ///
    /// # Panics
    /// Panics if `idx >= SKETCH_VOCAB`.
    pub fn from_sketch_index(idx: usize) -> Action {
        match idx {
            0 => Action::Z(ZRule::Intersect),
            1 => Action::Z(ZRule::Union),
            2 => Action::Z(ZRule::Except),
            3 => Action::Z(ZRule::Single),
            4 => Action::R(RRule::S),
            5 => Action::R(RRule::SF),
            6 => Action::R(RRule::SO),
            7 => Action::R(RRule::SSup),
            8 => Action::R(RRule::SOF),
            9 => Action::R(RRule::SSupF),
            10 => Action::SelectRule(false),
            11 => Action::SelectRule(true),
            12..=16 => Action::N(idx - 11),
            17 => Action::OrderRule(false),
            18 => Action::OrderRule(true),
            19 => Action::SupRule(false),
            20 => Action::SupRule(true),
            21..=39 => Action::F(FILTER_RULES[idx - 21]),
            40..=45 => Action::A(AGG_OPTIONS[idx - 40]),
            _ => panic!("sketch index {idx} out of range"),
        }
    }
}

/// Grammar nonterminals (decoder frontier kinds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NonTerminal {
    /// Root.
    Z,
    /// A query.
    R,
    /// Projection head.
    Select,
    /// Projection count.
    N,
    /// Sort direction.
    Order,
    /// Superlative.
    Sup,
    /// Filter tree.
    Filter,
    /// Aggregated column.
    A,
    /// Column pointer.
    C,
    /// Table pointer.
    T,
    /// Value pointer.
    V,
}

/// The transition system: a stack of pending nonterminals (with the nesting
/// depth of each `R`) that is expanded top-down, left-to-right.
#[derive(Debug, Clone)]
pub struct TransitionSystem {
    stack: Vec<(NonTerminal, usize)>,
    /// Maximum query nesting depth offered during decoding (the root query
    /// has depth 0). Limits run-away recursion when sampling.
    max_nesting: usize,
    steps: usize,
}

impl Default for TransitionSystem {
    fn default() -> Self {
        Self::new()
    }
}

impl TransitionSystem {
    /// A fresh derivation starting at `Z`, allowing one level of nesting.
    pub fn new() -> Self {
        TransitionSystem { stack: vec![(NonTerminal::Z, 0)], max_nesting: 2, steps: 0 }
    }

    /// Overrides the maximum nesting depth.
    pub fn with_max_nesting(max_nesting: usize) -> Self {
        TransitionSystem { stack: vec![(NonTerminal::Z, 0)], max_nesting, steps: 0 }
    }

    /// The nonterminal the next action must expand, or `None` when complete.
    pub fn frontier(&self) -> Option<NonTerminal> {
        self.stack.last().map(|&(nt, _)| nt)
    }

    /// Whether the derivation is finished.
    pub fn is_complete(&self) -> bool {
        self.stack.is_empty()
    }

    /// Number of actions applied so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// The sketch-action indices that are legal at the current frontier.
    /// Empty when the frontier is a pointer (`C`/`T`/`V`) or the derivation
    /// is complete.
    pub fn valid_sketch_actions(&self) -> Vec<usize> {
        let Some(&(nt, depth)) = self.stack.last() else { return Vec::new() };
        let nested_allowed = depth < self.max_nesting;
        let all: Vec<Action> = match nt {
            NonTerminal::Z => vec![
                Action::Z(ZRule::Intersect),
                Action::Z(ZRule::Union),
                Action::Z(ZRule::Except),
                Action::Z(ZRule::Single),
            ],
            NonTerminal::R => vec![
                Action::R(RRule::S),
                Action::R(RRule::SF),
                Action::R(RRule::SO),
                Action::R(RRule::SSup),
                Action::R(RRule::SOF),
                Action::R(RRule::SSupF),
            ],
            NonTerminal::Select => vec![Action::SelectRule(false), Action::SelectRule(true)],
            NonTerminal::N => (1..=5).map(Action::N).collect(),
            NonTerminal::Order => vec![Action::OrderRule(false), Action::OrderRule(true)],
            NonTerminal::Sup => vec![Action::SupRule(false), Action::SupRule(true)],
            NonTerminal::Filter => FILTER_RULES
                .iter()
                .filter(|r| nested_allowed || !r.is_nested())
                .map(|&r| Action::F(r))
                .collect(),
            NonTerminal::A => AGG_OPTIONS.iter().map(|&f| Action::A(f)).collect(),
            NonTerminal::C | NonTerminal::T | NonTerminal::V => return Vec::new(),
        };
        all.iter().filter_map(Action::sketch_index).collect()
    }

    /// Applies an action, popping the frontier and pushing its children.
    ///
    /// # Errors
    /// Returns a description when the action does not match the frontier.
    pub fn apply(&mut self, action: &Action) -> Result<(), String> {
        let Some(&(nt, depth)) = self.stack.last() else {
            return Err(format!("derivation complete, cannot apply {action:?}"));
        };
        // Children in grammar order; pushed reversed so the leftmost child
        // is expanded first.
        let children: Vec<(NonTerminal, usize)> = match (nt, action) {
            (NonTerminal::Z, Action::Z(ZRule::Single)) => vec![(NonTerminal::R, depth)],
            (NonTerminal::Z, Action::Z(_)) => {
                vec![(NonTerminal::R, depth), (NonTerminal::R, depth)]
            }
            (NonTerminal::R, Action::R(rule)) => {
                let mut c = vec![(NonTerminal::Select, depth)];
                match rule {
                    RRule::S => {}
                    RRule::SF => c.push((NonTerminal::Filter, depth)),
                    RRule::SO => c.push((NonTerminal::Order, depth)),
                    RRule::SSup => c.push((NonTerminal::Sup, depth)),
                    RRule::SOF => {
                        c.push((NonTerminal::Order, depth));
                        c.push((NonTerminal::Filter, depth));
                    }
                    RRule::SSupF => {
                        c.push((NonTerminal::Sup, depth));
                        c.push((NonTerminal::Filter, depth));
                    }
                }
                c
            }
            (NonTerminal::Select, Action::SelectRule(_)) => vec![(NonTerminal::N, depth)],
            (NonTerminal::N, Action::N(n)) if (1..=5).contains(n) => {
                vec![(NonTerminal::A, depth); *n]
            }
            (NonTerminal::Order, Action::OrderRule(_)) => vec![(NonTerminal::A, depth)],
            (NonTerminal::Sup, Action::SupRule(_)) => {
                vec![(NonTerminal::V, depth), (NonTerminal::A, depth)]
            }
            (NonTerminal::Filter, Action::F(rule)) => match rule {
                FilterRule::And | FilterRule::Or => {
                    vec![(NonTerminal::Filter, depth), (NonTerminal::Filter, depth)]
                }
                FilterRule::Between => vec![
                    (NonTerminal::A, depth),
                    (NonTerminal::V, depth),
                    (NonTerminal::V, depth),
                ],
                FilterRule::Like | FilterRule::NotLike => {
                    vec![(NonTerminal::A, depth), (NonTerminal::V, depth)]
                }
                r if r.is_nested() => {
                    vec![(NonTerminal::A, depth), (NonTerminal::R, depth + 1)]
                }
                _ => vec![(NonTerminal::A, depth), (NonTerminal::V, depth)],
            },
            (NonTerminal::A, Action::A(_)) => {
                vec![(NonTerminal::C, depth), (NonTerminal::T, depth)]
            }
            (NonTerminal::C, Action::C(_))
            | (NonTerminal::T, Action::T(_))
            | (NonTerminal::V, Action::V(_)) => Vec::new(),
            _ => return Err(format!("action {action:?} does not expand frontier {nt:?}")),
        };
        self.stack.pop();
        for child in children.into_iter().rev() {
            self.stack.push(child);
        }
        self.steps += 1;
        Ok(())
    }
}

/// Serialises a SemQL tree into its canonical pre-order action sequence.
pub fn ast_to_actions(q: &SemQl) -> Vec<Action> {
    let mut out = Vec::new();
    match q {
        SemQl::Intersect(a, b) => {
            out.push(Action::Z(ZRule::Intersect));
            emit_r(a, &mut out);
            emit_r(b, &mut out);
        }
        SemQl::Union(a, b) => {
            out.push(Action::Z(ZRule::Union));
            emit_r(a, &mut out);
            emit_r(b, &mut out);
        }
        SemQl::Except(a, b) => {
            out.push(Action::Z(ZRule::Except));
            emit_r(a, &mut out);
            emit_r(b, &mut out);
        }
        SemQl::Single(a) => {
            out.push(Action::Z(ZRule::Single));
            emit_r(a, &mut out);
        }
    }
    out
}

fn emit_r(q: &QueryR, out: &mut Vec<Action>) {
    let rule = match (&q.order, &q.superlative, &q.filter) {
        (None, None, None) => RRule::S,
        (None, None, Some(_)) => RRule::SF,
        (Some(_), None, None) => RRule::SO,
        (None, Some(_), None) => RRule::SSup,
        (Some(_), None, Some(_)) => RRule::SOF,
        (None, Some(_), Some(_)) => RRule::SSupF,
        (Some(_), Some(_), _) => {
            unreachable!("QueryR cannot have both order and superlative")
        }
    };
    out.push(Action::R(rule));
    out.push(Action::SelectRule(q.select.distinct));
    out.push(Action::N(q.select.aggs.len()));
    for a in &q.select.aggs {
        emit_agg(a, out);
    }
    if let Some(o) = &q.order {
        out.push(Action::OrderRule(o.desc));
        emit_agg(&o.agg, out);
    }
    if let Some(s) = &q.superlative {
        out.push(Action::SupRule(s.most));
        out.push(Action::V(s.limit.0));
        emit_agg(&s.agg, out);
    }
    if let Some(f) = &q.filter {
        emit_filter(f, out);
    }
}

fn emit_agg(a: &Agg, out: &mut Vec<Action>) {
    out.push(Action::A(a.func));
    out.push(Action::C(a.column.0));
    out.push(Action::T(a.table.0));
}

fn emit_filter(f: &Filter, out: &mut Vec<Action>) {
    match f {
        Filter::And(a, b) => {
            out.push(Action::F(FilterRule::And));
            emit_filter(a, out);
            emit_filter(b, out);
        }
        Filter::Or(a, b) => {
            out.push(Action::F(FilterRule::Or));
            emit_filter(a, out);
            emit_filter(b, out);
        }
        Filter::Cmp { op, agg, value } => {
            out.push(Action::F(cmp_rule(*op, false)));
            emit_agg(agg, out);
            out.push(Action::V(value.0));
        }
        Filter::CmpNested { op, agg, query } => {
            out.push(Action::F(cmp_rule(*op, true)));
            emit_agg(agg, out);
            emit_r(query, out);
        }
        Filter::Between { agg, low, high } => {
            out.push(Action::F(FilterRule::Between));
            emit_agg(agg, out);
            out.push(Action::V(low.0));
            out.push(Action::V(high.0));
        }
        Filter::Like { agg, value, negated } => {
            out.push(Action::F(if *negated { FilterRule::NotLike } else { FilterRule::Like }));
            emit_agg(agg, out);
            out.push(Action::V(value.0));
        }
        Filter::In { agg, query, negated } => {
            out.push(Action::F(if *negated { FilterRule::NotIn } else { FilterRule::In }));
            emit_agg(agg, out);
            emit_r(query, out);
        }
    }
}

fn cmp_rule(op: CmpOp, nested: bool) -> FilterRule {
    match (op, nested) {
        (CmpOp::Eq, false) => FilterRule::Eq,
        (CmpOp::Eq, true) => FilterRule::EqNested,
        (CmpOp::Ne, false) => FilterRule::Ne,
        (CmpOp::Ne, true) => FilterRule::NeNested,
        (CmpOp::Lt, false) => FilterRule::Lt,
        (CmpOp::Lt, true) => FilterRule::LtNested,
        (CmpOp::Gt, false) => FilterRule::Gt,
        (CmpOp::Gt, true) => FilterRule::GtNested,
        (CmpOp::Le, false) => FilterRule::Le,
        (CmpOp::Le, true) => FilterRule::LeNested,
        (CmpOp::Ge, false) => FilterRule::Ge,
        (CmpOp::Ge, true) => FilterRule::GeNested,
    }
}

fn rule_cmp(rule: FilterRule) -> Option<(CmpOp, bool)> {
    Some(match rule {
        FilterRule::Eq => (CmpOp::Eq, false),
        FilterRule::EqNested => (CmpOp::Eq, true),
        FilterRule::Ne => (CmpOp::Ne, false),
        FilterRule::NeNested => (CmpOp::Ne, true),
        FilterRule::Lt => (CmpOp::Lt, false),
        FilterRule::LtNested => (CmpOp::Lt, true),
        FilterRule::Gt => (CmpOp::Gt, false),
        FilterRule::GtNested => (CmpOp::Gt, true),
        FilterRule::Le => (CmpOp::Le, false),
        FilterRule::LeNested => (CmpOp::Le, true),
        FilterRule::Ge => (CmpOp::Ge, false),
        FilterRule::GeNested => (CmpOp::Ge, true),
        _ => return None,
    })
}

/// Parses a canonical action sequence back into a SemQL tree.
///
/// # Errors
/// Returns a description of the first grammar violation.
pub fn actions_to_ast(actions: &[Action]) -> Result<SemQl, String> {
    let mut pos = 0;
    let tree = parse_z(actions, &mut pos)?;
    if pos != actions.len() {
        return Err(format!("trailing actions after position {pos}"));
    }
    Ok(tree)
}

fn next<'a>(actions: &'a [Action], pos: &mut usize) -> Result<&'a Action, String> {
    let a = actions.get(*pos).ok_or("unexpected end of action sequence")?;
    *pos += 1;
    Ok(a)
}

fn parse_z(actions: &[Action], pos: &mut usize) -> Result<SemQl, String> {
    match next(actions, pos)? {
        Action::Z(ZRule::Single) => Ok(SemQl::Single(Box::new(parse_r(actions, pos)?))),
        Action::Z(rule) => {
            let a = Box::new(parse_r(actions, pos)?);
            let b = Box::new(parse_r(actions, pos)?);
            Ok(match rule {
                ZRule::Intersect => SemQl::Intersect(a, b),
                ZRule::Union => SemQl::Union(a, b),
                ZRule::Except => SemQl::Except(a, b),
                ZRule::Single => unreachable!(),
            })
        }
        other => Err(format!("expected Z action, got {other:?}")),
    }
}

fn parse_r(actions: &[Action], pos: &mut usize) -> Result<QueryR, String> {
    let rule = match next(actions, pos)? {
        Action::R(r) => *r,
        other => return Err(format!("expected R action, got {other:?}")),
    };
    let distinct = match next(actions, pos)? {
        Action::SelectRule(d) => *d,
        other => return Err(format!("expected Select action, got {other:?}")),
    };
    let n = match next(actions, pos)? {
        Action::N(n) if (1..=5).contains(n) => *n,
        other => return Err(format!("expected N action, got {other:?}")),
    };
    let mut aggs = Vec::with_capacity(n);
    for _ in 0..n {
        aggs.push(parse_agg(actions, pos)?);
    }
    let mut q = QueryR {
        select: Select { distinct, aggs },
        order: None,
        superlative: None,
        filter: None,
    };
    match rule {
        RRule::S => {}
        RRule::SF => q.filter = Some(parse_filter(actions, pos)?),
        RRule::SO => q.order = Some(parse_order(actions, pos)?),
        RRule::SSup => q.superlative = Some(parse_sup(actions, pos)?),
        RRule::SOF => {
            q.order = Some(parse_order(actions, pos)?);
            q.filter = Some(parse_filter(actions, pos)?);
        }
        RRule::SSupF => {
            q.superlative = Some(parse_sup(actions, pos)?);
            q.filter = Some(parse_filter(actions, pos)?);
        }
    }
    Ok(q)
}

fn parse_order(actions: &[Action], pos: &mut usize) -> Result<Order, String> {
    let desc = match next(actions, pos)? {
        Action::OrderRule(d) => *d,
        other => return Err(format!("expected Order action, got {other:?}")),
    };
    Ok(Order { desc, agg: parse_agg(actions, pos)? })
}

fn parse_sup(actions: &[Action], pos: &mut usize) -> Result<Superlative, String> {
    let most = match next(actions, pos)? {
        Action::SupRule(m) => *m,
        other => return Err(format!("expected Superlative action, got {other:?}")),
    };
    let limit = match next(actions, pos)? {
        Action::V(v) => ValueRef(*v),
        other => return Err(format!("expected V action, got {other:?}")),
    };
    Ok(Superlative { most, limit, agg: parse_agg(actions, pos)? })
}

fn parse_agg(actions: &[Action], pos: &mut usize) -> Result<Agg, String> {
    let func = match next(actions, pos)? {
        Action::A(f) => *f,
        other => return Err(format!("expected A action, got {other:?}")),
    };
    let column = match next(actions, pos)? {
        Action::C(c) => ColumnId(*c),
        other => return Err(format!("expected C action, got {other:?}")),
    };
    let table = match next(actions, pos)? {
        Action::T(t) => TableId(*t),
        other => return Err(format!("expected T action, got {other:?}")),
    };
    Ok(Agg { func, column, table })
}

fn parse_filter(actions: &[Action], pos: &mut usize) -> Result<Filter, String> {
    let rule = match next(actions, pos)? {
        Action::F(r) => *r,
        other => return Err(format!("expected Filter action, got {other:?}")),
    };
    match rule {
        FilterRule::And => Ok(Filter::And(
            Box::new(parse_filter(actions, pos)?),
            Box::new(parse_filter(actions, pos)?),
        )),
        FilterRule::Or => Ok(Filter::Or(
            Box::new(parse_filter(actions, pos)?),
            Box::new(parse_filter(actions, pos)?),
        )),
        FilterRule::Between => {
            let agg = parse_agg(actions, pos)?;
            let low = parse_value(actions, pos)?;
            let high = parse_value(actions, pos)?;
            Ok(Filter::Between { agg, low, high })
        }
        FilterRule::Like | FilterRule::NotLike => {
            let agg = parse_agg(actions, pos)?;
            let value = parse_value(actions, pos)?;
            Ok(Filter::Like { agg, value, negated: rule == FilterRule::NotLike })
        }
        FilterRule::In | FilterRule::NotIn => {
            let agg = parse_agg(actions, pos)?;
            let query = Box::new(parse_r(actions, pos)?);
            Ok(Filter::In { agg, query, negated: rule == FilterRule::NotIn })
        }
        other => {
            let (op, nested) = rule_cmp(other).expect("remaining rules are comparisons");
            let agg = parse_agg(actions, pos)?;
            if nested {
                let query = Box::new(parse_r(actions, pos)?);
                Ok(Filter::CmpNested { op, agg, query })
            } else {
                let value = parse_value(actions, pos)?;
                Ok(Filter::Cmp { op, agg, value })
            }
        }
    }
}

fn parse_value(actions: &[Action], pos: &mut usize) -> Result<ValueRef, String> {
    match next(actions, pos)? {
        Action::V(v) => Ok(ValueRef(*v)),
        other => Err(format!("expected V action, got {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> SemQl {
        // SELECT count(*) FROM student JOIN ... WHERE home_country = V0 AND age > V1
        let student = TableId(0);
        SemQl::Single(Box::new(QueryR {
            select: Select::new(vec![Agg::count_star(student)]),
            order: None,
            superlative: None,
            filter: Some(Filter::And(
                Box::new(Filter::Cmp {
                    op: CmpOp::Eq,
                    agg: Agg::plain(ColumnId(4), student),
                    value: ValueRef(0),
                }),
                Box::new(Filter::Cmp {
                    op: CmpOp::Gt,
                    agg: Agg::plain(ColumnId(3), student),
                    value: ValueRef(1),
                }),
            )),
        }))
    }

    #[test]
    fn sketch_index_round_trip() {
        for idx in 0..SKETCH_VOCAB {
            let a = Action::from_sketch_index(idx);
            assert_eq!(a.sketch_index(), Some(idx), "index {idx} → {a:?}");
        }
        assert_eq!(Action::C(3).sketch_index(), None);
        assert_eq!(Action::T(0).sketch_index(), None);
        assert_eq!(Action::V(1).sketch_index(), None);
    }

    #[test]
    fn ast_actions_round_trip() {
        let tree = sample_tree();
        let actions = ast_to_actions(&tree);
        let back = actions_to_ast(&actions).unwrap();
        assert_eq!(tree, back);
    }

    #[test]
    fn action_sequence_is_grammar_valid() {
        let tree = sample_tree();
        let actions = ast_to_actions(&tree);
        let mut ts = TransitionSystem::new();
        for a in &actions {
            if let Some(idx) = a.sketch_index() {
                assert!(
                    ts.valid_sketch_actions().contains(&idx),
                    "action {a:?} not valid at frontier {:?}",
                    ts.frontier()
                );
            } else {
                assert!(matches!(
                    ts.frontier(),
                    Some(NonTerminal::C | NonTerminal::T | NonTerminal::V)
                ));
            }
            ts.apply(a).unwrap();
        }
        assert!(ts.is_complete());
        assert_eq!(ts.steps(), actions.len());
    }

    #[test]
    fn invalid_action_rejected() {
        let mut ts = TransitionSystem::new();
        // Frontier is Z; an R action must fail.
        assert!(ts.apply(&Action::R(RRule::S)).is_err());
        ts.apply(&Action::Z(ZRule::Single)).unwrap();
        assert!(ts.apply(&Action::Z(ZRule::Single)).is_err());
        assert_eq!(ts.frontier(), Some(NonTerminal::R));
    }

    #[test]
    fn nesting_limit_masks_nested_rules() {
        let mut ts = TransitionSystem::with_max_nesting(0);
        ts.apply(&Action::Z(ZRule::Single)).unwrap();
        ts.apply(&Action::R(RRule::SF)).unwrap();
        ts.apply(&Action::SelectRule(false)).unwrap();
        ts.apply(&Action::N(1)).unwrap();
        ts.apply(&Action::A(None)).unwrap();
        ts.apply(&Action::C(1)).unwrap();
        ts.apply(&Action::T(0)).unwrap();
        assert_eq!(ts.frontier(), Some(NonTerminal::Filter));
        let valid = ts.valid_sketch_actions();
        let nested_idx = Action::F(FilterRule::In).sketch_index().unwrap();
        let flat_idx = Action::F(FilterRule::Eq).sketch_index().unwrap();
        assert!(!valid.contains(&nested_idx), "nested rule offered at depth limit");
        assert!(valid.contains(&flat_idx));
    }

    #[test]
    fn superlative_with_value_round_trips() {
        // "top 3 pets by weight": Superlative(most, V0, weight)
        let pet = TableId(2);
        let tree = SemQl::Single(Box::new(QueryR {
            select: Select::new(vec![Agg::plain(ColumnId(6), pet)]),
            order: None,
            superlative: Some(Superlative {
                most: true,
                limit: ValueRef(0),
                agg: Agg::plain(ColumnId(7), pet),
            }),
            filter: None,
        }));
        let actions = ast_to_actions(&tree);
        assert_eq!(actions_to_ast(&actions).unwrap(), tree);
        assert_eq!(tree.value_refs(), vec![ValueRef(0)]);
    }

    #[test]
    fn compound_and_nested_round_trip() {
        let t0 = TableId(0);
        let nested = QueryR {
            select: Select::new(vec![Agg::with(AggFunc::Avg, ColumnId(3), t0)]),
            order: None,
            superlative: None,
            filter: None,
        };
        let left = QueryR {
            select: Select::new(vec![Agg::plain(ColumnId(2), t0)]),
            order: None,
            superlative: None,
            filter: Some(Filter::CmpNested {
                op: CmpOp::Gt,
                agg: Agg::plain(ColumnId(3), t0),
                query: Box::new(nested),
            }),
        };
        let right = QueryR {
            select: Select::new(vec![Agg::plain(ColumnId(2), t0)]),
            order: None,
            superlative: None,
            filter: Some(Filter::Like {
                agg: Agg::plain(ColumnId(2), t0),
                value: ValueRef(0),
                negated: true,
            }),
        };
        let tree = SemQl::Except(Box::new(left), Box::new(right));
        let actions = ast_to_actions(&tree);
        assert_eq!(actions_to_ast(&actions).unwrap(), tree);

        // And the whole sequence must be accepted by the transition system.
        let mut ts = TransitionSystem::new();
        for a in &actions {
            ts.apply(a).unwrap();
        }
        assert!(ts.is_complete());
    }

    #[test]
    fn truncated_sequence_errors() {
        let actions = ast_to_actions(&sample_tree());
        assert!(actions_to_ast(&actions[..actions.len() - 1]).is_err());
        assert!(actions_to_ast(&actions[..1]).is_err());
        // Trailing junk must also error.
        let mut extended = actions.clone();
        extended.push(Action::V(0));
        assert!(actions_to_ast(&extended).is_err());
    }
}
