//! Deterministic SemQL → SQL lowering (paper Section III-C and IV-A).
//!
//! The lowering resolves joins through the schema graph (inserting bridge
//! tables with complete `ON` clauses), infers GROUP BY / HAVING — SemQL has
//! no explicit grouping; it is reconstructed from which projections carry
//! aggregates — and formats the selected value candidates by the predicted
//! column's type (quoting text, coercing numerics, wrapping LIKE patterns
//! in `%` wildcards).

use crate::ast::*;
use std::fmt;
use valuenet_schema::{ColumnId, ColumnType, DbSchema, SchemaGraph, TableId};
use valuenet_sql::{
    AggFunc, ColumnRef, CompoundOp, Expr, Join, Literal, OrderItem, SelectCore, SelectItem,
    SelectStmt, TableRef,
};

/// A value candidate chosen by the decoder, ready for formatting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedValue {
    /// The raw value text (as found in the question or the database).
    pub text: String,
}

impl ResolvedValue {
    /// Convenience constructor.
    pub fn new(text: impl Into<String>) -> Self {
        ResolvedValue { text: text.into() }
    }
}

/// Lowering failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// A `V` pointer referenced a candidate index outside the provided list.
    MissingValue(usize),
    /// The tables used by a query are not connected by foreign keys.
    DisconnectedTables(Vec<String>),
    /// A column pointer referenced a column outside the schema.
    BadColumn(usize),
    /// A table pointer referenced a table outside the schema.
    BadTable(usize),
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::MissingValue(i) => write!(f, "value candidate #{i} was not provided"),
            LowerError::DisconnectedTables(ts) => {
                write!(f, "tables are not connected by foreign keys: {}", ts.join(", "))
            }
            LowerError::BadColumn(c) => write!(f, "column index {c} outside schema"),
            LowerError::BadTable(t) => write!(f, "table index {t} outside schema"),
        }
    }
}

impl std::error::Error for LowerError {}

/// Lowers a SemQL tree to an executable SQL statement.
pub fn to_sql(
    semql: &SemQl,
    schema: &DbSchema,
    graph: &SchemaGraph,
    values: &[ResolvedValue],
) -> Result<SelectStmt, LowerError> {
    let ctx = Lowering { schema, graph, values };
    match semql {
        SemQl::Single(q) => ctx.lower_query(q),
        SemQl::Intersect(a, b) => ctx.compound(a, b, CompoundOp::Intersect),
        SemQl::Union(a, b) => ctx.compound(a, b, CompoundOp::Union),
        SemQl::Except(a, b) => ctx.compound(a, b, CompoundOp::Except),
    }
}

struct Lowering<'a> {
    schema: &'a DbSchema,
    graph: &'a SchemaGraph,
    values: &'a [ResolvedValue],
}

impl<'a> Lowering<'a> {
    fn compound(
        &self,
        a: &QueryR,
        b: &QueryR,
        op: CompoundOp,
    ) -> Result<SelectStmt, LowerError> {
        let mut left = self.lower_query(a)?;
        let right = self.lower_query(b)?;
        left.compound = Some((op, Box::new(right)));
        Ok(left)
    }

    fn lower_query(&self, q: &QueryR) -> Result<SelectStmt, LowerError> {
        // 1. Terminal tables: every A's table plus the owning table of every
        //    referenced column (they can disagree when the model errs).
        let mut terminals: Vec<TableId> = Vec::new();
        let add_agg_tables = |agg: &Agg, terminals: &mut Vec<TableId>| {
            if agg.table.0 >= self.schema.tables.len() {
                return Err(LowerError::BadTable(agg.table.0));
            }
            if !terminals.contains(&agg.table) {
                terminals.push(agg.table);
            }
            if agg.column.0 >= self.schema.columns.len() {
                return Err(LowerError::BadColumn(agg.column.0));
            }
            if let Some(owner) = self.schema.column(agg.column).table {
                if !terminals.contains(&owner) {
                    terminals.push(owner);
                }
            }
            Ok(())
        };
        for agg in self.all_own_aggs(q) {
            add_agg_tables(&agg, &mut terminals)?;
        }

        // 2. Join tree with aliases T1..Tn.
        let tree = self.graph.join_tree(&terminals).ok_or_else(|| {
            LowerError::DisconnectedTables(
                terminals.iter().map(|&t| self.schema.table(t).name.clone()).collect(),
            )
        })?;
        let alias_of = |t: TableId| -> String {
            let pos = tree.tables.iter().position(|&x| x == t).expect("table in join tree");
            format!("T{}", pos + 1)
        };

        let mut core = SelectCore::new();
        core.distinct = q.select.distinct;
        core.from = Some(TableRef {
            name: self.schema.table(tree.tables[0]).name.clone(),
            alias: Some(alias_of(tree.tables[0])),
        });
        for e in &tree.edges {
            core.joins.push(Join {
                table: TableRef {
                    name: self.schema.table(e.to_table).name.clone(),
                    alias: Some(alias_of(e.to_table)),
                },
                on: Some(Expr::binary(
                    valuenet_sql::BinOp::Eq,
                    self.column_expr(e.from_col, Some(e.from_table), &alias_of),
                    self.column_expr(e.to_col, Some(e.to_table), &alias_of),
                )),
            });
        }

        // 3. Projections.
        for agg in &q.select.aggs {
            core.items.push(SelectItem { expr: self.agg_expr(agg, &alias_of), alias: None });
        }

        // 4. Filters → WHERE / HAVING conjuncts.
        let mut where_parts: Vec<Expr> = Vec::new();
        let mut having_parts: Vec<Expr> = Vec::new();
        if let Some(f) = &q.filter {
            for conjunct in split_conjuncts(f) {
                let expr = self.filter_expr(conjunct, &alias_of)?;
                if conjunct.contains_aggregate() {
                    having_parts.push(expr);
                } else {
                    where_parts.push(expr);
                }
            }
        }
        core.where_clause = conjoin(where_parts);
        core.having = conjoin(having_parts);

        // 5. GROUP BY inference: if any aggregate appears (in the select, the
        //    having, or the sort key) alongside plain projected columns,
        //    group by those plain columns.
        let plain_cols: Vec<Expr> = q
            .select
            .aggs
            .iter()
            .filter(|a| a.func.is_none() && !a.column.is_star())
            .map(|a| self.agg_expr(&Agg::plain(a.column, a.table), &alias_of))
            .collect();
        let select_has_agg = q.select.aggs.iter().any(|a| a.func.is_some());
        let sort_has_agg = q.order.as_ref().map(|o| o.agg.func.is_some()).unwrap_or(false)
            || q.superlative.as_ref().map(|s| s.agg.func.is_some()).unwrap_or(false);
        let needs_group = (select_has_agg && !plain_cols.is_empty())
            || core.having.is_some()
            || (sort_has_agg && !plain_cols.is_empty());
        if needs_group {
            core.group_by = plain_cols;
        }

        // 6. Ordering.
        let mut stmt = SelectStmt::simple(core);
        if let Some(o) = &q.order {
            stmt.order_by.push(OrderItem { expr: self.agg_expr(&o.agg, &alias_of), desc: o.desc });
        }
        if let Some(s) = &q.superlative {
            stmt.order_by
                .push(OrderItem { expr: self.agg_expr(&s.agg, &alias_of), desc: s.most });
            let text = &self.value(s.limit)?.text;
            // Non-numeric limit predictions fall back to 1 (the most common
            // superlative), matching the reference implementation.
            stmt.limit = Some(text.trim().parse::<u64>().unwrap_or(1));
        }
        Ok(stmt)
    }

    /// Every `A` of this query, excluding nested queries.
    fn all_own_aggs(&self, q: &QueryR) -> Vec<Agg> {
        let mut out: Vec<Agg> = q.select.aggs.clone();
        if let Some(o) = &q.order {
            out.push(o.agg);
        }
        if let Some(s) = &q.superlative {
            out.push(s.agg);
        }
        fn walk(f: &Filter, out: &mut Vec<Agg>) {
            match f {
                Filter::And(a, b) | Filter::Or(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                Filter::Cmp { agg, .. }
                | Filter::CmpNested { agg, .. }
                | Filter::Between { agg, .. }
                | Filter::Like { agg, .. }
                | Filter::In { agg, .. } => out.push(*agg),
            }
        }
        if let Some(f) = &q.filter {
            walk(f, &mut out);
        }
        out
    }

    fn value(&self, v: ValueRef) -> Result<&ResolvedValue, LowerError> {
        self.values.get(v.0).ok_or(LowerError::MissingValue(v.0))
    }

    /// A column reference qualified by the alias of its owning table (or of
    /// `fallback_table` for the `*` pseudo-column).
    fn column_expr(
        &self,
        col: ColumnId,
        fallback_table: Option<TableId>,
        alias_of: &impl Fn(TableId) -> String,
    ) -> Expr {
        if col.is_star() {
            return match fallback_table {
                Some(t) => Expr::Column(ColumnRef::qualified(alias_of(t), "*")),
                None => Expr::Column(ColumnRef::bare("*")),
            };
        }
        let c = self.schema.column(col);
        let owner = c.table.or(fallback_table);
        match owner {
            Some(t) => Expr::Column(ColumnRef::qualified(alias_of(t), c.name.clone())),
            None => Expr::Column(ColumnRef::bare(c.name.clone())),
        }
    }

    fn agg_expr(&self, agg: &Agg, alias_of: &impl Fn(TableId) -> String) -> Expr {
        match agg.func {
            None => self.column_expr(agg.column, Some(agg.table), alias_of),
            Some(func) => {
                // count(*) renders its argument as a bare star.
                let arg = if agg.column.is_star() && func == AggFunc::Count {
                    Expr::Column(ColumnRef::bare("*"))
                } else {
                    self.column_expr(agg.column, Some(agg.table), alias_of)
                };
                Expr::Agg { func, distinct: false, arg: Box::new(arg) }
            }
        }
    }

    fn filter_expr(
        &self,
        f: &Filter,
        alias_of: &impl Fn(TableId) -> String,
    ) -> Result<Expr, LowerError> {
        Ok(match f {
            Filter::And(a, b) => Expr::binary(
                valuenet_sql::BinOp::And,
                self.filter_expr(a, alias_of)?,
                self.filter_expr(b, alias_of)?,
            ),
            Filter::Or(a, b) => Expr::binary(
                valuenet_sql::BinOp::Or,
                self.filter_expr(a, alias_of)?,
                self.filter_expr(b, alias_of)?,
            ),
            Filter::Cmp { op, agg, value } => {
                let lit = self.format_value(self.value(*value)?, agg.column, false);
                Expr::binary(op.to_sql(), self.agg_expr(agg, alias_of), Expr::Lit(lit))
            }
            Filter::CmpNested { op, agg, query } => {
                let sub = self.lower_query(query)?;
                Expr::binary(
                    op.to_sql(),
                    self.agg_expr(agg, alias_of),
                    Expr::Subquery(Box::new(sub)),
                )
            }
            Filter::Between { agg, low, high } => Expr::Between {
                expr: Box::new(self.agg_expr(agg, alias_of)),
                low: Box::new(Expr::Lit(self.format_value(self.value(*low)?, agg.column, false))),
                high: Box::new(Expr::Lit(
                    self.format_value(self.value(*high)?, agg.column, false),
                )),
                negated: false,
            },
            Filter::Like { agg, value, negated } => Expr::Like {
                expr: Box::new(self.agg_expr(agg, alias_of)),
                pattern: Box::new(Expr::Lit(
                    self.format_value(self.value(*value)?, agg.column, true),
                )),
                negated: *negated,
            },
            Filter::In { agg, query, negated } => {
                let sub = self.lower_query(query)?;
                Expr::InSubquery {
                    expr: Box::new(self.agg_expr(agg, alias_of)),
                    subquery: Box::new(sub),
                    negated: *negated,
                }
            }
        })
    }

    /// The paper's Section IV-A post-processing: format the value given the
    /// predicted column's type; LIKE patterns get `%` wildcards.
    fn format_value(&self, value: &ResolvedValue, column: ColumnId, like: bool) -> Literal {
        let text = value.text.trim();
        if like {
            let pattern = if text.contains('%') {
                text.to_string()
            } else {
                format!("%{text}%")
            };
            return Literal::Text(pattern);
        }
        let ty = if column.is_star() {
            ColumnType::Others
        } else {
            self.schema.column(column).ty
        };
        match ty {
            ColumnType::Number => {
                if let Ok(i) = text.parse::<i64>() {
                    Literal::Int(i)
                } else if let Ok(f) = text.parse::<f64>() {
                    Literal::Float(f)
                } else {
                    Literal::Text(text.to_string())
                }
            }
            ColumnType::Boolean => match text.to_lowercase().as_str() {
                "1" | "true" | "t" | "yes" | "y" => Literal::Int(1),
                "0" | "false" | "f" | "no" | "n" => Literal::Int(0),
                other => Literal::Text(other.to_string()),
            },
            ColumnType::Text | ColumnType::Time => Literal::Text(text.to_string()),
            ColumnType::Others => Literal::infer(text),
        }
    }
}

/// Splits a filter tree at top-level ANDs into its conjuncts.
fn split_conjuncts(f: &Filter) -> Vec<&Filter> {
    match f {
        Filter::And(a, b) => {
            let mut out = split_conjuncts(a);
            out.extend(split_conjuncts(b));
            out
        }
        other => vec![other],
    }
}

fn conjoin(parts: Vec<Expr>) -> Option<Expr> {
    parts
        .into_iter()
        .reduce(|acc, e| Expr::binary(valuenet_sql::BinOp::And, acc, e))
}
