//! SemQL 2.0: the paper's intermediate representation (Fig. 2).
//!
//! SemQL abstracts SQL into a small context-free grammar so that the neural
//! decoder synthesizes a tree of *actions* instead of raw SQL tokens —
//! sidestepping the "mismatch problem" where users rarely phrase questions
//! in SQL's shape. ValueNet extends IRNet's SemQL 1.0 with the value
//! nonterminal `V`, yielding:
//!
//! ```text
//! Z      ::= intersect R R | union R R | except R R | R
//! R      ::= Select | Select Filter | Select Order | Select Superlative
//!          | Select Order Filter | Select Superlative Filter
//! Select ::= distinct N | N
//! N      ::= A | A A | A A A | A A A A | A A A A A
//! Order  ::= asc A | desc A
//! Superlative ::= most V A | least V A
//! Filter ::= and F F | or F F
//!          | = A V  | = A R  | != A V | != A R
//!          | < A V  | < A R  | > A V  | > A R
//!          | <= A V | <= A R | >= A V | >= A R
//!          | between A V V | like A V | not_like A V
//!          | in A R | not_in A R
//! A      ::= max C T | min C T | count C T | sum C T | avg C T | C T
//! C      ::= column   (pointer into the schema's column list)
//! T      ::= table    (pointer into the schema's table list)
//! V      ::= value    (pointer into the value-candidate list)
//! ```
//!
//! Deviation noted in `DESIGN.md`: the paper's figure also lists
//! `between A R`, which never occurs in Spider gold queries and has no
//! executable SQL counterpart in the evaluation; we omit it.
//!
//! This crate provides the typed AST ([`SemQl`], [`QueryR`], [`Filter`],
//! ...), the flat action encoding ([`Action`]) with its
//! [`TransitionSystem`] (dynamic valid-action sets for grammar-constrained
//! decoding, Section II-B1), conversions between the two, and the
//! deterministic SemQL → SQL lowering of Section III-C (Steiner-tree join
//! resolution, GROUP BY/HAVING inference, and the value formatting of
//! Section IV-A).

//! ```
//! use valuenet_schema::{ColumnType, SchemaBuilder, SchemaGraph};
//! use valuenet_semql::{
//!     actions_to_ast, ast_to_actions, to_sql, Agg, CmpOp, Filter, QueryR, ResolvedValue,
//!     Select, SemQl, ValueRef,
//! };
//!
//! let schema = SchemaBuilder::new("demo")
//!     .table("student", &[("name", ColumnType::Text), ("age", ColumnType::Number)])
//!     .build();
//! let student = schema.table_by_name("student").unwrap();
//! let name = schema.column_by_name(student, "name").unwrap();
//! let age = schema.column_by_name(student, "age").unwrap();
//!
//! // SELECT name FROM student WHERE age > V0
//! let tree = SemQl::Single(Box::new(QueryR {
//!     select: Select::new(vec![Agg::plain(name, student)]),
//!     order: None,
//!     superlative: None,
//!     filter: Some(Filter::Cmp {
//!         op: CmpOp::Gt,
//!         agg: Agg::plain(age, student),
//!         value: ValueRef(0),
//!     }),
//! }));
//!
//! // The canonical action encoding round-trips.
//! let actions = ast_to_actions(&tree);
//! assert_eq!(actions_to_ast(&actions).unwrap(), tree);
//!
//! // Deterministic lowering to executable SQL.
//! let graph = SchemaGraph::new(&schema);
//! let sql = to_sql(&tree, &schema, &graph, &[ResolvedValue::new("20")]).unwrap();
//! assert_eq!(sql.to_string(), "SELECT T1.name FROM student AS T1 WHERE T1.age > 20");
//! ```

mod actions;
mod ast;
mod from_sql;
mod lower;

pub use actions::{
    actions_to_ast, ast_to_actions, Action, FilterRule, NonTerminal, RRule, TransitionSystem,
    ZRule, SKETCH_VOCAB,
};
pub use ast::{Agg, CmpOp, Filter, Order, QueryR, Select, SemQl, Superlative, ValueRef};
pub use from_sql::{semql_from_sql, ImportError, ImportResult};
pub use lower::{to_sql, LowerError, ResolvedValue};
