//! Pre-processing: question/schema hints and the value-candidate pipeline.
//!
//! Implements the paper's Section III-A and Section IV:
//!
//! - **Question hints** (Fig. 6): classify each question token as referring
//!   to a table, a column, a database value, an aggregation or a
//!   superlative, by stemming and exact matching against the schema and the
//!   inverted index.
//! - **Schema hints** (Fig. 7): the inverse — classify each schema item as
//!   exactly / partially mentioned, or as the location of a value candidate.
//! - **Value extraction** (IV-B1): a named-entity recogniser. Two backends:
//!   the paper's deterministic heuristics (quotes, capitalised sequences,
//!   single letters, numbers, dates, ordinals) and a trainable statistical
//!   token classifier (a character-n-gram naive Bayes model standing in for
//!   the transformer NER; see `DESIGN.md`).
//! - **Candidate generation** (IV-B2): Damerau–Levenshtein similarity search
//!   against the database, n-grams of multi-token values, and handcrafted
//!   heuristics (gender → 'F'/'M', booleans → 0/1, ordinals → integers,
//!   months → date wildcards).
//! - **Candidate validation** (IV-B3): exact database lookups that prune the
//!   candidate set and register the table/column each candidate was found
//!   in — numeric and quoted values are exempt from validation, exactly as
//!   in the paper.

//! ```
//! use valuenet_preprocess::{preprocess, CandidateConfig, HeuristicNer};
//! use valuenet_schema::{ColumnType, SchemaBuilder};
//! use valuenet_storage::Database;
//!
//! let schema = SchemaBuilder::new("demo")
//!     .table("student", &[("name", ColumnType::Text), ("country", ColumnType::Text)])
//!     .build();
//! let mut db = Database::new(schema);
//! let t = db.schema().table_by_name("student").unwrap();
//! db.insert(t, vec!["Alice".into(), "France".into()]);
//! db.rebuild_index();
//!
//! let pre = preprocess(
//!     "How many students are from Frence?", // misspelled on purpose
//!     &db,
//!     &HeuristicNer::new(),
//!     &CandidateConfig::default(),
//! );
//! // Similarity search recovered the real database value.
//! assert!(pre.candidates.iter().any(|c| c.text == "France"));
//! ```

mod candidates;
mod hints;
mod ner;
mod stem;
mod tokenizer;

pub use candidates::{
    generate_candidates, CandidateConfig, CandidateSource, ValueCandidate,
};
pub use hints::{
    question_hints, schema_hints, QuestionHint, SchemaHint, SchemaHints,
};
pub use ner::{ExtractedValue, HeuristicNer, Ner, StatisticalNer, ValueKind};
pub use stem::porter_stem;
pub use tokenizer::{tokenize_question, Token};

use valuenet_storage::Database;

/// Everything the encoder needs about one question: tokens, hints, and the
/// validated value candidates (paper Fig. 5, "Pre-Processing" box).
#[derive(Debug, Clone)]
pub struct Preprocessed {
    /// Question tokens.
    pub tokens: Vec<Token>,
    /// One hint per token.
    pub question_hints: Vec<QuestionHint>,
    /// Hints for every schema table and column.
    pub schema_hints: SchemaHints,
    /// Validated value candidates with their database locations.
    pub candidates: Vec<ValueCandidate>,
}

static VALUES_EXTRACTED: valuenet_obs::Counter =
    valuenet_obs::Counter::new("preprocess.values_extracted");
static CANDIDATES_KEPT: valuenet_obs::Counter =
    valuenet_obs::Counter::new("preprocess.candidates_kept");

/// Runs the full pre-processing pipeline for a question against a database.
pub fn preprocess(question: &str, db: &Database, ner: &dyn Ner, cfg: &CandidateConfig) -> Preprocessed {
    let _span = valuenet_obs::span("preprocess");
    let tokens = {
        let _s = valuenet_obs::span("preprocess.tokenize");
        tokenize_question(question)
    };
    let extracted = {
        let _s = valuenet_obs::span("preprocess.ner");
        ner.extract(question, &tokens)
    };
    VALUES_EXTRACTED.add(extracted.len() as u64);
    let candidates = {
        let _s = valuenet_obs::span("preprocess.candidates");
        generate_candidates(&extracted, &tokens, db, cfg)
    };
    CANDIDATES_KEPT.add(candidates.len() as u64);
    let (question_hints, schema_hints) = {
        let _s = valuenet_obs::span("preprocess.hints");
        (question_hints(&tokens, db), schema_hints(&tokens, db, &candidates))
    };
    Preprocessed { tokens, question_hints, schema_hints, candidates }
}
