//! Question and schema hints (paper Figs. 6 and 7).

use crate::candidates::ValueCandidate;
use crate::stem::porter_stem;
use crate::tokenizer::Token;
use std::collections::HashSet;
use valuenet_storage::Database;

/// Classification of one question token (Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuestionHint {
    /// No match.
    None,
    /// Matches a table name.
    Table,
    /// Matches a column name.
    Column,
    /// Found in the database content.
    Value,
    /// An aggregation keyword ("average", "how many", ...).
    Agg,
    /// A superlative keyword ("most", "oldest", ...).
    Superlative,
}

/// Classification of one schema item (Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemaHint {
    /// Not mentioned.
    None,
    /// Some of its words appear in the question.
    Partial,
    /// All of its words appear in the question.
    Exact,
    /// A validated value candidate was found in this column.
    ValueCandidate,
}

/// Hints for every table and column of a schema.
#[derive(Debug, Clone)]
pub struct SchemaHints {
    /// One hint per table (indexed by `TableId.0`).
    pub tables: Vec<SchemaHint>,
    /// One hint per column (indexed by `ColumnId.0`).
    pub columns: Vec<SchemaHint>,
}

const AGG_KEYWORDS: &[&str] = &[
    "average", "avg", "sum", "total", "count", "number", "many", "much", "amount",
];

const SUPERLATIVE_KEYWORDS: &[&str] = &[
    "most", "least", "oldest", "youngest", "largest", "smallest", "highest", "lowest",
    "biggest", "heaviest", "lightest", "longest", "shortest", "best", "worst", "latest",
    "earliest", "top", "maximum", "minimum", "max", "min", "fastest", "slowest", "cheapest",
];

/// Classifies each question token (Fig. 6): superlative/aggregation keywords,
/// stemmed matches against table and column names, then database content.
pub fn question_hints(tokens: &[Token], db: &Database) -> Vec<QuestionHint> {
    let schema = db.schema();
    let table_stems: HashSet<String> = schema
        .tables
        .iter()
        .flat_map(|t| t.display.split_whitespace().map(porter_stem))
        .collect();
    let column_stems: HashSet<String> = schema
        .columns
        .iter()
        .skip(1)
        .flat_map(|c| c.display.split_whitespace().map(porter_stem))
        .collect();

    tokens
        .iter()
        .map(|t| {
            let stem = porter_stem(&t.lower);
            if SUPERLATIVE_KEYWORDS.contains(&t.lower.as_str()) {
                QuestionHint::Superlative
            } else if AGG_KEYWORDS.contains(&t.lower.as_str()) {
                QuestionHint::Agg
            } else if table_stems.contains(&stem) {
                QuestionHint::Table
            } else if column_stems.contains(&stem) {
                QuestionHint::Column
            } else if !db.index().find_token(&t.lower).is_empty() {
                QuestionHint::Value
            } else {
                QuestionHint::None
            }
        })
        .collect()
}

/// Classifies each schema item (Fig. 7): exact when all of its display words
/// occur in the (stemmed) question, partial when some do, and
/// value-candidate when a validated candidate was located in the column.
pub fn schema_hints(
    tokens: &[Token],
    db: &Database,
    candidates: &[ValueCandidate],
) -> SchemaHints {
    let schema = db.schema();
    let question_stems: HashSet<String> =
        tokens.iter().map(|t| porter_stem(&t.lower)).collect();

    let match_words = |display: &str| -> SchemaHint {
        let words: Vec<String> = display.split_whitespace().map(porter_stem).collect();
        if words.is_empty() {
            return SchemaHint::None;
        }
        let hits = words.iter().filter(|w| question_stems.contains(*w)).count();
        if hits == words.len() {
            SchemaHint::Exact
        } else if hits > 0 {
            SchemaHint::Partial
        } else {
            SchemaHint::None
        }
    };

    let tables = schema.tables.iter().map(|t| match_words(&t.display)).collect();

    let mut columns: Vec<SchemaHint> = schema
        .columns
        .iter()
        .enumerate()
        .map(|(i, c)| if i == 0 { SchemaHint::None } else { match_words(&c.display) })
        .collect();
    // Value-candidate locations upgrade anything below Exact.
    for cand in candidates {
        for loc in &cand.locations {
            if columns[loc.0] != SchemaHint::Exact {
                columns[loc.0] = SchemaHint::ValueCandidate;
            }
        }
    }
    SchemaHints { tables, columns }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{generate_candidates, CandidateConfig};
    use crate::ner::{HeuristicNer, Ner};
    use crate::tokenizer::tokenize_question;
    use valuenet_schema::{ColumnType, SchemaBuilder};

    fn pets_db() -> Database {
        let schema = SchemaBuilder::new("pets")
            .table(
                "student",
                &[
                    ("stu_id", ColumnType::Number),
                    ("name", ColumnType::Text),
                    ("age", ColumnType::Number),
                    ("home_country", ColumnType::Text),
                ],
            )
            .table("has_pet", &[("stu_id", ColumnType::Number), ("pet_id", ColumnType::Number)])
            .table("pet", &[("pet_id", ColumnType::Number), ("weight", ColumnType::Number)])
            .build();
        let mut db = Database::new(schema);
        let student = db.schema().table_by_name("student").unwrap();
        db.insert(student, vec![1.into(), "Alice".into(), 21.into(), "France".into()]);
        db.insert(student, vec![2.into(), "Bob".into(), 19.into(), "Germany".into()]);
        db.insert(student, vec![3.into(), "Carol".into(), 20.into(), "Spain".into()]);
        db.rebuild_index();
        db
    }

    #[test]
    fn question_hint_classes() {
        let db = pets_db();
        // The paper's Fig. 6 example (France appears in the DB, not "French";
        // the encoder learns that correlation — the hint only fires on
        // literal DB content, so use "France" here).
        let q = "How many pets are owned by students from France older than 20?";
        let tokens = tokenize_question(q);
        let hints = question_hints(&tokens, &db);
        let hint_of = |w: &str| {
            hints[tokens.iter().position(|t| t.lower == w).unwrap_or_else(|| panic!("{w}"))]
        };
        assert_eq!(hint_of("many"), QuestionHint::Agg);
        assert_eq!(hint_of("pets"), QuestionHint::Table);
        assert_eq!(hint_of("students"), QuestionHint::Table);
        assert_eq!(hint_of("france"), QuestionHint::Value);
        assert_eq!(hint_of("owned"), QuestionHint::None);
        // Numbers found in the data get the Value hint.
        let q2 = "students aged 21";
        let tokens2 = tokenize_question(q2);
        let hints2 = question_hints(&tokens2, &db);
        assert_eq!(hints2[2], QuestionHint::Value);
    }

    #[test]
    fn column_hint_beats_value() {
        let db = pets_db();
        let q = "What is the age of each student?";
        let tokens = tokenize_question(q);
        let hints = question_hints(&tokens, &db);
        let idx = tokens.iter().position(|t| t.lower == "age").unwrap();
        assert_eq!(hints[idx], QuestionHint::Column);
    }

    #[test]
    fn superlative_keywords() {
        let db = pets_db();
        let tokens = tokenize_question("Who is the oldest student?");
        let hints = question_hints(&tokens, &db);
        let idx = tokens.iter().position(|t| t.lower == "oldest").unwrap();
        assert_eq!(hints[idx], QuestionHint::Superlative);
    }

    #[test]
    fn schema_hint_exact_partial_value() {
        let db = pets_db();
        let q = "How many pets are owned by students from France older than 20?";
        let tokens = tokenize_question(q);
        let extracted = HeuristicNer.extract(q, &tokens);
        let cands = generate_candidates(&extracted, &tokens, &db, &CandidateConfig::default());
        let hints = schema_hints(&tokens, &db, &cands);

        let schema = db.schema();
        let student = schema.table_by_name("student").unwrap();
        let pet = schema.table_by_name("pet").unwrap();
        let has_pet = schema.table_by_name("has_pet").unwrap();
        assert_eq!(hints.tables[student.0], SchemaHint::Exact);
        assert_eq!(hints.tables[pet.0], SchemaHint::Exact);
        // "has pet": only "pet" appears → partial.
        assert_eq!(hints.tables[has_pet.0], SchemaHint::Partial);

        // France was validated in home_country → value-candidate match.
        let country = schema.column_by_name(student, "home_country").unwrap();
        assert_eq!(hints.columns[country.0], SchemaHint::ValueCandidate);
        // age: "20" was found in column age → value-candidate match
        // (the paper's exact example for this class).
        let age = schema.column_by_name(student, "age").unwrap();
        assert!(
            matches!(hints.columns[age.0], SchemaHint::ValueCandidate | SchemaHint::Exact),
            "{:?}",
            hints.columns[age.0]
        );
    }

    #[test]
    fn unmentioned_schema_items_are_none() {
        let db = pets_db();
        let tokens = tokenize_question("Count everything");
        let hints = schema_hints(&tokens, &db, &[]);
        assert!(hints.tables.iter().all(|&h| h == SchemaHint::None));
        assert!(hints.columns.iter().all(|&h| h == SchemaHint::None));
    }
}
