//! Question tokenizer.

/// One question token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Original spelling.
    pub text: String,
    /// Lowercased spelling.
    pub lower: String,
    /// Whether the token came from inside single or double quotes.
    pub quoted: bool,
}

impl Token {
    fn new(text: &str, quoted: bool) -> Self {
        Token { lower: text.to_lowercase(), text: text.to_string(), quoted }
    }

    /// Whether the token starts with an uppercase letter.
    pub fn is_capitalized(&self) -> bool {
        self.text.chars().next().is_some_and(char::is_uppercase)
    }

    /// Whether the token is entirely numeric (integer or decimal).
    pub fn is_numeric(&self) -> bool {
        !self.text.is_empty()
            && self.text.chars().all(|c| c.is_ascii_digit() || c == '.')
            && self.text.chars().any(|c| c.is_ascii_digit())
    }

    /// Whether the token is a single alphabetic letter.
    pub fn is_single_letter(&self) -> bool {
        self.text.chars().count() == 1 && self.text.chars().all(char::is_alphabetic)
    }
}

/// Splits a natural-language question into tokens. Quoted spans (single or
/// double quotes) become one token each, so *"Whose head's name has the
/// substring 'Ha'?"* keeps `Ha` intact. Numbers keep decimal points and
/// date-like separators (`2010-08-09`, `8/9/2010`); words keep internal
/// apostrophes and hyphens.
pub fn tokenize_question(question: &str) -> Vec<Token> {
    let chars: Vec<char> = question.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c == '"' || c == '\u{201c}' {
            let close = if c == '"' { '"' } else { '\u{201d}' };
            if let Some(end) = find_close(&chars, i + 1, close) {
                let text: String = chars[i + 1..end].iter().collect();
                if !text.is_empty() {
                    tokens.push(Token::new(&text, true));
                }
                i = end + 1;
            } else {
                i += 1;
            }
        } else if c == '\'' && !prev_is_word(&chars, i) {
            // Opening quote (not an apostrophe inside a word).
            if let Some(end) = find_close(&chars, i + 1, '\'') {
                let text: String = chars[i + 1..end].iter().collect();
                if !text.is_empty() {
                    tokens.push(Token::new(&text, true));
                }
                i = end + 1;
            } else {
                i += 1;
            }
        } else if c.is_ascii_digit() {
            let start = i;
            while i < chars.len()
                && (chars[i].is_ascii_digit()
                    || ((chars[i] == '.' || chars[i] == '-' || chars[i] == '/' || chars[i] == ':')
                        && i + 1 < chars.len()
                        && chars[i + 1].is_ascii_digit()))
            {
                i += 1;
            }
            // Attach ordinal suffixes: 9th, 1st, 2nd, 3rd.
            let mut end = i;
            let rest: String = chars[i..].iter().take(2).collect();
            let rl = rest.to_lowercase();
            if rl.starts_with("th") || rl.starts_with("st") || rl.starts_with("nd") || rl.starts_with("rd") {
                end += 2;
                i = end;
            }
            let text: String = chars[start..end].iter().collect();
            tokens.push(Token::new(&text, false));
        } else if c.is_alphanumeric() {
            let start = i;
            while i < chars.len()
                && (chars[i].is_alphanumeric()
                    || ((chars[i] == '\'' || chars[i] == '-' || chars[i] == '_')
                        && i + 1 < chars.len()
                        && chars[i + 1].is_alphanumeric()))
            {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            tokens.push(Token::new(&text, false));
        } else {
            i += 1; // punctuation
        }
    }
    tokens
}

fn find_close(chars: &[char], from: usize, close: char) -> Option<usize> {
    (from..chars.len()).find(|&j| chars[j] == close)
}

fn prev_is_word(chars: &[char], i: usize) -> bool {
    i > 0 && chars[i - 1].is_alphanumeric()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(q: &str) -> Vec<String> {
        tokenize_question(q).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn basic_words_and_punctuation() {
        assert_eq!(
            texts("How many pets are owned by French students?"),
            vec!["How", "many", "pets", "are", "owned", "by", "French", "students"]
        );
    }

    #[test]
    fn quoted_spans_stay_whole() {
        let toks = tokenize_question("Whose head's name has the substring 'Ha'?");
        let quoted: Vec<&Token> = toks.iter().filter(|t| t.quoted).collect();
        assert_eq!(quoted.len(), 1);
        assert_eq!(quoted[0].text, "Ha");
        // The apostrophe in "head's" must not open a quote.
        assert!(toks.iter().any(|t| t.text == "head's"));
    }

    #[test]
    fn double_quoted_multiword() {
        let toks = tokenize_question("Find all albums starting with \"goodbye yellow\"");
        let quoted: Vec<&Token> = toks.iter().filter(|t| t.quoted).collect();
        assert_eq!(quoted[0].text, "goodbye yellow");
    }

    #[test]
    fn numbers_dates_and_ordinals() {
        assert_eq!(texts("older than 20"), vec!["older", "than", "20"]);
        assert_eq!(texts("on 2010-08-09 at 9:30"), vec!["on", "2010-08-09", "at", "9:30"]);
        assert_eq!(texts("the 9th of August 2010"), vec!["the", "9th", "of", "August", "2010"]);
        assert_eq!(texts("weighs 4.5 kg"), vec!["weighs", "4.5", "kg"]);
        assert_eq!(texts("flight 8/9/2010"), vec!["flight", "8/9/2010"]);
    }

    #[test]
    fn hyphenated_codes() {
        assert_eq!(texts("aircraft Airbus A340-300"), vec!["aircraft", "Airbus", "A340-300"]);
    }

    #[test]
    fn token_predicates() {
        let toks = tokenize_question("Show M flights from Paris at 20");
        assert!(toks[1].is_single_letter());
        assert!(toks[4].is_capitalized());
        assert!(toks[6].is_numeric());
        assert!(!toks[2].is_numeric());
    }

    #[test]
    fn unterminated_quote_does_not_hang() {
        let toks = tokenize_question("name with 'unclosed");
        assert!(toks.iter().any(|t| t.text == "name"));
    }

    #[test]
    fn empty_input() {
        assert!(tokenize_question("").is_empty());
        assert!(tokenize_question("   ?!  ").is_empty());
    }
}
