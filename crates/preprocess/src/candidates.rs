//! Value-candidate generation and validation (paper Sections IV-B2, IV-B3).

use crate::ner::{boolean_value, gender_letter, month_number, ordinal_value, ExtractedValue, ValueKind};
use crate::tokenizer::Token;
use valuenet_schema::{ColumnId, ColumnType};
use valuenet_storage::Database;

/// How a candidate was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateSource {
    /// Extracted text found verbatim in the database (or exempt from
    /// validation: numbers and quoted strings).
    Extracted,
    /// Found by Damerau–Levenshtein similarity search; carries the distance.
    Similarity(usize),
    /// An n-gram of a longer extracted span, validated against the database.
    NGram,
    /// Handcrafted heuristic (gender, boolean, ordinal, month wildcard).
    Heuristic,
}

impl CandidateSource {
    /// Ranking priority (lower sorts first).
    fn rank(self) -> usize {
        match self {
            CandidateSource::Extracted => 0,
            CandidateSource::Heuristic => 1,
            CandidateSource::Similarity(d) => 2 + d,
            CandidateSource::NGram => 6,
        }
    }
}

/// A validated value candidate, carrying the columns it was found in — the
/// *location* information the encoder attends over (paper Fig. 8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueCandidate {
    /// Candidate text (database spelling when validated).
    pub text: String,
    /// Provenance.
    pub source: CandidateSource,
    /// Columns whose base data contains this candidate.
    pub locations: Vec<ColumnId>,
    /// Whether the candidate is numeric (exempt from validation).
    pub numeric: bool,
}

/// Candidate-pipeline knobs. The defaults mirror the paper; the `enable_*`
/// flags exist for the ablation benchmarks.
#[derive(Debug, Clone)]
pub struct CandidateConfig {
    /// Maximum Damerau–Levenshtein distance for similarity search (further
    /// capped at ~¼ of the query length).
    pub max_distance: usize,
    /// Upper bound on the candidate list handed to the encoder — "too many
    /// of them makes it harder for the model to choose" (Section IV-B3).
    pub max_candidates: usize,
    /// Enable similarity-based generation.
    pub enable_similarity: bool,
    /// Enable n-gram generation for multi-token values.
    pub enable_ngrams: bool,
    /// Enable the handcrafted heuristics.
    pub enable_heuristics: bool,
    /// Enable database validation (disabling keeps every generated
    /// candidate — the ablation the paper discusses in Section IV-B3).
    pub enable_validation: bool,
}

impl Default for CandidateConfig {
    fn default() -> Self {
        CandidateConfig {
            max_distance: 2,
            max_candidates: 12,
            enable_similarity: true,
            enable_ngrams: true,
            enable_heuristics: true,
            enable_validation: true,
        }
    }
}

/// Runs candidate generation + validation for the extracted values.
pub fn generate_candidates(
    extracted: &[ExtractedValue],
    tokens: &[Token],
    db: &Database,
    cfg: &CandidateConfig,
) -> Vec<ValueCandidate> {
    let index = db.index();
    let mut out: Vec<ValueCandidate> = Vec::new();

    let add = |cand: ValueCandidate, out: &mut Vec<ValueCandidate>| {
        let key = cand.text.to_lowercase();
        if let Some(existing) = out.iter_mut().find(|c| c.text.to_lowercase() == key) {
            for l in &cand.locations {
                if !existing.locations.contains(l) {
                    existing.locations.push(*l);
                }
            }
            if cand.source.rank() < existing.source.rank() {
                existing.source = cand.source;
            }
        } else {
            out.push(cand);
        }
    };

    for val in extracted {
        let text = val.text.trim();
        if text.is_empty() {
            continue;
        }
        match val.kind {
            ValueKind::Number => {
                // Numeric values are exempt from validation (Section IV-B3).
                add(
                    ValueCandidate {
                        text: text.to_string(),
                        source: CandidateSource::Extracted,
                        locations: index.find_exact(text),
                        numeric: true,
                    },
                    &mut out,
                );
            }
            ValueKind::Quoted => {
                // Quoted values are exempt too (they may be LIKE fragments).
                add(
                    ValueCandidate {
                        text: text.to_string(),
                        source: CandidateSource::Extracted,
                        locations: index.find_exact(text),
                        numeric: false,
                    },
                    &mut out,
                );
            }
            ValueKind::Ordinal => {
                if cfg.enable_heuristics {
                    if let Some(n) = ordinal_value(&text.to_lowercase()) {
                        add(
                            ValueCandidate {
                                text: n.to_string(),
                                source: CandidateSource::Heuristic,
                                locations: index.find_exact(&n.to_string()),
                                numeric: true,
                            },
                            &mut out,
                        );
                    }
                }
            }
            ValueKind::Month => {
                if cfg.enable_heuristics {
                    if let Some(m) = month_number(&text.to_lowercase()) {
                        for pattern in [format!("%-{m:02}-%"), format!("{m}/%")] {
                            let hits = index.find_like_anywhere(&pattern);
                            if !hits.is_empty() || !cfg.enable_validation {
                                let mut locations: Vec<ColumnId> =
                                    hits.iter().map(|(c, _)| *c).collect();
                                locations.dedup();
                                add(
                                    ValueCandidate {
                                        text: pattern,
                                        source: CandidateSource::Heuristic,
                                        locations,
                                        numeric: false,
                                    },
                                    &mut out,
                                );
                            }
                        }
                    }
                }
            }
            ValueKind::Gender => {
                if cfg.enable_heuristics {
                    if let Some(letter) = gender_letter(&text.to_lowercase()) {
                        let full = if letter == 'F' { "Female" } else { "Male" };
                        for cand in [letter.to_string(), full.to_string()] {
                            let locations = index.find_exact(&cand);
                            if !locations.is_empty() || !cfg.enable_validation {
                                add(
                                    ValueCandidate {
                                        text: cand,
                                        source: CandidateSource::Heuristic,
                                        locations,
                                        numeric: false,
                                    },
                                    &mut out,
                                );
                            }
                        }
                    }
                }
            }
            ValueKind::Boolean => {
                if cfg.enable_heuristics {
                    if let Some(b) = boolean_value(&text.to_lowercase()) {
                        // Booleans are "often implemented by a numeric column
                        // with value 0 and 1"; restrict the location to
                        // boolean-typed columns.
                        let locations: Vec<ColumnId> = db
                            .schema()
                            .columns
                            .iter()
                            .enumerate()
                            .filter(|(_, c)| c.ty == ColumnType::Boolean)
                            .map(|(i, _)| ColumnId(i))
                            .collect();
                        if !locations.is_empty() {
                            add(
                                ValueCandidate {
                                    text: b.to_string(),
                                    source: CandidateSource::Heuristic,
                                    locations,
                                    numeric: true,
                                },
                                &mut out,
                            );
                        }
                    }
                }
            }
            ValueKind::Capitalized | ValueKind::SingleLetter | ValueKind::Statistical => {
                // Text values: exact validation, similarity, n-grams.
                let exact_locs = index.find_exact(text);
                if !exact_locs.is_empty() {
                    add(
                        ValueCandidate {
                            text: text.to_string(),
                            source: CandidateSource::Extracted,
                            locations: exact_locs,
                            numeric: false,
                        },
                        &mut out,
                    );
                } else if !cfg.enable_validation {
                    add(
                        ValueCandidate {
                            text: text.to_string(),
                            source: CandidateSource::Extracted,
                            locations: Vec::new(),
                            numeric: false,
                        },
                        &mut out,
                    );
                }
                if cfg.enable_similarity && val.kind != ValueKind::SingleLetter {
                    let cap = cfg.max_distance.min((text.chars().count() / 3).max(1));
                    for hit in index.find_similar(text, cap) {
                        if hit.distance == 0 {
                            continue; // already covered by exact
                        }
                        add(
                            ValueCandidate {
                                text: hit.value.clone(),
                                source: CandidateSource::Similarity(hit.distance),
                                locations: vec![hit.column],
                                numeric: false,
                            },
                            &mut out,
                        );
                    }
                }
                if cfg.enable_ngrams {
                    let words: Vec<&str> = text.split_whitespace().collect();
                    if words.len() > 1 {
                        for n in (1..words.len()).rev() {
                            for gram in words.windows(n) {
                                let g = gram.join(" ");
                                let locs = index.find_exact(&g);
                                if !locs.is_empty() {
                                    add(
                                        ValueCandidate {
                                            text: g,
                                            source: CandidateSource::NGram,
                                            locations: locs,
                                            numeric: false,
                                        },
                                        &mut out,
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    // Acronym heuristic for long capitalized spans ("John F Kennedy
    // International Airport" → "JFK"): initial letters of content words.
    if cfg.enable_heuristics {
        for val in extracted {
            if val.kind != ValueKind::Capitalized {
                continue;
            }
            let words: Vec<&str> = val.text.split_whitespace().collect();
            if words.len() >= 3 {
                for take in [words.len(), 3] {
                    let acro: String = words
                        .iter()
                        .take(take)
                        .filter_map(|w| w.chars().next())
                        .collect::<String>()
                        .to_uppercase();
                    if acro.len() >= 2 {
                        let locs = index.find_exact(&acro);
                        if !locs.is_empty() {
                            add(
                                ValueCandidate {
                                    text: acro,
                                    source: CandidateSource::Heuristic,
                                    locations: locs,
                                    numeric: false,
                                },
                                &mut out,
                            );
                        }
                    }
                }
            }
        }
    }

    // Suppress candidates that merely echo schema words with no DB backing
    // (e.g. a capitalized "Students" heading) — unless numeric.
    let _ = tokens;
    out.sort_by_key(|c| c.source.rank());
    out.truncate(cfg.max_candidates);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ner::{HeuristicNer, Ner};
    use crate::tokenizer::tokenize_question;
    use valuenet_schema::SchemaBuilder;
    use valuenet_storage::Datum;

    fn flights_db() -> Database {
        let schema = SchemaBuilder::new("flights")
            .table(
                "flight",
                &[
                    ("flight_id", ColumnType::Number),
                    ("destination", ColumnType::Text),
                    ("duration", ColumnType::Number),
                    ("departure_date", ColumnType::Time),
                ],
            )
            .table(
                "student",
                &[
                    ("stu_id", ColumnType::Number),
                    ("name", ColumnType::Text),
                    ("gender", ColumnType::Text),
                    ("home_country", ColumnType::Text),
                ],
            )
            .table(
                "language",
                &[("name", ColumnType::Text), ("is_official", ColumnType::Boolean)],
            )
            .build();
        let mut db = Database::new(schema);
        let flight = db.schema().table_by_name("flight").unwrap();
        let student = db.schema().table_by_name("student").unwrap();
        let language = db.schema().table_by_name("language").unwrap();
        db.insert(flight, vec![1.into(), "JFK".into(), 6.into(), "2010-08-09".into()]);
        db.insert(flight, vec![2.into(), "LAX".into(), 3.into(), "2010-09-01".into()]);
        db.insert(student, vec![1.into(), "Alice".into(), "F".into(), "France".into()]);
        db.insert(student, vec![2.into(), "Bob".into(), "M".into(), "Germany".into()]);
        db.insert(language, vec!["English".into(), Datum::Int(1)]);
        db.rebuild_index();
        db
    }

    fn candidates(q: &str, db: &Database) -> Vec<ValueCandidate> {
        let tokens = tokenize_question(q);
        let extracted = HeuristicNer.extract(q, &tokens);
        generate_candidates(&extracted, &tokens, db, &CandidateConfig::default())
    }

    fn texts(cands: &[ValueCandidate]) -> Vec<&str> {
        cands.iter().map(|c| c.text.as_str()).collect()
    }

    #[test]
    fn acronym_resolves_airport_name() {
        // The paper's Fig. 4 example: the DB stores 'JFK'.
        let db = flights_db();
        let cands = candidates(
            "Find all routes that have destination John F Kennedy International Airport with a duration of more than 6 hours",
            &db,
        );
        assert!(texts(&cands).contains(&"JFK"), "{cands:?}");
        assert!(texts(&cands).contains(&"6"), "{cands:?}");
        // JFK's location must be the destination column.
        let jfk = cands.iter().find(|c| c.text == "JFK").unwrap();
        let dest =
            db.schema().any_column_by_name("destination").map(|(_, c)| c).unwrap();
        assert!(jfk.locations.contains(&dest));
    }

    #[test]
    fn similarity_recovers_misspelling() {
        let db = flights_db();
        let cands = candidates("students from Frence", &db);
        assert!(texts(&cands).contains(&"France"), "{cands:?}");
        let france = cands.iter().find(|c| c.text == "France").unwrap();
        assert!(matches!(france.source, CandidateSource::Similarity(1)));
    }

    #[test]
    fn gender_heuristic() {
        let db = flights_db();
        let cands = candidates("How many female students are there?", &db);
        assert!(texts(&cands).contains(&"F"), "{cands:?}");
        // "Female" is not in this database, so validation prunes it.
        assert!(!texts(&cands).contains(&"Female"), "{cands:?}");
    }

    #[test]
    fn boolean_heuristic_targets_boolean_columns() {
        let db = flights_db();
        let cands = candidates("Which languages are official?", &db);
        let one = cands.iter().find(|c| c.text == "1").expect("boolean candidate");
        let official = db.schema().any_column_by_name("is_official").map(|(_, c)| c).unwrap();
        assert_eq!(one.locations, vec![official]);
    }

    #[test]
    fn month_heuristic_builds_wildcard() {
        let db = flights_db();
        let cands = candidates("Which flights left in August?", &db);
        assert!(texts(&cands).contains(&"%-08-%"), "{cands:?}");
    }

    #[test]
    fn ordinal_heuristic() {
        let db = flights_db();
        let cands = candidates("Report students in the fourth grade", &db);
        assert!(texts(&cands).contains(&"4"), "{cands:?}");
        let four = cands.iter().find(|c| c.text == "4").unwrap();
        assert!(four.numeric);
    }

    #[test]
    fn numbers_survive_without_validation() {
        // "top 3" — 3 is not in the database but must remain a candidate.
        let db = flights_db();
        let cands = candidates("List the top 3 destinations", &db);
        assert!(texts(&cands).contains(&"3"), "{cands:?}");
    }

    #[test]
    fn quoted_values_survive_without_validation() {
        let db = flights_db();
        let cands = candidates("Find all albums starting with 'goodbye'", &db);
        assert!(texts(&cands).contains(&"goodbye"), "{cands:?}");
    }

    #[test]
    fn unvalidated_text_is_dropped() {
        let db = flights_db();
        let cands = candidates("students from Atlantis", &db);
        assert!(!texts(&cands).contains(&"Atlantis"), "{cands:?}");
    }

    #[test]
    fn validation_ablation_keeps_everything() {
        let db = flights_db();
        let tokens = tokenize_question("students from Atlantis");
        let extracted = HeuristicNer.extract("students from Atlantis", &tokens);
        let cfg = CandidateConfig { enable_validation: false, ..Default::default() };
        let cands = generate_candidates(&extracted, &tokens, &db, &cfg);
        assert!(texts(&cands).contains(&"Atlantis"), "{cands:?}");
    }

    #[test]
    fn candidate_cap_respected() {
        let db = flights_db();
        let tokens = tokenize_question(
            "Alice Bob France Germany English JFK LAX on 2010-08-09 2010-09-01 6 3 1 2",
        );
        let extracted = HeuristicNer.extract("", &tokens);
        let cfg = CandidateConfig { max_candidates: 4, ..Default::default() };
        let cands = generate_candidates(&extracted, &tokens, &db, &cfg);
        assert!(cands.len() <= 4);
    }

    #[test]
    fn duplicate_candidates_merge_locations() {
        let db = flights_db();
        let cands = candidates("flights to JFK JFK", &db);
        let n = cands.iter().filter(|c| c.text == "JFK").count();
        assert_eq!(n, 1);
    }
}
