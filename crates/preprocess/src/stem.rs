//! Porter stemming.
//!
//! The paper's hint generation "simply appl[ies] stemming to all words and
//! look[s] for exact matches" (Section III-A1). This is the classic Porter
//! (1980) algorithm, steps 1a–5b, operating on ASCII lowercase.

/// Stems an English word with the Porter algorithm. Input is lowercased
/// first; non-alphabetic inputs are returned unchanged (lowercased).
pub fn porter_stem(word: &str) -> String {
    let w = word.to_lowercase();
    if w.len() <= 2 || !w.chars().all(|c| c.is_ascii_alphabetic()) {
        return w;
    }
    let mut b: Vec<u8> = w.into_bytes();
    step1a(&mut b);
    step1b(&mut b);
    step1c(&mut b);
    step2(&mut b);
    step3(&mut b);
    step4(&mut b);
    step5a(&mut b);
    step5b(&mut b);
    String::from_utf8(b).expect("ascii")
}

fn is_consonant(b: &[u8], i: usize) -> bool {
    match b[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => i == 0 || !is_consonant(b, i - 1),
        _ => true,
    }
}

/// The Porter measure *m* of `b[..len]`: the number of VC sequences.
fn measure(b: &[u8], len: usize) -> usize {
    let mut m = 0;
    let mut i = 0;
    // Skip initial consonants.
    while i < len && is_consonant(b, i) {
        i += 1;
    }
    loop {
        // Skip vowels.
        while i < len && !is_consonant(b, i) {
            i += 1;
        }
        if i >= len {
            return m;
        }
        // Skip consonants: one VC found.
        while i < len && is_consonant(b, i) {
            i += 1;
        }
        m += 1;
    }
}

fn has_vowel(b: &[u8], len: usize) -> bool {
    (0..len).any(|i| !is_consonant(b, i))
}

fn ends_double_consonant(b: &[u8]) -> bool {
    let n = b.len();
    n >= 2 && b[n - 1] == b[n - 2] && is_consonant(b, n - 1)
}

/// Consonant-vowel-consonant ending where the final consonant is not w/x/y.
fn ends_cvc(b: &[u8], len: usize) -> bool {
    if len < 3 {
        return false;
    }
    let (i, j, k) = (len - 3, len - 2, len - 1);
    is_consonant(b, i)
        && !is_consonant(b, j)
        && is_consonant(b, k)
        && !matches!(b[k], b'w' | b'x' | b'y')
}

fn ends_with(b: &[u8], suffix: &str) -> bool {
    b.len() >= suffix.len() && &b[b.len() - suffix.len()..] == suffix.as_bytes()
}

/// If `b` ends with `suffix` and the stem before it has measure > `min_m`,
/// replace the suffix. Returns whether the suffix matched (even if measure
/// blocked the replacement).
fn replace_m(b: &mut Vec<u8>, suffix: &str, replacement: &str, min_m: usize) -> bool {
    if !ends_with(b, suffix) {
        return false;
    }
    let stem_len = b.len() - suffix.len();
    if measure(b, stem_len) > min_m {
        b.truncate(stem_len);
        b.extend_from_slice(replacement.as_bytes());
    }
    true
}

fn step1a(b: &mut Vec<u8>) {
    // "sses" → "ss" and "ies" → "i" both drop two characters.
    if ends_with(b, "sses") || ends_with(b, "ies") {
        b.truncate(b.len() - 2);
    } else if ends_with(b, "ss") {
        // keep
    } else if ends_with(b, "s") {
        b.truncate(b.len() - 1);
    }
}

fn step1b(b: &mut Vec<u8>) {
    if ends_with(b, "eed") {
        let stem = b.len() - 3;
        if measure(b, stem) > 0 {
            b.truncate(b.len() - 1);
        }
        return;
    }
    let matched = if ends_with(b, "ed") && has_vowel(b, b.len() - 2) {
        b.truncate(b.len() - 2);
        true
    } else if ends_with(b, "ing") && has_vowel(b, b.len() - 3) {
        b.truncate(b.len() - 3);
        true
    } else {
        false
    };
    if matched {
        if ends_with(b, "at") || ends_with(b, "bl") || ends_with(b, "iz") {
            b.push(b'e');
        } else if ends_double_consonant(b) && !matches!(b[b.len() - 1], b'l' | b's' | b'z') {
            b.truncate(b.len() - 1);
        } else if measure(b, b.len()) == 1 && ends_cvc(b, b.len()) {
            b.push(b'e');
        }
    }
}

fn step1c(b: &mut [u8]) {
    let n = b.len();
    if n >= 2 && b[n - 1] == b'y' && has_vowel(b, n - 1) {
        b[n - 1] = b'i';
    }
}

fn step2(b: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    ];
    for (s, r) in RULES {
        if replace_m(b, s, r, 0) {
            return;
        }
    }
}

fn step3(b: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    ];
    for (s, r) in RULES {
        if replace_m(b, s, r, 0) {
            return;
        }
    }
}

fn step4(b: &mut Vec<u8>) {
    const SUFFIXES: &[&str] = &[
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ou",
        "ism", "ate", "iti", "ous", "ive", "ize",
    ];
    for s in SUFFIXES {
        if ends_with(b, s) {
            let stem = b.len() - s.len();
            if measure(b, stem) > 1 {
                b.truncate(stem);
            }
            return;
        }
    }
    // Special case: -ion preceded by s or t.
    if ends_with(b, "ion") {
        let stem = b.len() - 3;
        if stem > 0 && matches!(b[stem - 1], b's' | b't') && measure(b, stem) > 1 {
            b.truncate(stem);
        }
    }
}

fn step5a(b: &mut Vec<u8>) {
    if ends_with(b, "e") {
        let stem = b.len() - 1;
        let m = measure(b, stem);
        if m > 1 || (m == 1 && !ends_cvc(b, stem)) {
            b.truncate(stem);
        }
    }
}

fn step5b(b: &mut Vec<u8>) {
    if b.len() >= 2
        && b[b.len() - 1] == b'l'
        && ends_double_consonant(b)
        && measure(b, b.len()) > 1
    {
        b.truncate(b.len() - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_vectors() {
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("digitizer", "digit"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("formaliti", "formal"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("activate", "activ"),
            ("effective", "effect"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, expected) in cases {
            assert_eq!(porter_stem(input), expected, "stem({input})");
        }
    }

    #[test]
    fn domain_words_match_after_stemming() {
        // The hint generator relies on these equivalences.
        assert_eq!(porter_stem("pets"), porter_stem("pet"));
        assert_eq!(porter_stem("students"), porter_stem("student"));
        assert_eq!(porter_stem("countries"), porter_stem("countri"));
        assert_eq!(porter_stem("flights"), porter_stem("flight"));
        assert_eq!(porter_stem("destinations"), porter_stem("destination"));
    }

    #[test]
    fn short_and_non_alpha_unchanged() {
        assert_eq!(porter_stem("at"), "at");
        assert_eq!(porter_stem("20"), "20");
        assert_eq!(porter_stem("A340-300"), "a340-300");
        assert_eq!(porter_stem("JFK"), "jfk");
    }
}
