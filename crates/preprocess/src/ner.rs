//! Named-entity recognition for value extraction (paper Section IV-B1).
//!
//! Two backends behind the [`Ner`] trait:
//!
//! - [`HeuristicNer`] — the paper's deterministic heuristics: quoted content,
//!   capitalised term sequences, single letters, plus numbers, date-like
//!   tokens, ordinal words and month names.
//! - [`StatisticalNer`] — a trainable character-n-gram naive Bayes token
//!   classifier, the laptop-scale stand-in for the paper's transformer NER
//!   (and its commercial NER API); it learns which token shapes are values
//!   from the training corpus and is combined with the heuristics, exactly
//!   as the paper augments its stochastic model.

use crate::tokenizer::Token;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How an extracted value was recognised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueKind {
    /// Inside quotes (`'Ha'`).
    Quoted,
    /// A run of capitalised terms (`John F Kennedy International Airport`).
    Capitalized,
    /// A single letter (`M`).
    SingleLetter,
    /// A number (possibly a date or time).
    Number,
    /// An ordinal word or suffix form (`fourth`, `9th`).
    Ordinal,
    /// A month name (`August`).
    Month,
    /// A gendered word (`female`).
    Gender,
    /// A boolean-ish word (`true`, `official`).
    Boolean,
    /// Flagged by the statistical model.
    Statistical,
}

/// A potential value span extracted from the question.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractedValue {
    /// The raw text of the span.
    pub text: String,
    /// How it was recognised.
    pub kind: ValueKind,
}

/// A value extractor.
pub trait Ner {
    /// Extracts potential value spans from a question.
    fn extract(&self, question: &str, tokens: &[Token]) -> Vec<ExtractedValue>;
}

/// Common English stopwords never treated as values on their own.
const STOPWORDS: &[&str] = &[
    "the", "a", "an", "of", "in", "on", "at", "for", "to", "by", "with", "and", "or", "is",
    "are", "was", "were", "be", "been", "who", "whose", "which", "what", "when", "where", "how",
    "many", "much", "all", "each", "every", "show", "find", "list", "give", "me", "their",
    "than", "that", "have", "has", "had", "do", "does", "did", "not", "from", "as", "it",
    "its", "there", "please", "tell", "return", "report", "display", "whats", "number",
];

const ORDINALS: &[(&str, i64)] = &[
    ("first", 1),
    ("second", 2),
    ("third", 3),
    ("fourth", 4),
    ("fifth", 5),
    ("sixth", 6),
    ("seventh", 7),
    ("eighth", 8),
    ("ninth", 9),
    ("tenth", 10),
    ("eleventh", 11),
    ("twelfth", 12),
];

const MONTHS: &[(&str, u32)] = &[
    ("january", 1),
    ("february", 2),
    ("march", 3),
    ("april", 4),
    ("may", 5),
    ("june", 6),
    ("july", 7),
    ("august", 8),
    ("september", 9),
    ("october", 10),
    ("november", 11),
    ("december", 12),
];

const FEMALE_WORDS: &[&str] = &["female", "females", "woman", "women", "girl", "girls"];
const MALE_WORDS: &[&str] = &["male", "males", "man", "men", "boy", "boys"];
const TRUE_WORDS: &[&str] = &["true", "yes", "official"];
const FALSE_WORDS: &[&str] = &["false", "no", "unofficial"];

/// Looks up an ordinal word (`fourth`) or suffix form (`4th`, `fourth-grade`).
pub(crate) fn ordinal_value(lower: &str) -> Option<i64> {
    let base = lower.split('-').next().unwrap_or(lower);
    if let Some(&(_, n)) = ORDINALS.iter().find(|(w, _)| *w == base) {
        return Some(n);
    }
    let digits: String = base.chars().take_while(|c| c.is_ascii_digit()).collect();
    let rest = &base[digits.len()..];
    if !digits.is_empty() && matches!(rest, "st" | "nd" | "rd" | "th") {
        return digits.parse().ok();
    }
    None
}

/// Looks up a month name.
pub(crate) fn month_number(lower: &str) -> Option<u32> {
    MONTHS.iter().find(|(m, _)| *m == lower).map(|&(_, n)| n)
}

pub(crate) fn gender_letter(lower: &str) -> Option<char> {
    if FEMALE_WORDS.contains(&lower) {
        Some('F')
    } else if MALE_WORDS.contains(&lower) {
        Some('M')
    } else {
        None
    }
}

pub(crate) fn boolean_value(lower: &str) -> Option<i64> {
    if TRUE_WORDS.contains(&lower) {
        Some(1)
    } else if FALSE_WORDS.contains(&lower) {
        Some(0)
    } else {
        None
    }
}

/// The paper's deterministic extraction heuristics.
#[derive(Debug, Default, Clone)]
pub struct HeuristicNer;

impl HeuristicNer {
    /// A new heuristic extractor.
    pub fn new() -> Self {
        HeuristicNer
    }
}

impl Ner for HeuristicNer {
    fn extract(&self, _question: &str, tokens: &[Token]) -> Vec<ExtractedValue> {
        let mut out: Vec<ExtractedValue> = Vec::new();
        let push = |text: String, kind: ValueKind, out: &mut Vec<ExtractedValue>| {
            if !out.iter().any(|v| v.text == text && v.kind == kind) {
                out.push(ExtractedValue { text, kind });
            }
        };
        // (1) Quoted content.
        for t in tokens {
            if t.quoted {
                push(t.text.clone(), ValueKind::Quoted, &mut out);
            }
        }
        // (2) Capitalised sequences (skipping the sentence-initial token,
        //     which is capitalised for grammatical reasons).
        let mut i = 0;
        while i < tokens.len() {
            let t = &tokens[i];
            let eligible = !t.quoted
                && i > 0
                && t.is_capitalized()
                && !STOPWORDS.contains(&t.lower.as_str());
            if eligible {
                let start = i;
                // Allow single lowercase connectives ("of") inside a run.
                let mut end = i + 1;
                while end < tokens.len() {
                    let n = &tokens[end];
                    let run_word = !n.quoted
                        && n.is_capitalized()
                        && !STOPWORDS.contains(&n.lower.as_str());
                    // Single lowercase connectives ("of") may join a run.
                    let connective = end + 1 < tokens.len()
                        && matches!(n.lower.as_str(), "of" | "de" | "f")
                        && tokens[end + 1].is_capitalized();
                    if run_word || connective {
                        end += 1;
                    } else {
                        break;
                    }
                }
                let words: Vec<&str> = tokens[start..end].iter().map(|t| t.text.as_str()).collect();
                push(words.join(" "), ValueKind::Capitalized, &mut out);
                i = end;
            } else {
                i += 1;
            }
        }
        // (3) Single letters.
        for (i, t) in tokens.iter().enumerate() {
            if !t.quoted && t.is_single_letter() && i > 0 && t.text != "a" && t.text != "A" && t.text != "I" {
                push(t.text.clone(), ValueKind::SingleLetter, &mut out);
            }
        }
        // Numbers, dates, times.
        for t in tokens.iter() {
            let numeric_like = t.text.chars().any(|c| c.is_ascii_digit())
                && t.text.chars().all(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '/' | ':'));
            if !t.quoted && numeric_like && ordinal_value(&t.lower).is_none() {
                push(t.text.clone(), ValueKind::Number, &mut out);
            }
        }
        // Ordinals, months, genders, booleans.
        for t in tokens {
            if t.quoted {
                continue;
            }
            if ordinal_value(&t.lower).is_some() {
                push(t.text.clone(), ValueKind::Ordinal, &mut out);
            }
            if month_number(&t.lower).is_some() && t.is_capitalized() {
                push(t.text.clone(), ValueKind::Month, &mut out);
            }
            if gender_letter(&t.lower).is_some() {
                push(t.text.clone(), ValueKind::Gender, &mut out);
            }
            if boolean_value(&t.lower).is_some() {
                push(t.text.clone(), ValueKind::Boolean, &mut out);
            }
        }
        out
    }
}

/// A character-n-gram naive Bayes token classifier: the trainable NER.
///
/// Features are the token's character trigrams plus shape features
/// (capitalised / digit / length bucket). Trained on (token, is-value)
/// pairs extracted from a labelled corpus.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StatisticalNer {
    value_counts: HashMap<String, f64>,
    other_counts: HashMap<String, f64>,
    value_total: f64,
    other_total: f64,
    value_docs: f64,
    other_docs: f64,
}

impl StatisticalNer {
    /// An untrained model (extracts nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether any training examples have been observed.
    pub fn is_trained(&self) -> bool {
        self.value_docs + self.other_docs > 0.0
    }

    fn features(token: &Token) -> Vec<String> {
        let mut feats = Vec::new();
        let padded = format!("^{}$", token.lower);
        let chars: Vec<char> = padded.chars().collect();
        for w in chars.windows(3) {
            feats.push(w.iter().collect());
        }
        if token.is_capitalized() {
            feats.push("<cap>".into());
        }
        if token.is_numeric() {
            feats.push("<num>".into());
        }
        if token.is_single_letter() {
            feats.push("<single>".into());
        }
        feats.push(format!("<len{}>", token.text.len().min(10)));
        feats
    }

    /// Observes one labelled token.
    pub fn observe(&mut self, token: &Token, is_value: bool) {
        let (counts, total, docs) = if is_value {
            (&mut self.value_counts, &mut self.value_total, &mut self.value_docs)
        } else {
            (&mut self.other_counts, &mut self.other_total, &mut self.other_docs)
        };
        for f in Self::features(token) {
            *counts.entry(f).or_insert(0.0) += 1.0;
            *total += 1.0;
        }
        *docs += 1.0;
    }

    /// Trains from whole questions with their known value texts.
    pub fn fit(&mut self, examples: &[(Vec<Token>, Vec<String>)]) {
        for (tokens, values) in examples {
            let value_words: Vec<String> = values
                .iter()
                .flat_map(|v| v.to_lowercase().split_whitespace().map(str::to_string).collect::<Vec<_>>())
                .collect();
            for t in tokens {
                self.observe(t, value_words.contains(&t.lower));
            }
        }
    }

    /// Posterior probability that `token` is (part of) a value.
    pub fn score(&self, token: &Token) -> f64 {
        if !self.is_trained() {
            return 0.0;
        }
        let vocab = (self.value_counts.len() + self.other_counts.len()) as f64 + 1.0;
        let mut log_v = (self.value_docs / (self.value_docs + self.other_docs)).ln();
        let mut log_o = (self.other_docs / (self.value_docs + self.other_docs)).ln();
        for f in Self::features(token) {
            let cv = self.value_counts.get(&f).copied().unwrap_or(0.0);
            let co = self.other_counts.get(&f).copied().unwrap_or(0.0);
            log_v += ((cv + 1.0) / (self.value_total + vocab)).ln();
            log_o += ((co + 1.0) / (self.other_total + vocab)).ln();
        }
        1.0 / (1.0 + (log_o - log_v).exp())
    }
}

impl Ner for StatisticalNer {
    fn extract(&self, question: &str, tokens: &[Token]) -> Vec<ExtractedValue> {
        // Heuristics first (the paper augments the stochastic model with
        // them), then statistically flagged tokens.
        let mut out = HeuristicNer.extract(question, tokens);
        for t in tokens {
            if t.quoted || STOPWORDS.contains(&t.lower.as_str()) {
                continue;
            }
            if self.score(t) > 0.5 && !out.iter().any(|v| v.text == t.text) {
                out.push(ExtractedValue { text: t.text.clone(), kind: ValueKind::Statistical });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize_question;

    fn extract(q: &str) -> Vec<ExtractedValue> {
        let tokens = tokenize_question(q);
        HeuristicNer.extract(q, &tokens)
    }

    fn has(vals: &[ExtractedValue], text: &str, kind: ValueKind) -> bool {
        vals.iter().any(|v| v.text == text && v.kind == kind)
    }

    #[test]
    fn quoted_content() {
        let vals = extract("Whose head's name has the substring 'Ha'?");
        assert!(has(&vals, "Ha", ValueKind::Quoted), "{vals:?}");
    }

    #[test]
    fn capitalized_sequences() {
        let vals = extract("Show all flight numbers with aircraft Airbus A340-300.");
        assert!(has(&vals, "Airbus A340-300", ValueKind::Capitalized), "{vals:?}");
        let vals =
            extract("Find all routes that have destination John F Kennedy International Airport");
        assert!(
            has(&vals, "John F Kennedy International Airport", ValueKind::Capitalized),
            "{vals:?}"
        );
    }

    #[test]
    fn sentence_initial_capital_skipped() {
        let vals = extract("Show all students.");
        assert!(!vals.iter().any(|v| v.text == "Show"), "{vals:?}");
    }

    #[test]
    fn single_letters() {
        let vals = extract("employees whose first name does not contain the letter M");
        assert!(has(&vals, "M", ValueKind::SingleLetter), "{vals:?}");
        // "a" and "I" are never value letters.
        let vals = extract("students with a pet that I like");
        assert!(!vals.iter().any(|v| v.kind == ValueKind::SingleLetter), "{vals:?}");
    }

    #[test]
    fn numbers_and_dates() {
        let vals = extract("pets older than 20 born on 2010-08-09");
        assert!(has(&vals, "20", ValueKind::Number), "{vals:?}");
        assert!(has(&vals, "2010-08-09", ValueKind::Number), "{vals:?}");
    }

    #[test]
    fn ordinals_months_gender_boolean() {
        let vals = extract("total students in each fourth-grade classroom");
        assert!(has(&vals, "fourth-grade", ValueKind::Ordinal), "{vals:?}");
        let vals = extract("trips starting from the 9th of August 2010");
        assert!(has(&vals, "9th", ValueKind::Ordinal), "{vals:?}");
        assert!(has(&vals, "August", ValueKind::Month), "{vals:?}");
        let vals = extract("Find all female students who study 'biology'");
        assert!(has(&vals, "female", ValueKind::Gender), "{vals:?}");
        assert!(has(&vals, "biology", ValueKind::Quoted), "{vals:?}");
        let vals = extract("nations where English is an official language");
        assert!(has(&vals, "official", ValueKind::Boolean), "{vals:?}");
        assert!(has(&vals, "English", ValueKind::Capitalized), "{vals:?}");
    }

    #[test]
    fn ordinal_parsing() {
        assert_eq!(ordinal_value("fourth"), Some(4));
        assert_eq!(ordinal_value("fourth-grade"), Some(4));
        assert_eq!(ordinal_value("9th"), Some(9));
        assert_eq!(ordinal_value("1st"), Some(1));
        assert_eq!(ordinal_value("22nd"), Some(22));
        assert_eq!(ordinal_value("month"), None);
        assert_eq!(ordinal_value("4"), None);
    }

    #[test]
    fn statistical_ner_learns_value_shapes() {
        let mut ner = StatisticalNer::new();
        assert!(!ner.is_trained());
        // Train: airport codes and country names are values; verbs are not.
        let examples: Vec<(Vec<Token>, Vec<String>)> = [
            ("show flights to JFK", vec!["JFK"]),
            ("flights to LAX today", vec!["LAX"]),
            ("students from France", vec!["France"]),
            ("students from Germany", vec!["Germany"]),
            ("list pets by weight", vec![]),
            ("count all students", vec![]),
            ("show the flights", vec![]),
        ]
        .into_iter()
        .map(|(q, vs)| {
            (tokenize_question(q), vs.into_iter().map(str::to_string).collect())
        })
        .collect();
        ner.fit(&examples);
        assert!(ner.is_trained());
        let toks = tokenize_question("what flights go to SFO");
        let sfo = toks.iter().find(|t| t.text == "SFO").unwrap();
        let go = toks.iter().find(|t| t.text == "go").unwrap();
        assert!(ner.score(sfo) > ner.score(go), "SFO should look more value-like than 'go'");
    }
}
