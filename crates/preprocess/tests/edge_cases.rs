//! Tokenizer and NER edge cases: empty input, unicode identifiers, quoted
//! multi-word literals, and numeric-looking strings. These pin down the
//! behaviours the fuzz generator and the value-candidate pipeline rely on.

use valuenet_preprocess::{
    preprocess, tokenize_question, CandidateConfig, HeuristicNer, Ner, ValueKind,
};
use valuenet_schema::{ColumnType, SchemaBuilder};
use valuenet_storage::Database;

fn extract(q: &str) -> Vec<valuenet_preprocess::ExtractedValue> {
    let tokens = tokenize_question(q);
    HeuristicNer.extract(q, &tokens)
}

fn demo_db() -> Database {
    let schema = SchemaBuilder::new("d")
        .table("student", &[("stu_id", ColumnType::Number), ("name", ColumnType::Text)])
        .build();
    let mut db = Database::new(schema);
    let s = db.schema().table_by_name("student").unwrap();
    db.insert(s, vec![1.into(), "Zürich".into()]);
    db.rebuild_index();
    db
}

#[test]
fn empty_question_yields_no_tokens_values_or_candidates() {
    assert!(tokenize_question("").is_empty());
    assert!(extract("").is_empty());
    // Whitespace and bare punctuation are equally empty.
    assert!(tokenize_question(" \t\n  ?!.,;  ").is_empty());
    assert!(extract(" \t\n  ?!.,;  ").is_empty());
    // The full pipeline must not panic or invent candidates on empty input.
    let db = demo_db();
    let pre = preprocess("", &db, &HeuristicNer::new(), &CandidateConfig::default());
    assert!(pre.tokens.is_empty());
    assert!(pre.candidates.is_empty());
}

#[test]
fn unicode_identifiers_tokenize_as_single_words() {
    let toks = tokenize_question("Étudiants från Zürich whose name is Müller-Lüdenscheidt");
    let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
    assert!(texts.contains(&"Étudiants"), "{texts:?}");
    assert!(texts.contains(&"Zürich"), "{texts:?}");
    // Internal hyphens join alphanumeric runs, for unicode words too.
    assert!(texts.contains(&"Müller-Lüdenscheidt"), "{texts:?}");
    // Unicode capitalisation drives the capitalized-run heuristic.
    let z = toks.iter().find(|t| t.text == "Zürich").unwrap();
    assert!(z.is_capitalized());
    assert_eq!(z.lower, "zürich");
    let vals = extract("students from Zürich");
    assert!(
        vals.iter().any(|v| v.text == "Zürich" && v.kind == ValueKind::Capitalized),
        "{vals:?}"
    );
}

#[test]
fn curly_and_straight_quotes_capture_multiword_literals() {
    for q in [
        "albums called 'Goodbye Yellow Brick Road' please",
        "albums called \"Goodbye Yellow Brick Road\" please",
        "albums called \u{201c}Goodbye Yellow Brick Road\u{201d} please",
    ] {
        let toks = tokenize_question(q);
        let quoted: Vec<_> = toks.iter().filter(|t| t.quoted).collect();
        assert_eq!(quoted.len(), 1, "{q}: {toks:?}");
        assert_eq!(quoted[0].text, "Goodbye Yellow Brick Road");
        let vals = extract(q);
        assert!(
            vals.iter()
                .any(|v| v.text == "Goodbye Yellow Brick Road" && v.kind == ValueKind::Quoted),
            "{vals:?}"
        );
    }
}

#[test]
fn quoted_literal_is_not_reparsed_as_number_or_capitalized_run() {
    let vals = extract("rooms with code '42' in New York");
    // The quoted span keeps its Quoted kind and does not also surface as a
    // Number; the capitalized run outside the quotes still does.
    assert!(vals.iter().any(|v| v.text == "42" && v.kind == ValueKind::Quoted), "{vals:?}");
    assert!(!vals.iter().any(|v| v.text == "42" && v.kind == ValueKind::Number), "{vals:?}");
    assert!(
        vals.iter().any(|v| v.text == "New York" && v.kind == ValueKind::Capitalized),
        "{vals:?}"
    );
}

#[test]
fn numeric_looking_strings_keep_their_shape() {
    // Dates, times and decimals stay single tokens and extract as numbers.
    let vals = extract("flights on 2010-08-09 at 9:30 weighing 4.5");
    for text in ["2010-08-09", "9:30", "4.5"] {
        assert!(
            vals.iter().any(|v| v.text == text && v.kind == ValueKind::Number),
            "{text}: {vals:?}"
        );
    }
    // Dotted version-like strings hold together rather than splitting.
    let toks = tokenize_question("release 1.2.3 is out");
    assert!(toks.iter().any(|t| t.text == "1.2.3" && t.is_numeric()), "{toks:?}");
    // A trailing dot is sentence punctuation, not part of the number.
    let toks = tokenize_question("older than 20.");
    assert!(toks.iter().any(|t| t.text == "20"), "{toks:?}");
    assert!(!toks.iter().any(|t| t.text == "20."), "{toks:?}");
    // Ordinal suffix forms are Ordinal, not Number.
    let vals = extract("the 9th flight");
    assert!(vals.iter().any(|v| v.text == "9th" && v.kind == ValueKind::Ordinal), "{vals:?}");
    assert!(!vals.iter().any(|v| v.kind == ValueKind::Number), "{vals:?}");
    // is_numeric is strict: digits and dots only.
    let toks = tokenize_question("on 2010-08-09 take A340-300 to 20");
    let get = |s: &str| toks.iter().find(|t| t.text == s).unwrap();
    assert!(get("20").is_numeric());
    assert!(!get("2010-08-09").is_numeric());
    assert!(!get("A340-300").is_numeric());
}
