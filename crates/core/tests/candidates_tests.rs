//! Unit tests for candidate assembly and mode semantics (no training).

use valuenet_core::{assemble_candidates, ValueMode};
use valuenet_preprocess::{preprocess, CandidateConfig, HeuristicNer};
use valuenet_schema::{ColumnType, SchemaBuilder};
use valuenet_storage::Database;

fn db() -> Database {
    let schema = SchemaBuilder::new("d")
        .table(
            "student",
            &[
                ("stu_id", ColumnType::Number),
                ("name", ColumnType::Text),
                ("age", ColumnType::Number),
                ("home_country", ColumnType::Text),
            ],
        )
        .build();
    let mut db = Database::new(schema);
    let s = db.schema().table_by_name("student").unwrap();
    db.insert(s, vec![1.into(), "Alice".into(), 21.into(), "France".into()]);
    db.insert(s, vec![2.into(), "Bob".into(), 19.into(), "Germany".into()]);
    db.rebuild_index();
    db
}

fn pre(db: &Database, q: &str) -> valuenet_preprocess::Preprocessed {
    preprocess(q, db, &HeuristicNer::new(), &CandidateConfig::default())
}

#[test]
fn light_mode_uses_exactly_the_gold_values() {
    let db = db();
    let p = pre(&db, "How many students are from France older than 20?");
    let gold = vec!["France".to_string(), "20".to_string()];
    let cands = assemble_candidates(&db, &p, ValueMode::Light, Some(&gold), false);
    let texts: Vec<&str> = cands.iter().map(|(t, _)| t.as_str()).collect();
    assert_eq!(texts, vec!["France", "20"]);
    // Gold values present in the DB get located.
    assert!(!cands[0].1.is_empty(), "France should be located in home_country");
}

#[test]
fn light_mode_dedupes_gold_values() {
    let db = db();
    let p = pre(&db, "students between 20 and 20");
    let gold = vec!["20".to_string(), "20".to_string()];
    let cands = assemble_candidates(&db, &p, ValueMode::Light, Some(&gold), false);
    assert_eq!(cands.len(), 1);
}

#[test]
#[should_panic(expected = "requires the gold value options")]
fn light_mode_without_gold_panics() {
    let db = db();
    let p = pre(&db, "How many students?");
    assemble_candidates(&db, &p, ValueMode::Light, None, false);
}

#[test]
fn full_mode_includes_pipeline_candidates_and_constant_one() {
    let db = db();
    let p = pre(&db, "How many students are from France?");
    let cands = assemble_candidates(&db, &p, ValueMode::Full, None, false);
    let texts: Vec<&str> = cands.iter().map(|(t, _)| t.as_str()).collect();
    assert!(texts.contains(&"France"));
    assert!(texts.contains(&"1"), "the implicit LIMIT-1 candidate is always present");
}

#[test]
fn full_mode_training_appends_missing_gold() {
    let db = db();
    let p = pre(&db, "students from nowhere in particular");
    let gold = vec!["Germany".to_string()];
    // At inference time the gold is not injected...
    let eval_cands = assemble_candidates(&db, &p, ValueMode::Full, Some(&gold), false);
    assert!(!eval_cands.iter().any(|(t, _)| t == "Germany"));
    // ...but during training it is, so the value pointer has a target.
    let train_cands = assemble_candidates(&db, &p, ValueMode::Full, Some(&gold), true);
    assert!(train_cands.iter().any(|(t, _)| t == "Germany"));
}

#[test]
fn novalue_mode_is_only_the_placeholder() {
    let db = db();
    let p = pre(&db, "How many students are from France?");
    let cands = assemble_candidates(&db, &p, ValueMode::NoValue, None, false);
    assert_eq!(cands.len(), 1);
    assert_eq!(cands[0].0, "1");
}

#[test]
fn mode_labels() {
    assert_eq!(ValueMode::Light.label(), "ValueNet light");
    assert_eq!(ValueMode::Full.label(), "ValueNet");
    assert_eq!(ValueMode::NoValue.label(), "NoValue baseline");
}

#[test]
fn candidate_case_insensitive_dedup() {
    let db = db();
    let p = pre(&db, "q");
    let gold = vec!["france".to_string(), "FRANCE".to_string()];
    let cands = assemble_candidates(&db, &p, ValueMode::Light, Some(&gold), false);
    assert_eq!(cands.len(), 1);
}
