//! End-to-end model tests: a tiny model trained on a tiny corpus must
//! drive its loss down and translate held-out questions.

use valuenet_core::{train, ModelConfig, TrainConfig, ValueMode, ValueNetModel};
use valuenet_dataset::{generate, CorpusConfig};
use valuenet_eval::{execution_accuracy, ExecOutcome};
use valuenet_sql::parse_select;

fn tiny_corpus() -> valuenet_dataset::Corpus {
    generate(&CorpusConfig {
        seed: 11,
        train_size: 80,
        dev_size: 24,
        rows_per_table: 14,
        ..CorpusConfig::default()
    })
}

fn tiny_train_cfg(epochs: usize) -> TrainConfig {
    TrainConfig { epochs, verbose: false, ..Default::default() }
}

#[test]
fn loss_decreases_during_training() {
    let corpus = tiny_corpus();
    let (_, report) = train(&corpus, ValueMode::Light, ModelConfig::tiny(), &tiny_train_cfg(4));
    assert!(report.trained_samples > 60, "too many skipped: {report:?}");
    let first = report.epoch_losses.first().copied().unwrap();
    let last = report.epoch_losses.last().copied().unwrap();
    assert!(
        last < first * 0.7,
        "training did not reduce loss: {:?}",
        report.epoch_losses
    );
}

#[test]
fn trained_model_translates_training_questions() {
    let corpus = tiny_corpus();
    let (pipeline, _) =
        train(&corpus, ValueMode::Light, ModelConfig::tiny(), &tiny_train_cfg(14));
    // On *training* questions (memorisation check) the model should get a
    // decent share right under Execution Accuracy.
    let mut correct = 0;
    let n = 30.min(corpus.train.len());
    for sample in corpus.train.iter().take(n) {
        let db = corpus.db(sample);
        let pred = pipeline.translate(db, &sample.question, Some(&sample.values));
        let gold = parse_select(&sample.sql).unwrap();
        if let Some(sql) = &pred.sql {
            if execution_accuracy(db, sql, &gold) == ExecOutcome::Correct {
                correct += 1;
            }
        }
    }
    assert!(
        correct * 2 >= n,
        "trained model solved only {correct}/{n} training questions"
    );
}

#[test]
fn pipeline_produces_timings_and_results() {
    let corpus = tiny_corpus();
    let (pipeline, _) =
        train(&corpus, ValueMode::Light, ModelConfig::tiny(), &tiny_train_cfg(2));
    let sample = &corpus.train[0];
    let pred = pipeline.translate(corpus.db(sample), &sample.question, Some(&sample.values));
    assert!(!pred.actions.is_empty(), "decoder produced nothing");
    assert!(pred.semql.is_some(), "actions did not parse into SemQL");
    let t = pred.timings;
    assert!(t.total() > std::time::Duration::ZERO);
    // Every stage must have been exercised.
    assert!(t.encoder_decoder > std::time::Duration::ZERO);
}

#[test]
fn full_mode_trains_and_translates() {
    let corpus = tiny_corpus();
    let (pipeline, report) =
        train(&corpus, ValueMode::Full, ModelConfig::tiny(), &tiny_train_cfg(3));
    assert!(report.trained_samples > 0);
    let sample = &corpus.train[1];
    // Full mode gets no gold values: the candidate pipeline supplies them.
    let pred = pipeline.translate(corpus.db(sample), &sample.question, None);
    assert!(!pred.candidates.is_empty(), "candidate list empty (constant '1' missing?)");
    assert!(pred.candidates.iter().any(|c| c == "1"));
}

#[test]
fn model_serialization_round_trip_preserves_predictions() {
    let corpus = tiny_corpus();
    let (pipeline, _) =
        train(&corpus, ValueMode::Light, ModelConfig::tiny(), &tiny_train_cfg(2));
    let json = pipeline.model.to_json();
    let restored = ValueNetModel::from_json(&json).unwrap();
    assert_eq!(restored.num_weights(), pipeline.model.num_weights());

    // Identical predictions before and after the round trip.
    let sample = &corpus.train[0];
    let db = corpus.db(sample);
    let pred1 = pipeline.translate(db, &sample.question, Some(&sample.values));
    let pipeline2 = valuenet_core::Pipeline::new(
        restored,
        ValueMode::Light,
        pipeline.ner.clone(),
    );
    let pred2 = pipeline2.translate(db, &sample.question, Some(&sample.values));
    assert_eq!(pred1.actions, pred2.actions);
}

#[test]
fn novalue_baseline_only_sees_placeholder() {
    let corpus = tiny_corpus();
    let (mut pipeline, _) =
        train(&corpus, ValueMode::Full, ModelConfig::tiny(), &tiny_train_cfg(2));
    pipeline.mode = ValueMode::NoValue;
    let sample = &corpus.train[0];
    let pred = pipeline.translate(corpus.db(sample), &sample.question, None);
    assert_eq!(pred.candidates, vec!["1"]);
    for v in pred.selected_values().expect("no dangling value pointers") {
        assert_eq!(v, "1");
    }
}

#[test]
fn beam_search_contains_greedy_and_guides_by_execution() {
    let corpus = tiny_corpus();
    let (mut pipeline, _) =
        train(&corpus, ValueMode::Light, ModelConfig::tiny(), &tiny_train_cfg(8));
    let sample = &corpus.train[0];
    let db = corpus.db(sample);

    // Greedy prediction.
    let greedy = pipeline.translate(db, &sample.question, Some(&sample.values));

    // Beam width 4: the best hypothesis set must contain the greedy one.
    pipeline.model.config.beam_width = 4;
    let beam = pipeline.translate(db, &sample.question, Some(&sample.values));
    assert!(!beam.actions.is_empty());
    assert!(beam.semql.is_some(), "beam search produced no tree");

    // Execution-guided selection can only help: if greedy executed, beam
    // must too.
    if greedy.result.is_some() {
        assert!(beam.result.is_some(), "beam lost an executable prediction");
    }
}

#[test]
fn beam_accuracy_not_worse_than_greedy() {
    let corpus = tiny_corpus();
    let (mut pipeline, _) =
        train(&corpus, ValueMode::Light, ModelConfig::tiny(), &tiny_train_cfg(10));
    let score = |pipeline: &valuenet_core::Pipeline| {
        let mut correct = 0;
        for sample in corpus.train.iter().take(25) {
            let db = corpus.db(sample);
            let pred = pipeline.translate(db, &sample.question, Some(&sample.values));
            let gold = parse_select(&sample.sql).unwrap();
            if let Some(sql) = &pred.sql {
                if execution_accuracy(db, sql, &gold) == ExecOutcome::Correct {
                    correct += 1;
                }
            }
        }
        correct
    };
    let greedy_score = score(&pipeline);
    pipeline.model.config.beam_width = 4;
    let beam_score = score(&pipeline);
    assert!(
        beam_score + 2 >= greedy_score,
        "beam search regressed badly: greedy {greedy_score}, beam {beam_score}"
    );
}
