//! Cross-request batched decoding invariants on fixed-seed micro models.
//!
//! The serving engine merges the live hypotheses of *several concurrent
//! requests* into one step batch per LSTM/attention/pointer pass
//! (`decode_beam_multi` / `decode_greedy_multi`). Every fused kernel is
//! row-stable, so co-batching requests must not change a single bit of any
//! request's output relative to decoding it alone:
//!
//! * `decode_beam_multi` over N requests reproduces N independent
//!   `decode_beam` calls exactly (actions and `f32` score bits),
//! * `decode_greedy_multi` reproduces `decode_greedy` exactly, including
//!   the error strings of requests that fail mid-batch,
//! * the model-level `predict_beam_multi` / `predict_greedy_multi` hold the
//!   same identity across all kernel tiers of the degradation ladder
//!   (SIMD+fused, packed weights off, int8 quantized, forced scalar),
//! * a batch of one takes the exact single-request code path.

use std::sync::Mutex;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use valuenet_core::{
    build_input, Decoder, Encoder, ModelConfig, ModelInput, ValueNetModel, Vocab,
};
use valuenet_nn::ParamStore;
use valuenet_preprocess::{preprocess, CandidateConfig, HeuristicNer};
use valuenet_schema::{ColumnType, SchemaBuilder};
use valuenet_storage::Database;
use valuenet_tensor::Graph;

// Untrained weights can wander through deeply nested derivations before
// completing, so the cap is well above anything a trained model needs.
const MAX_STEPS: usize = 200;

/// `set_packed_inference` is process-global, and every test here compares
/// two decodes bit-for-bit — a concurrent tier flip between the two halves
/// would produce spurious mismatches. All tests serialise on this lock.
static TIER_LOCK: Mutex<()> = Mutex::new(());

fn demo_db() -> Database {
    let schema = SchemaBuilder::new("d")
        .table(
            "student",
            &[
                ("stu_id", ColumnType::Number),
                ("name", ColumnType::Text),
                ("age", ColumnType::Number),
                ("home_country", ColumnType::Text),
            ],
        )
        .build();
    let mut db = Database::new(schema);
    let s = db.schema().table_by_name("student").unwrap();
    db.insert(s, vec![1.into(), "Alice".into(), 20.into(), "France".into()]);
    db.insert(s, vec![2.into(), "Bob".into(), 23.into(), "Peru".into()]);
    db.rebuild_index();
    db
}

fn micro_config() -> ModelConfig {
    ModelConfig {
        d_model: 8,
        summary_hidden: 4,
        heads: 2,
        encoder_layers: 1,
        ffn_inner: 12,
        action_dim: 6,
        decoder_hidden: 12,
        dropout: 0.0,
        max_decode_steps: MAX_STEPS,
        beam_width: 1,
        use_hints: true,
        encode_value_location: true,
    }
}

/// Three distinct requests against the same database: different questions,
/// different value candidates, different pointer targets. Co-batched beams
/// therefore diverge in shape almost immediately, which is exactly the
/// regime the block-diagonal batching has to get right.
const REQUESTS: [(&str, &str, &str); 3] = [
    ("How many students are from France?", "France", "home_country"),
    ("List the name of every student from Peru", "Peru", "home_country"),
    ("What is the age of Alice", "Alice", "name"),
];

fn build_vocab() -> Vocab {
    Vocab::build(
        REQUESTS
            .iter()
            .map(|(q, _, _)| *q)
            .chain(["student name age home country france peru alice"]),
    )
}

fn build_inputs(db: &Database, vocab: &Vocab) -> Vec<ModelInput> {
    REQUESTS
        .iter()
        .map(|(q, value, col)| {
            let pre = preprocess(q, db, &HeuristicNer::new(), &CandidateConfig::default());
            let col = db.schema().any_column_by_name(col).map(|(_, c)| c).unwrap();
            let cands = vec![(value.to_string(), vec![col])];
            build_input(db, &pre, &cands, vocab)
        })
        .collect()
}

/// Fixed-seed encoder/decoder pair plus the three encodable inputs. Seeds
/// vary per test so invariants are not an artefact of one weight draw.
fn setup(seed: u64) -> (ParamStore, Encoder, Decoder, Vec<ModelInput>) {
    let db = demo_db();
    let vocab = build_vocab();
    let cfg = micro_config();
    let mut ps = ParamStore::new();
    let mut rng = SmallRng::seed_from_u64(seed);
    let encoder = Encoder::new(&mut ps, &mut rng, &cfg, vocab.len());
    let decoder = Decoder::new(&mut ps, &mut rng, &cfg);
    let inputs = build_inputs(&db, &vocab);
    (ps, encoder, decoder, inputs)
}

fn model_setup(seed: u64, beam_width: usize) -> (ValueNetModel, Vec<ModelInput>) {
    let db = demo_db();
    let vocab = build_vocab();
    let cfg = ModelConfig { beam_width, ..micro_config() };
    let model = ValueNetModel::new(cfg, vocab.clone(), seed);
    let inputs = build_inputs(&db, &vocab);
    (model, inputs)
}

fn assert_beams_identical(
    multi: &[(Vec<valuenet_semql::Action>, f32)],
    single: &[(Vec<valuenet_semql::Action>, f32)],
    what: &str,
) {
    assert_eq!(multi.len(), single.len(), "{what}: completion counts differ");
    for (i, (m, s)) in multi.iter().zip(single).enumerate() {
        assert_eq!(m.0, s.0, "{what}: hypothesis {i} actions differ");
        assert_eq!(
            m.1.to_bits(),
            s.1.to_bits(),
            "{what}: hypothesis {i} score differs ({} vs {})",
            m.1,
            s.1
        );
    }
}

#[test]
fn multi_request_beam_matches_independent_beams_exactly() {
    let _t = TIER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut nonempty = 0;
    for seed in [3u64, 17, 29, 41] {
        for width in [1usize, 2, 4] {
            let (ps, encoder, decoder, inputs) = setup(seed);

            let mut g = Graph::new();
            let encs: Vec<_> =
                inputs.iter().map(|i| encoder.forward(&mut g, &ps, i, 0.0, None)).collect();
            let multi = decoder.decode_beam_multi(&mut g, &ps, &encs, MAX_STEPS, width);
            assert_eq!(multi.len(), inputs.len());

            for (ri, input) in inputs.iter().enumerate() {
                let mut g = Graph::new();
                let enc = encoder.forward(&mut g, &ps, input, 0.0, None);
                let single = decoder.decode_beam(&mut g, &ps, &enc, MAX_STEPS, width);
                assert_beams_identical(
                    &multi[ri],
                    &single,
                    &format!("seed {seed} width {width} request {ri}"),
                );
                nonempty += usize::from(!single.is_empty());
            }
        }
    }
    assert!(nonempty >= 6, "too few runs completed ({nonempty}) — the check is vacuous");
}

#[test]
fn multi_request_greedy_matches_independent_greedy_exactly() {
    let _t = TIER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut completed = 0;
    for seed in [3u64, 17, 29, 41] {
        let (ps, encoder, decoder, inputs) = setup(seed);

        let mut g = Graph::new();
        let encs: Vec<_> =
            inputs.iter().map(|i| encoder.forward(&mut g, &ps, i, 0.0, None)).collect();
        let multi = decoder.decode_greedy_multi(&mut g, &ps, &encs, MAX_STEPS);
        assert_eq!(multi.len(), inputs.len());

        for (ri, input) in inputs.iter().enumerate() {
            let mut g = Graph::new();
            let enc = encoder.forward(&mut g, &ps, input, 0.0, None);
            let single = decoder.decode_greedy(&mut g, &ps, &enc, MAX_STEPS);
            // Results must match exactly — including the error string of a
            // request that fails mid-batch while its co-batched neighbours
            // keep decoding.
            assert_eq!(multi[ri], single, "seed {seed} request {ri}: greedy results differ");
            completed += usize::from(single.is_ok());
        }
    }
    assert!(completed >= 3, "too few requests completed ({completed}) — the check is vacuous");
}

#[test]
fn multi_greedy_reports_per_request_step_budget_errors() {
    let _t = TIER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // With a step budget no derivation can finish in, every co-batched
    // request must fail with exactly the error its solo decode produces.
    let (ps, encoder, decoder, inputs) = setup(3);
    let mut g = Graph::new();
    let encs: Vec<_> =
        inputs.iter().map(|i| encoder.forward(&mut g, &ps, i, 0.0, None)).collect();
    let multi = decoder.decode_greedy_multi(&mut g, &ps, &encs, 2);
    for (ri, input) in inputs.iter().enumerate() {
        let mut g = Graph::new();
        let enc = encoder.forward(&mut g, &ps, input, 0.0, None);
        let single = decoder.decode_greedy(&mut g, &ps, &enc, 2);
        assert_eq!(multi[ri], single, "request {ri}: truncated decode mismatch");
        assert_eq!(
            multi[ri].as_ref().unwrap_err(),
            "decoding exceeded 2 steps",
            "request {ri}: unexpected error shape"
        );
    }
}

#[test]
fn model_level_multi_matches_singles_across_kernel_tiers() {
    let _t = TIER_LOCK.lock().unwrap_or_else(|e| e.into_inner());

    // The packed-weights flag is process-global; restore it even if an
    // assertion below unwinds so sibling tests keep a sane tier.
    struct RestorePacked;
    impl Drop for RestorePacked {
        fn drop(&mut self) {
            valuenet_nn::set_packed_inference(true);
        }
    }
    let _restore = RestorePacked;

    let (model, inputs) = model_setup(17, 4);
    let refs: Vec<&ModelInput> = inputs.iter().collect();

    let run_tier = |tier: &str| {
        let multi = model.predict_beam_multi(&refs);
        let multi_greedy = model.predict_greedy_multi(&refs);
        for (ri, input) in inputs.iter().enumerate() {
            let single = model.predict_beam(input);
            assert_beams_identical(&multi[ri], &single, &format!("tier {tier} request {ri}"));
            assert_eq!(
                multi_greedy[ri],
                model.predict(input),
                "tier {tier} request {ri}: greedy results differ"
            );
        }
    };

    // Default tier: SIMD + fused graph ops + packed weights.
    run_tier("default");

    valuenet_nn::set_packed_inference(false);
    run_tier("packed-off");
    valuenet_nn::set_packed_inference(true);

    model.params.set_quantized(true);
    run_tier("int8");
    model.params.set_quantized(false);

    // The degradation ladder's last rung — the engine only ever runs this
    // tier on singleton batches, but the identity must hold regardless.
    ValueNetModel::with_scalar_fallback(|| run_tier("scalar"));
}

#[test]
fn batch_of_one_takes_the_single_request_path() {
    let _t = TIER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for seed in [3u64, 29] {
        let (model, inputs) = model_setup(seed, 4);
        for input in &inputs {
            let multi = model.predict_beam_multi(&[input]);
            assert_eq!(multi.len(), 1);
            assert_beams_identical(&multi[0], &model.predict_beam(input), "beam singleton");
            assert_eq!(
                model.predict_greedy_multi(&[input])[0],
                model.predict(input),
                "greedy singleton differs from predict()"
            );
        }
    }
}
