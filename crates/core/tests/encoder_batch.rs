//! The length-bucketed batched item summariser must be invisible: encoding
//! with batching on (the rework path) and off (per-item, the pre-rework
//! path) has to agree on every bit of every encoding.
//!
//! This file holds a single `#[test]` on purpose: it flips the global
//! execution-rework toggle (`set_fusion_enabled`), which other tests in the
//! same process would race with.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use valuenet_core::{build_input, Encoder, ModelConfig, ModelInput, Vocab};
use valuenet_nn::ParamStore;
use valuenet_preprocess::{preprocess, CandidateConfig, HeuristicNer};
use valuenet_schema::{ColumnType, SchemaBuilder};
use valuenet_storage::Database;
use valuenet_tensor::{set_fusion_enabled, Graph};

fn demo_db() -> Database {
    let schema = SchemaBuilder::new("d")
        .table(
            "student",
            &[
                ("stu_id", ColumnType::Number),
                ("name", ColumnType::Text),
                ("age", ColumnType::Number),
                ("home_country", ColumnType::Text),
            ],
        )
        .table("enrollment", &[("stu_id", ColumnType::Number), ("course_name", ColumnType::Text)])
        .build();
    let mut db = Database::new(schema);
    let s = db.schema().table_by_name("student").unwrap();
    db.insert(s, vec![1.into(), "Alice".into(), 20.into(), "France".into()]);
    db.insert(s, vec![2.into(), "Bob".into(), 23.into(), "Peru".into()]);
    db.rebuild_index();
    db
}

fn setup(seed: u64) -> (ParamStore, Encoder, ModelInput) {
    let db = demo_db();
    let vocab = Vocab::build(
        [
            "How many students are from France?",
            "student name age home country france enrollment course",
        ]
        .into_iter(),
    );
    let cfg = ModelConfig {
        d_model: 8,
        summary_hidden: 4,
        heads: 2,
        encoder_layers: 1,
        ffn_inner: 12,
        action_dim: 6,
        decoder_hidden: 12,
        dropout: 0.0,
        max_decode_steps: 50,
        beam_width: 1,
        use_hints: true,
        encode_value_location: true,
    };
    let mut ps = ParamStore::new();
    let mut rng = SmallRng::seed_from_u64(seed);
    let encoder = Encoder::new(&mut ps, &mut rng, &cfg, vocab.len());
    let q = "How many students are from France?";
    let pre = preprocess(q, &db, &HeuristicNer::new(), &CandidateConfig::default());
    let country = db.schema().any_column_by_name("home_country").map(|(_, c)| c).unwrap();
    let cands = vec![("France".to_string(), vec![country])];
    let input = build_input(&db, &pre, &cands, &vocab);
    (ps, encoder, input)
}

fn snapshot(g: &Graph, v: valuenet_tensor::Var) -> Vec<u32> {
    g.value(v).as_slice().iter().map(|x| x.to_bits()).collect()
}

#[test]
fn batched_item_summaries_match_per_item_exactly() {
    for seed in [5u64, 19, 33] {
        let (ps, encoder, input) = setup(seed);
        // The input must actually exercise bucketing: several items, mixed
        // token lengths (e.g. "stu id" vs "name" vs "home country").
        let lens: std::collections::BTreeSet<usize> = input
            .columns
            .iter()
            .chain(&input.tables)
            .chain(&input.values)
            .map(|item| item.word_ids.len())
            .collect();
        assert!(lens.len() >= 2, "seed {seed}: fixture has only one item length, test is weak");

        // Forward values are exactly reproducible: every op involved is
        // row-wise with per-row-independent accumulation. (Parameter
        // *gradients* are not compared bitwise — batching legitimately
        // reorders the scatter-add accumulation across gather nodes; their
        // correctness is covered by the valuenet-verify gradient checker.)
        set_fusion_enabled(true);
        let mut g = Graph::new();
        let enc_b = encoder.forward(&mut g, &ps, &input, 0.0, None);
        let batched = [
            snapshot(&g, enc_b.question),
            snapshot(&g, enc_b.columns),
            snapshot(&g, enc_b.tables),
            enc_b.values.map(|v| snapshot(&g, v)).unwrap_or_default(),
            snapshot(&g, enc_b.pooled),
        ];

        set_fusion_enabled(false);
        let mut g = Graph::new();
        let enc_u = encoder.forward(&mut g, &ps, &input, 0.0, None);
        let unbatched = [
            snapshot(&g, enc_u.question),
            snapshot(&g, enc_u.columns),
            snapshot(&g, enc_u.tables),
            enc_u.values.map(|v| snapshot(&g, v)).unwrap_or_default(),
            snapshot(&g, enc_u.pooled),
        ];
        set_fusion_enabled(true);

        assert_eq!(batched, unbatched, "seed {seed}: batched encodings differ bitwise");
    }
}
