//! Beam-search decoding invariants on a fixed-seed micro model:
//!
//! * `decode_beam` with width 1 reproduces greedy decoding exactly,
//! * completed hypotheses come back ranked by length-normalised score,
//! * every returned hypothesis is a grammar-complete derivation that
//!   parses back into a SemQL tree.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use valuenet_core::{build_input, Decoder, Encoder, ModelConfig, ModelInput, Vocab};
use valuenet_nn::ParamStore;
use valuenet_preprocess::{preprocess, CandidateConfig, HeuristicNer};
use valuenet_schema::{ColumnType, SchemaBuilder};
use valuenet_semql::actions_to_ast;
use valuenet_storage::Database;
use valuenet_tensor::Graph;

// Untrained weights can wander through deeply nested derivations before
// completing, so the cap is well above anything a trained model needs.
const MAX_STEPS: usize = 200;

fn demo_db() -> Database {
    let schema = SchemaBuilder::new("d")
        .table(
            "student",
            &[
                ("stu_id", ColumnType::Number),
                ("name", ColumnType::Text),
                ("age", ColumnType::Number),
                ("home_country", ColumnType::Text),
            ],
        )
        .build();
    let mut db = Database::new(schema);
    let s = db.schema().table_by_name("student").unwrap();
    db.insert(s, vec![1.into(), "Alice".into(), 20.into(), "France".into()]);
    db.insert(s, vec![2.into(), "Bob".into(), 23.into(), "Peru".into()]);
    db.rebuild_index();
    db
}

fn micro_config() -> ModelConfig {
    ModelConfig {
        d_model: 8,
        summary_hidden: 4,
        heads: 2,
        encoder_layers: 1,
        ffn_inner: 12,
        action_dim: 6,
        decoder_hidden: 12,
        dropout: 0.0,
        max_decode_steps: MAX_STEPS,
        beam_width: 1,
        use_hints: true,
        encode_value_location: true,
    }
}

/// Fixed-seed encoder/decoder pair plus an encodable input. Seeds vary per
/// test so invariants are not an artefact of one particular weight draw.
fn setup(seed: u64) -> (ParamStore, Encoder, Decoder, ModelInput) {
    let db = demo_db();
    let vocab = Vocab::build(
        ["How many students are from France?", "student name age home country france"]
            .into_iter(),
    );
    let cfg = micro_config();
    let mut ps = ParamStore::new();
    let mut rng = SmallRng::seed_from_u64(seed);
    let encoder = Encoder::new(&mut ps, &mut rng, &cfg, vocab.len());
    let decoder = Decoder::new(&mut ps, &mut rng, &cfg);
    let q = "How many students are from France?";
    let pre = preprocess(q, &db, &HeuristicNer::new(), &CandidateConfig::default());
    let country = db.schema().any_column_by_name("home_country").map(|(_, c)| c).unwrap();
    let cands = vec![("France".to_string(), vec![country])];
    let input = build_input(&db, &pre, &cands, &vocab);
    (ps, encoder, decoder, input)
}

#[test]
fn beam_width_one_equals_greedy() {
    let mut completed = 0;
    for seed in [3u64, 17, 29, 41] {
        let (ps, encoder, decoder, input) = setup(seed);

        let mut g = Graph::new();
        let enc = encoder.forward(&mut g, &ps, &input, 0.0, None);
        let greedy = decoder.decode_greedy(&mut g, &ps, &enc, MAX_STEPS);

        let mut g = Graph::new();
        let enc = encoder.forward(&mut g, &ps, &input, 0.0, None);
        let beam = decoder.decode_beam(&mut g, &ps, &enc, MAX_STEPS, 1);

        // A width-1 beam expands exactly the greedy argmax at every step, so
        // it completes iff greedy completes — and on the same derivation.
        match greedy {
            Ok(actions) => {
                completed += 1;
                assert_eq!(beam.len(), 1, "seed {seed}: width-1 beam lost the greedy path");
                assert_eq!(
                    beam[0].0, actions,
                    "seed {seed}: beam(k=1) and greedy disagree on the action sequence"
                );
            }
            Err(_) => {
                assert!(beam.is_empty(), "seed {seed}: beam completed where greedy timed out");
            }
        }
    }
    assert!(completed >= 2, "too few seeds completed ({completed}) — the check is vacuous");
}

#[test]
fn batched_beam_matches_unbatched_exactly() {
    // The batched search stacks all live hypotheses into one LSTM + attention
    // step. Every kernel involved (matmul, LSTM gates, fused attention,
    // log-softmax) computes each output row independently in a fixed order,
    // so batching must not change a single bit: we demand exact f32 equality
    // of both the action sequences and the scores, across widths and seeds.
    let mut nonempty = 0;
    for seed in [3u64, 17, 29, 41] {
        for width in [1usize, 2, 4] {
            let (ps, encoder, decoder, input) = setup(seed);

            let mut g = Graph::new();
            let enc = encoder.forward(&mut g, &ps, &input, 0.0, None);
            let batched = decoder.decode_beam(&mut g, &ps, &enc, MAX_STEPS, width);

            let mut g = Graph::new();
            let enc = encoder.forward(&mut g, &ps, &input, 0.0, None);
            let unbatched = decoder.decode_beam_unbatched(&mut g, &ps, &enc, MAX_STEPS, width);

            assert_eq!(
                batched.len(),
                unbatched.len(),
                "seed {seed} width {width}: completion counts differ"
            );
            for (i, (b, u)) in batched.iter().zip(&unbatched).enumerate() {
                assert_eq!(
                    b.0, u.0,
                    "seed {seed} width {width}: hypothesis {i} actions differ"
                );
                assert_eq!(
                    b.1.to_bits(),
                    u.1.to_bits(),
                    "seed {seed} width {width}: hypothesis {i} score differs ({} vs {})",
                    b.1,
                    u.1
                );
            }
            nonempty += usize::from(!batched.is_empty());
        }
    }
    assert!(nonempty >= 4, "too few runs completed ({nonempty}) — the check is vacuous");
}

#[test]
fn completed_hypotheses_are_ranked_by_normalised_score() {
    let mut nonempty = 0;
    for seed in [3u64, 17, 29, 41] {
        let (ps, encoder, decoder, input) = setup(seed);
        let mut g = Graph::new();
        let enc = encoder.forward(&mut g, &ps, &input, 0.0, None);
        let width = 4;
        let beam = decoder.decode_beam(&mut g, &ps, &enc, MAX_STEPS, width);
        if beam.is_empty() {
            continue; // nothing completed for this weight draw
        }
        nonempty += 1;
        assert!(beam.len() <= width);
        let norm = |(actions, score): &(Vec<_>, f32)| score / actions.len().max(1) as f32;
        for pair in beam.windows(2) {
            assert!(
                norm(&pair[0]) >= norm(&pair[1]),
                "seed {seed}: hypotheses are not sorted by length-normalised score: \
                 {} vs {}",
                norm(&pair[0]),
                norm(&pair[1])
            );
        }
        // Scores are log-probability sums, so they are never positive.
        for (actions, score) in &beam {
            assert!(*score <= 0.0, "seed {seed}: positive log-prob sum {score}");
            assert!(!actions.is_empty());
        }
    }
    assert!(nonempty >= 2, "too few seeds completed ({nonempty}) — the check is vacuous");
}

#[test]
fn beam_hypotheses_parse_back_to_semql() {
    let mut parsed = 0;
    for seed in [3u64, 17, 29, 41] {
        let (ps, encoder, decoder, input) = setup(seed);
        let mut g = Graph::new();
        let enc = encoder.forward(&mut g, &ps, &input, 0.0, None);
        for (actions, _) in &decoder.decode_beam(&mut g, &ps, &enc, MAX_STEPS, 4) {
            let tree = actions_to_ast(actions).unwrap_or_else(|e| {
                panic!("hypothesis is not grammar-complete: {e}\n{actions:?}")
            });
            // Round-tripping the tree reproduces the action sequence.
            assert_eq!(&valuenet_semql::ast_to_actions(&tree), actions);
            parsed += 1;
        }
    }
    assert!(parsed >= 2, "too few hypotheses completed ({parsed}) — the check is vacuous");
}
