//! The parallel engine must be invisible in the results: training and
//! evaluation give bit-identical outputs for any worker count.

use valuenet_core::{evaluate_with_threads, train, ModelConfig, TrainConfig, ValueMode};
use valuenet_dataset::{generate, CorpusConfig};

#[test]
fn training_and_eval_are_identical_across_thread_counts() {
    let corpus = generate(&CorpusConfig {
        seed: 11,
        train_size: 40,
        dev_size: 16,
        rows_per_table: 10,
        ..CorpusConfig::default()
    });
    let cfg = |threads| TrainConfig { epochs: 2, threads, ..Default::default() };

    let (pipe1, rep1) = train(&corpus, ValueMode::Light, ModelConfig::tiny(), &cfg(1));
    let (pipe4, rep4) = train(&corpus, ValueMode::Light, ModelConfig::tiny(), &cfg(4));

    // Epoch losses are f32 sums; bit equality proves the reduction order is
    // canonical, not merely "close".
    assert_eq!(rep1.epoch_losses.len(), rep4.epoch_losses.len());
    for (a, b) in rep1.epoch_losses.iter().zip(&rep4.epoch_losses) {
        assert_eq!(a.to_bits(), b.to_bits(), "epoch losses diverged: {a} vs {b}");
    }
    // And the final weights agree exactly.
    assert_eq!(pipe1.model.to_json(), pipe4.model.to_json(), "trained weights diverged");

    // The evaluation sweep: same per-sample outcomes for any worker count.
    let s1 = evaluate_with_threads(&pipe1, &corpus, &corpus.dev, 1);
    let s4 = evaluate_with_threads(&pipe4, &corpus, &corpus.dev, 4);
    assert_eq!(s1.samples.len(), s4.samples.len());
    for (a, b) in s1.samples.iter().zip(&s4.samples) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.outcome, b.outcome, "outcome diverged at sample {}", a.index);
        assert_eq!(a.exact, b.exact, "exact-match diverged at sample {}", a.index);
    }
    assert_eq!(s1.execution_accuracy(), s4.execution_accuracy());
}
