//! Word vocabulary.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A word-level vocabulary with an `<unk>` fallback, built from the training
/// questions, all schema names and the database content the candidates draw
/// from. Lookup is case-insensitive.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vocab {
    words: HashMap<String, usize>,
    size: usize,
}

/// Id of the unknown token.
pub const UNK: usize = 0;

impl Vocab {
    /// Builds the vocabulary from an iterator of texts (each is split on
    /// whitespace and lowercased).
    pub fn build<'a>(texts: impl Iterator<Item = &'a str>) -> Self {
        let mut words = HashMap::new();
        words.insert("<unk>".to_string(), UNK);
        for text in texts {
            for w in text.split_whitespace() {
                let w = normalize(w);
                if w.is_empty() {
                    continue;
                }
                let next = words.len();
                words.entry(w).or_insert(next);
            }
        }
        let size = words.len();
        Vocab { words, size }
    }

    /// Vocabulary size (including `<unk>`).
    pub fn len(&self) -> usize {
        self.size
    }

    /// Whether only `<unk>` is present.
    pub fn is_empty(&self) -> bool {
        self.size <= 1
    }

    /// Id of a word (`UNK` when out of vocabulary).
    pub fn id(&self, word: &str) -> usize {
        self.words.get(&normalize(word)).copied().unwrap_or(UNK)
    }

    /// Ids of every whitespace-separated word of `text`. Always returns at
    /// least one id (an `<unk>` for empty text), so downstream LSTMs never
    /// see an empty sequence.
    pub fn ids(&self, text: &str) -> Vec<usize> {
        let ids: Vec<usize> = text.split_whitespace().map(|w| self.id(w)).collect();
        if ids.is_empty() {
            vec![UNK]
        } else {
            ids
        }
    }
}

fn normalize(w: &str) -> String {
    w.chars()
        .filter(|c| c.is_alphanumeric() || *c == '-' || *c == '/' || *c == '_' || *c == '.')
        .collect::<String>()
        .to_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let texts = ["How many pets", "pets from France"];
        let v = Vocab::build(texts.iter().copied());
        assert!(v.len() >= 6);
        assert_eq!(v.id("Pets"), v.id("pets"));
        assert_ne!(v.id("pets"), UNK);
        assert_eq!(v.id("zebra"), UNK);
    }

    #[test]
    fn punctuation_stripped() {
        let v = Vocab::build(["France?"].iter().copied());
        assert_eq!(v.id("France"), v.id("france?"));
    }

    #[test]
    fn ids_never_empty() {
        let v = Vocab::build(["a"].iter().copied());
        assert_eq!(v.ids(""), vec![UNK]);
        assert_eq!(v.ids("a a").len(), 2);
    }

    #[test]
    fn serde_round_trip() {
        let v = Vocab::build(["hello world"].iter().copied());
        let json = serde_json::to_string(&v).unwrap();
        let v2: Vocab = serde_json::from_str(&json).unwrap();
        assert_eq!(v2.id("world"), v.id("world"));
        assert_eq!(v2.len(), v.len());
    }
}
