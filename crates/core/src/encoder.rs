//! The joint encoder (paper Section III-B1 and Fig. 8).

use crate::input::{ModelInput, NUM_COLUMN_TYPES, NUM_QUESTION_HINTS, NUM_SCHEMA_HINTS};
use crate::model::ModelConfig;
use rand::rngs::SmallRng;
use valuenet_nn::{dropout_mask, BiLstm, Embedding, Linear, ParamStore, TransformerBlock};
use valuenet_tensor::{Graph, Var};

/// Parameter groups, mirroring the paper's three learning rates.
pub const GROUP_ENCODER: usize = 0;
/// Decoder parameters.
pub const GROUP_DECODER: usize = 1;
/// Connection parameters between encoder and decoder.
pub const GROUP_CONNECT: usize = 2;

/// Contextual encodings of one input.
pub struct Encodings {
    /// Question token encodings `[Tq, d]`.
    pub question: Var,
    /// Column encodings `[C, d]`.
    pub columns: Var,
    /// Table encodings `[T, d]`.
    pub tables: Var,
    /// Value-candidate encodings `[V, d]` (`None` when no candidates).
    pub values: Option<Var>,
    /// Mean-pooled question representation `[1, d]` (decoder init).
    pub pooled: Var,
}

/// The ValueNet encoder: word + hint embeddings, Bi-LSTM item summaries, and
/// a transformer stack over the joint question ⊕ schema ⊕ value sequence.
pub struct Encoder {
    word_emb: Embedding,
    qhint_emb: Embedding,
    shint_col_emb: Embedding,
    shint_tab_emb: Embedding,
    ctype_emb: Embedding,
    item_lstm: BiLstm,
    item_proj: Linear,
    blocks: Vec<TransformerBlock>,
    d: usize,
}

impl Encoder {
    /// Builds the encoder's parameters.
    pub fn new(ps: &mut ParamStore, rng: &mut SmallRng, cfg: &ModelConfig, vocab_size: usize) -> Self {
        let d = cfg.d_model;
        let word_emb = Embedding::new(ps, rng, "enc.word", GROUP_ENCODER, vocab_size, d);
        let qhint_emb =
            Embedding::new(ps, rng, "enc.qhint", GROUP_ENCODER, NUM_QUESTION_HINTS, d);
        let shint_col_emb =
            Embedding::new(ps, rng, "enc.shint_col", GROUP_ENCODER, NUM_SCHEMA_HINTS, d);
        let shint_tab_emb =
            Embedding::new(ps, rng, "enc.shint_tab", GROUP_ENCODER, NUM_SCHEMA_HINTS, d);
        let ctype_emb =
            Embedding::new(ps, rng, "enc.ctype", GROUP_ENCODER, NUM_COLUMN_TYPES, d);
        let item_lstm =
            BiLstm::new(ps, rng, "enc.item_lstm", GROUP_ENCODER, d, cfg.summary_hidden);
        let item_proj = Linear::new(
            ps,
            rng,
            "enc.item_proj",
            GROUP_CONNECT,
            2 * cfg.summary_hidden,
            d,
        );
        let blocks = (0..cfg.encoder_layers)
            .map(|i| {
                TransformerBlock::new(
                    ps,
                    rng,
                    &format!("enc.block{i}"),
                    GROUP_ENCODER,
                    d,
                    cfg.heads,
                    cfg.ffn_inner,
                )
            })
            .collect();
        Encoder {
            word_emb,
            qhint_emb,
            shint_col_emb,
            shint_tab_emb,
            ctype_emb,
            item_lstm,
            item_proj,
            blocks,
            d,
        }
    }

    /// Model dimensionality.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Summarises one multi-token item with the shared Bi-LSTM and projects
    /// it to the model dimension.
    fn summarize_item(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        word_ids: &[usize],
    ) -> Var {
        let embs = self.word_emb.forward(g, ps, word_ids);
        let summary = self.item_lstm.summarize(g, ps, embs);
        self.item_proj.forward(g, ps, summary)
    }

    /// Summarises every item in one length-bucketed batch per token count.
    ///
    /// All schema items (columns, tables, value candidates) share the same
    /// Bi-LSTM and projection, so instead of one tiny per-item LSTM run this
    /// stacks every item of equal token length into rows and drives them
    /// through [`BiLstm::summarize_steps`] — a handful of `[N, ·]` matmuls
    /// per step instead of hundreds of matvecs per sample. Row `i` of the
    /// result is bit-identical to `summarize_item(items[i])` (row-wise ops,
    /// per-row-independent kernels; pinned by `tests/encoder_batch.rs`).
    ///
    /// Batching is part of the allocation-free execution rework and follows
    /// its master toggle: with [`valuenet_tensor::fusion_enabled`] off, each
    /// item is summarised separately, exactly as the pre-rework encoder did —
    /// the baseline arm of the speed benchmark.
    fn summarize_items(&self, g: &mut Graph, ps: &ParamStore, items: &[&[usize]]) -> Vec<Var> {
        if !valuenet_tensor::fusion_enabled() {
            return items.iter().map(|ids| self.summarize_item(g, ps, ids)).collect();
        }
        // Bucket item indices by token count; BTreeMap keeps bucket order
        // deterministic (ascending length).
        let mut buckets: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (i, ids) in items.iter().enumerate() {
            assert!(!ids.is_empty(), "summarize_items: empty item");
            buckets.entry(ids.len()).or_default().push(i);
        }
        let mut out: Vec<Option<Var>> = vec![None; items.len()];
        for (&t_len, members) in &buckets {
            // Step t of the batch gathers token t of every member item.
            let steps: Vec<Var> = (0..t_len)
                .map(|t| {
                    let ids: Vec<usize> = members.iter().map(|&i| items[i][t]).collect();
                    self.word_emb.forward(g, ps, &ids)
                })
                .collect();
            let summaries = self.item_lstm.summarize_steps(g, ps, &steps);
            let projected = self.item_proj.forward(g, ps, summaries);
            for (row, &i) in members.iter().enumerate() {
                out[i] = Some(g.slice_rows(projected, row, row + 1));
            }
        }
        out.into_iter().map(|v| v.expect("every item summarised")).collect()
    }

    /// Encodes one input. `dropout_rng` enables training-time dropout.
    pub fn forward(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        input: &ModelInput,
        dropout: f32,
        mut dropout_rng: Option<&mut SmallRng>,
    ) -> Encodings {
        // Question tokens: word + hint embeddings.
        let q_words = self.word_emb.forward(g, ps, &input.question_ids);
        let q_hints = self.qhint_emb.forward(g, ps, &input.question_hints);
        let mut question = g.add(q_words, q_hints);
        if let Some(rng) = dropout_rng.take() {
            if dropout > 0.0 {
                let mask = dropout_mask(rng, g.value(question).len(), dropout);
                question = g.dropout(question, mask);
            }
        }

        // Schema items: Bi-LSTM summaries + hint/type embeddings. Columns,
        // tables and value candidates all share the summariser, so they go
        // through one length-bucketed batch.
        let item_ids: Vec<&[usize]> = input
            .columns
            .iter()
            .chain(&input.tables)
            .chain(&input.values)
            .map(|item| item.word_ids.as_slice())
            .collect();
        let summaries = self.summarize_items(g, ps, &item_ids);
        let (col_sums, rest) = summaries.split_at(input.columns.len());
        let (tab_sums, value_rows) = rest.split_at(input.tables.len());

        let mut col_rows = Vec::with_capacity(input.columns.len());
        for (i, &base) in col_sums.iter().enumerate() {
            let hint = self.shint_col_emb.forward(g, ps, &[input.column_hints[i]]);
            let ty = self.ctype_emb.forward(g, ps, &[input.column_types[i]]);
            let a = g.add(base, hint);
            col_rows.push(g.add(a, ty));
        }
        let columns = g.concat_rows(&col_rows);

        let mut tab_rows = Vec::with_capacity(input.tables.len());
        for (i, &base) in tab_sums.iter().enumerate() {
            let hint = self.shint_tab_emb.forward(g, ps, &[input.table_hints[i]]);
            tab_rows.push(g.add(base, hint));
        }
        let tables = g.concat_rows(&tab_rows);

        // Joint contextualisation.
        let mut parts = vec![question, columns, tables];
        if !value_rows.is_empty() {
            parts.push(g.concat_rows(value_rows));
        }
        let mut joint = g.concat_rows(&parts);
        for block in &self.blocks {
            joint = block.forward(g, ps, joint, None);
        }

        // Slice the joint sequence back apart.
        let tq = input.question_ids.len();
        let nc = input.columns.len();
        let nt = input.tables.len();
        let nv = input.values.len();
        let question = g.slice_rows(joint, 0, tq);
        let columns = g.slice_rows(joint, tq, tq + nc);
        let tables = g.slice_rows(joint, tq + nc, tq + nc + nt);
        let values = if nv > 0 {
            Some(g.slice_rows(joint, tq + nc + nt, tq + nc + nt + nv))
        } else {
            None
        };
        // Mean-pool the question for the decoder's initial context.
        let ones = g.input(valuenet_tensor::Tensor::full(1, tq, 1.0 / tq as f32));
        let pooled = g.matmul(ones, question);
        Encodings { question, columns, tables, values, pooled }
    }
}
