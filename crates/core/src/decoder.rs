//! The grammar-constrained LSTM decoder with pointer networks
//! (paper Section III-B2).

use crate::encoder::{Encodings, GROUP_CONNECT, GROUP_DECODER};
use crate::model::ModelConfig;
use rand::rngs::SmallRng;
use valuenet_nn::{Embedding, Linear, LstmCell, LstmState, ParamStore};
use valuenet_semql::{Action, NonTerminal, TransitionSystem, SKETCH_VOCAB};
use valuenet_tensor::{Graph, Tensor, Var};

// Beam-search statistics (see DESIGN.md, "Observability"): per-step fan-out,
// pruning pressure, and the distribution of pointer choices the decoder
// commits to.
static BEAM_STEPS: valuenet_obs::Counter = valuenet_obs::Counter::new("beam.steps");
static BEAM_EXPANDED: valuenet_obs::Counter = valuenet_obs::Counter::new("beam.expanded");
static BEAM_PRUNED: valuenet_obs::Counter = valuenet_obs::Counter::new("beam.pruned");
static BEAM_COMPLETED: valuenet_obs::Counter = valuenet_obs::Counter::new("beam.completed");
static BEAM_DEAD_ENDS: valuenet_obs::Counter = valuenet_obs::Counter::new("beam.dead_ends");
static BEAM_CANDIDATES: valuenet_obs::Histogram =
    valuenet_obs::Histogram::new("beam.candidates_per_step");
static CHOICE_SKETCH: valuenet_obs::Counter = valuenet_obs::Counter::new("decode.choice.sketch");
static CHOICE_COLUMN: valuenet_obs::Counter = valuenet_obs::Counter::new("decode.choice.column");
static CHOICE_TABLE: valuenet_obs::Counter = valuenet_obs::Counter::new("decode.choice.table");
static CHOICE_VALUE: valuenet_obs::Counter = valuenet_obs::Counter::new("decode.choice.value");

/// Scored expansions for each live beam of one request: `None` until the
/// beam's pointer head (or sketch scorer) has filled its slot this step.
type BeamChoices = Vec<Option<Vec<(Action, f32)>>>;

/// One live beam hypothesis (shared by the batched and unbatched search).
struct BeamHyp {
    ts: TransitionSystem,
    state: LstmState,
    prev_emb: Var,
    prev_ctx: Var,
    actions: Vec<Action>,
    score: f32,
}

/// Ranks completed hypotheses by *length-normalised* score (mean
/// log-probability per action). Raw sums shrink monotonically with
/// derivation length, so ranking on them systematically prefers short
/// hypotheses — long correct derivations lose to short wrong ones, and beam
/// search can score below greedy decoding.
fn rank_completed(
    mut completed: Vec<(Vec<Action>, f32)>,
    beam_width: usize,
) -> Vec<(Vec<Action>, f32)> {
    let norm = |(actions, score): &(Vec<Action>, f32)| score / actions.len().max(1) as f32;
    completed.sort_by(|a, b| norm(b).partial_cmp(&norm(a)).unwrap_or(std::cmp::Ordering::Equal));
    completed.truncate(beam_width);
    completed
}

/// Tallies one committed action into the pointer-choice distribution.
fn count_choice(a: &Action) {
    match a {
        Action::C(_) => CHOICE_COLUMN.add(1),
        Action::T(_) => CHOICE_TABLE.add(1),
        Action::V(_) => CHOICE_VALUE.add(1),
        _ => CHOICE_SKETCH.add(1),
    }
}

/// The decoder: an LSTM over action embeddings with attention over the
/// question encodings, a sketch-action head, and one pointer network each
/// for columns, tables and value candidates.
pub struct Decoder {
    /// Sketch-action embeddings; index 0 is the start-of-derivation token.
    action_emb: Embedding,
    /// Projects a pointed item's encoding into action-embedding space (so
    /// pointer selections feed back into the LSTM like sketch actions).
    item_in: Linear,
    cell: LstmCell,
    init_h: Linear,
    attn_q: Linear,
    sketch_head: Linear,
    ptr_col: Linear,
    ptr_tab: Linear,
    ptr_val: Linear,
    d: usize,
}

impl Decoder {
    /// Builds the decoder's parameters.
    pub fn new(ps: &mut ParamStore, rng: &mut SmallRng, cfg: &ModelConfig) -> Self {
        let d = cfg.d_model;
        let adim = cfg.action_dim;
        let hidden = cfg.decoder_hidden;
        Decoder {
            action_emb: Embedding::new(
                ps,
                rng,
                "dec.action",
                GROUP_DECODER,
                SKETCH_VOCAB + 1,
                adim,
            ),
            item_in: Linear::new(ps, rng, "dec.item_in", GROUP_CONNECT, d, adim),
            cell: LstmCell::new(ps, rng, "dec.cell", GROUP_DECODER, adim + d, hidden),
            init_h: Linear::new(ps, rng, "dec.init_h", GROUP_CONNECT, d, hidden),
            attn_q: Linear::new(ps, rng, "dec.attn_q", GROUP_DECODER, hidden, d),
            sketch_head: Linear::new(
                ps,
                rng,
                "dec.sketch",
                GROUP_DECODER,
                hidden + d,
                SKETCH_VOCAB,
            ),
            ptr_col: Linear::new(ps, rng, "dec.ptr_col", GROUP_DECODER, hidden + d, d),
            ptr_tab: Linear::new(ps, rng, "dec.ptr_tab", GROUP_DECODER, hidden + d, d),
            ptr_val: Linear::new(ps, rng, "dec.ptr_val", GROUP_DECODER, hidden + d, d),
            d,
        }
    }

    fn init_state(&self, g: &mut Graph, ps: &ParamStore, enc: &Encodings) -> LstmState {
        let h0 = self.init_h.forward(g, ps, enc.pooled);
        let h = g.tanh(h0);
        let c = g.input(Tensor::zeros(1, g.value(h).cols()));
        LstmState { h, c }
    }

    /// One LSTM + attention step. Returns the new state and the feature
    /// matrix `[B, hidden + d]`.
    ///
    /// Row-batched: `B` stacked hypotheses produce exactly the rows that `B`
    /// separate `[1, ·]` calls would (the LSTM cell and the fused attention
    /// both compute each output row independently in a fixed order), which
    /// is what lets [`Decoder::decode_beam`] step a whole beam through one
    /// blocked matmul per gate.
    fn step(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        enc: &Encodings,
        prev_emb: Var,
        prev_ctx: Var,
        state: LstmState,
    ) -> (LstmState, Var) {
        let x = g.concat_cols(&[prev_emb, prev_ctx]);
        let state = self.cell.step(g, ps, x, state);
        // Fused attention over the question encodings (score + scale +
        // softmax in one node; context as one matmul with the same rows).
        let q = self.attn_q.forward(g, ps, state.h);
        let attn = g.attn_softmax(q, enc.question, 1.0 / (self.d as f32).sqrt(), None);
        let ctx = g.matmul(attn, enc.question);
        let f = g.concat_cols(&[state.h, ctx]);
        (state, f)
    }

    /// Sketch-action indices legal at the current frontier, additionally
    /// excluding value-consuming rules when no candidates exist.
    fn valid_sketch(&self, ts: &TransitionSystem, has_values: bool) -> Vec<usize> {
        let mut valid = ts.valid_sketch_actions();
        if !has_values {
            valid.retain(|&idx| !action_needs_value(Action::from_sketch_index(idx)));
        }
        valid
    }

    /// The embedding fed into the next step for an already-chosen action.
    fn action_input(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        enc: &Encodings,
        action: &Action,
    ) -> Var {
        match action {
            Action::C(i) => {
                let row = g.slice_rows(enc.columns, *i, i + 1);
                self.item_in.forward(g, ps, row)
            }
            Action::T(i) => {
                let row = g.slice_rows(enc.tables, *i, i + 1);
                self.item_in.forward(g, ps, row)
            }
            Action::V(i) => {
                let values = enc.values.expect("V action without candidates");
                let row = g.slice_rows(values, *i, i + 1);
                self.item_in.forward(g, ps, row)
            }
            sketch => {
                let idx = sketch.sketch_index().expect("sketch action") + 1;
                self.action_emb.forward(g, ps, &[idx])
            }
        }
    }

    fn masked_sketch_logits(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        f: Var,
        valid: &[usize],
    ) -> Var {
        let logits = self.sketch_head.forward(g, ps, f);
        let mut mask = Tensor::full(1, SKETCH_VOCAB, -1e9);
        for &i in valid {
            mask.set(0, i, 0.0);
        }
        let m = g.input(mask);
        g.add(logits, m)
    }

    /// The shared-weight half of a pointer head: projects feature rows into
    /// item-encoding space. Row-batched like every other head, so a
    /// multi-request decode can push all requests' rows through one pass and
    /// score each request against its own item matrix afterwards.
    fn pointer_project(&self, g: &mut Graph, ps: &ParamStore, f: Var, which: NonTerminal) -> Var {
        match which {
            NonTerminal::C => self.ptr_col.forward(g, ps, f),
            NonTerminal::T => self.ptr_tab.forward(g, ps, f),
            NonTerminal::V => self.ptr_val.forward(g, ps, f),
            other => unreachable!("pointer_project on {other:?}"),
        }
    }

    /// Scores projected feature rows against an item matrix (scaled dot
    /// product, the second half of [`Decoder::pointer_project`]).
    fn pointer_score_items(&self, g: &mut Graph, proj: Var, items: Var) -> Var {
        let raw = g.matmul_transposed_b(proj, items);
        g.scale(raw, 1.0 / (self.d as f32).sqrt())
    }

    fn pointer_scores(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        f: Var,
        items: Var,
        which: NonTerminal,
    ) -> Var {
        let proj = self.pointer_project(g, ps, f, which);
        self.pointer_score_items(g, proj, items)
    }

    /// Teacher-forced loss over a gold action sequence. Returns a scalar.
    pub fn loss(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        enc: &Encodings,
        actions: &[Action],
    ) -> Var {
        let has_values = enc.values.is_some();
        let mut ts = TransitionSystem::new();
        let mut state = self.init_state(g, ps, enc);
        let mut prev_emb = self.action_emb.forward(g, ps, &[0]);
        let mut prev_ctx = enc.pooled;
        let mut losses = Vec::with_capacity(actions.len());
        for action in actions {
            let frontier = ts.frontier().expect("gold actions exceed derivation");
            let (next_state, f) = self.step(g, ps, enc, prev_emb, prev_ctx, state);
            state = next_state;
            // Keep the attention context for the next input.
            prev_ctx = g.slice_cols(f, g.value(state.h).cols(), g.value(state.h).cols() + self.d);
            let loss = match frontier {
                NonTerminal::C => {
                    let Action::C(i) = action else { panic!("expected C, got {action:?}") };
                    let scores = self.pointer_scores(g, ps, f, enc.columns, NonTerminal::C);
                    g.log_softmax_nll(scores, &[*i])
                }
                NonTerminal::T => {
                    let Action::T(i) = action else { panic!("expected T, got {action:?}") };
                    let scores = self.pointer_scores(g, ps, f, enc.tables, NonTerminal::T);
                    g.log_softmax_nll(scores, &[*i])
                }
                NonTerminal::V => {
                    let Action::V(i) = action else { panic!("expected V, got {action:?}") };
                    let values = enc.values.expect("gold V action without candidates");
                    let scores = self.pointer_scores(g, ps, f, values, NonTerminal::V);
                    g.log_softmax_nll(scores, &[*i])
                }
                _ => {
                    let idx = action
                        .sketch_index()
                        .unwrap_or_else(|| panic!("pointer action at sketch frontier: {action:?}"));
                    let valid = self.valid_sketch(&ts, has_values);
                    debug_assert!(valid.contains(&idx), "gold action masked out: {action:?}");
                    let logits = self.masked_sketch_logits(g, ps, f, &valid);
                    g.log_softmax_nll(logits, &[idx])
                }
            };
            losses.push(loss);
            prev_emb = self.action_input(g, ps, enc, action);
            ts.apply(action).expect("gold action sequence must be grammar-valid");
        }
        assert!(ts.is_complete(), "gold action sequence incomplete");
        let stacked = g.concat_rows(&losses);
        g.mean_all(stacked)
    }

    /// Beam-search decoding under the same grammar constraints.
    ///
    /// Returns up to `beam_width` completed hypotheses, best first (ranked
    /// by mean per-action log-probability, i.e. length-normalised), each
    /// with its summed log-probability. An empty result means no hypothesis
    /// completed within `max_steps`.
    ///
    /// This is the paper lineage's standard decoding upgrade (IRNet decodes
    /// with beam search); combined with execution-guided selection in the
    /// pipeline it also realises a piece of the paper's future work — using
    /// the database to discard candidates that cannot execute.
    ///
    /// All live hypotheses advance through **one** batched LSTM + attention
    /// step per search step (rows stacked with `concat_rows`), so the per-gate
    /// matmuls are `[B, ·]` blocked kernels instead of `B` separate matvecs.
    /// Every output row is computed independently in a fixed order, so the
    /// result is bit-identical to [`Decoder::decode_beam_unbatched`] (covered
    /// by `tests/beam_search.rs`).
    pub fn decode_beam(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        enc: &Encodings,
        max_steps: usize,
        beam_width: usize,
    ) -> Vec<(Vec<Action>, f32)> {
        assert!(beam_width >= 1, "beam width must be at least 1");
        let _span = valuenet_obs::span("decode.beam");
        let has_values = enc.values.is_some();
        let start = self.action_emb.forward(g, ps, &[0]);
        let init = self.init_state(g, ps, enc);
        let mut beams = vec![BeamHyp {
            ts: TransitionSystem::new(),
            state: init,
            prev_emb: start,
            prev_ctx: enc.pooled,
            actions: Vec::new(),
            score: 0.0,
        }];
        let mut completed: Vec<(Vec<Action>, f32)> = Vec::new();
        for _ in 0..max_steps {
            if beams.is_empty() {
                break;
            }
            BEAM_STEPS.add(1);
            // Stack every live hypothesis and run one step for the whole beam.
            let b = beams.len();
            let (state_all, f_all) = {
                let embs: Vec<Var> = beams.iter().map(|h| h.prev_emb).collect();
                let ctxs: Vec<Var> = beams.iter().map(|h| h.prev_ctx).collect();
                let hs: Vec<Var> = beams.iter().map(|h| h.state.h).collect();
                let cs: Vec<Var> = beams.iter().map(|h| h.state.c).collect();
                let prev_emb = g.concat_rows(&embs);
                let prev_ctx = g.concat_rows(&ctxs);
                let state = LstmState { h: g.concat_rows(&hs), c: g.concat_rows(&cs) };
                self.step(g, ps, enc, prev_emb, prev_ctx, state)
            };
            let hidden = g.value(state_all.h).cols();
            let ctx_all = g.slice_cols(f_all, hidden, hidden + self.d);
            // Group rows by frontier kind so each pointer head and the sketch
            // head run once over their subset of rows. Sketch dead ends drop
            // out here (no legal action left).
            let mut ptr_rows: [Vec<usize>; 3] = [Vec::new(), Vec::new(), Vec::new()];
            let mut sketch_rows: Vec<(usize, Vec<usize>)> = Vec::new();
            for (idx, hyp) in beams.iter().enumerate() {
                match hyp.ts.frontier().expect("incomplete hypotheses only") {
                    NonTerminal::C => ptr_rows[0].push(idx),
                    NonTerminal::T => ptr_rows[1].push(idx),
                    NonTerminal::V => ptr_rows[2].push(idx),
                    _ => {
                        let valid = self.valid_sketch(&hyp.ts, has_values);
                        if valid.is_empty() {
                            BEAM_DEAD_ENDS.add(1);
                        } else {
                            sketch_rows.push((idx, valid));
                        }
                    }
                }
            }
            // Log-probabilities over the legal actions, per hypothesis; `None`
            // marks a dead end.
            let mut choices: Vec<Option<Vec<(Action, f32)>>> = (0..b).map(|_| None).collect();
            for (k, rows) in ptr_rows.iter().enumerate() {
                if rows.is_empty() {
                    continue;
                }
                let which = [NonTerminal::C, NonTerminal::T, NonTerminal::V][k];
                let items = match which {
                    NonTerminal::C => enc.columns,
                    NonTerminal::T => enc.tables,
                    _ => enc.values.expect("masking guarantees candidates"),
                };
                let f_k = g.gather_rows(f_all, rows);
                let scores = self.pointer_scores(g, ps, f_k, items, which);
                let lp = g.log_softmax_rows(scores);
                for (j, &idx) in rows.iter().enumerate() {
                    let row = g.value(lp).row(j);
                    choices[idx] = Some(
                        row.iter()
                            .enumerate()
                            .map(|(i, &p)| {
                                let a = match which {
                                    NonTerminal::C => Action::C(i),
                                    NonTerminal::T => Action::T(i),
                                    _ => Action::V(i),
                                };
                                (a, p)
                            })
                            .collect(),
                    );
                }
            }
            if !sketch_rows.is_empty() {
                let rows: Vec<usize> = sketch_rows.iter().map(|&(idx, _)| idx).collect();
                let f_s = g.gather_rows(f_all, &rows);
                let logits = self.sketch_head.forward(g, ps, f_s);
                let mut mask = Tensor::full(sketch_rows.len(), SKETCH_VOCAB, -1e9);
                for (j, (_, valid)) in sketch_rows.iter().enumerate() {
                    for &i in valid {
                        mask.set(j, i, 0.0);
                    }
                }
                let m = g.input(mask);
                let masked = g.add(logits, m);
                let lp = g.log_softmax_rows(masked);
                for (j, (idx, valid)) in sketch_rows.iter().enumerate() {
                    let row = g.value(lp).row(j);
                    choices[*idx] = Some(
                        valid.iter().map(|&i| (Action::from_sketch_index(i), row[i])).collect(),
                    );
                }
            }
            // Expand each live hypothesis exactly like the unbatched search;
            // per-hypothesis state rows are sliced out of the batch lazily
            // (only survivors into the next step need them).
            let mut state_rows: Vec<Option<(Var, Var, Var)>> = (0..b).map(|_| None).collect();
            let mut expansions: Vec<BeamHyp> = Vec::new();
            for (idx, hyp) in beams.drain(..).enumerate() {
                let Some(mut ranked) = choices[idx].take() else { continue };
                BEAM_CANDIDATES.record(ranked.len() as u64);
                ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
                for (action, logp) in ranked.into_iter().take(beam_width) {
                    let mut ts = hyp.ts.clone();
                    if ts.apply(&action).is_err() {
                        continue;
                    }
                    count_choice(&action);
                    BEAM_EXPANDED.add(1);
                    let mut actions = hyp.actions.clone();
                    actions.push(action);
                    let score = hyp.score + logp;
                    if ts.is_complete() {
                        BEAM_COMPLETED.add(1);
                        completed.push((actions, score));
                    } else {
                        if state_rows[idx].is_none() {
                            state_rows[idx] = Some((
                                g.slice_rows(state_all.h, idx, idx + 1),
                                g.slice_rows(state_all.c, idx, idx + 1),
                                g.slice_rows(ctx_all, idx, idx + 1),
                            ));
                        }
                        let (h, c, ctx) = state_rows[idx].expect("just inserted");
                        let prev_emb = self.action_input(g, ps, enc, &action);
                        expansions.push(BeamHyp {
                            ts,
                            state: LstmState { h, c },
                            prev_emb,
                            prev_ctx: ctx,
                            actions,
                            score,
                        });
                    }
                }
            }
            expansions
                .sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));
            BEAM_PRUNED.add(expansions.len().saturating_sub(beam_width) as u64);
            expansions.truncate(beam_width);
            beams = expansions;
            // Early exit: enough completed hypotheses that beat every open one.
            if completed.len() >= beam_width
                && beams
                    .iter()
                    .all(|h| completed.iter().any(|(_, cs)| *cs >= h.score))
            {
                break;
            }
        }
        rank_completed(completed, beam_width)
    }

    /// Per-hypothesis reference implementation of [`Decoder::decode_beam`].
    ///
    /// Steps every hypothesis through its own `[1, ·]` LSTM + attention call.
    /// Kept as the differential oracle for the batched search (the two must
    /// agree bit-for-bit) and as the baseline arm of the speed benchmark.
    pub fn decode_beam_unbatched(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        enc: &Encodings,
        max_steps: usize,
        beam_width: usize,
    ) -> Vec<(Vec<Action>, f32)> {
        assert!(beam_width >= 1, "beam width must be at least 1");
        let _span = valuenet_obs::span("decode.beam");
        let has_values = enc.values.is_some();
        let start = self.action_emb.forward(g, ps, &[0]);
        let init = self.init_state(g, ps, enc);
        let mut beams = vec![BeamHyp {
            ts: TransitionSystem::new(),
            state: init,
            prev_emb: start,
            prev_ctx: enc.pooled,
            actions: Vec::new(),
            score: 0.0,
        }];
        let mut completed: Vec<(Vec<Action>, f32)> = Vec::new();
        for _ in 0..max_steps {
            if beams.is_empty() {
                break;
            }
            BEAM_STEPS.add(1);
            let mut expansions: Vec<BeamHyp> = Vec::new();
            for hyp in beams.drain(..) {
                let frontier = hyp.ts.frontier().expect("incomplete hypotheses only");
                let (state, f) =
                    self.step(g, ps, enc, hyp.prev_emb, hyp.prev_ctx, hyp.state);
                let hidden = g.value(state.h).cols();
                let ctx = g.slice_cols(f, hidden, hidden + self.d);
                // Log-probabilities over the legal actions at this frontier.
                let choices: Vec<(Action, f32)> = match frontier {
                    NonTerminal::C | NonTerminal::T | NonTerminal::V => {
                        let items = match frontier {
                            NonTerminal::C => enc.columns,
                            NonTerminal::T => enc.tables,
                            NonTerminal::V => enc.values.expect("masking guarantees candidates"),
                            _ => unreachable!(),
                        };
                        let scores = self.pointer_scores(g, ps, f, items, frontier);
                        let lp = g.log_softmax_rows(scores);
                        let row = g.value(lp).row(0).to_vec();
                        row.into_iter()
                            .enumerate()
                            .map(|(i, p)| {
                                let a = match frontier {
                                    NonTerminal::C => Action::C(i),
                                    NonTerminal::T => Action::T(i),
                                    _ => Action::V(i),
                                };
                                (a, p)
                            })
                            .collect()
                    }
                    _ => {
                        let valid = self.valid_sketch(&hyp.ts, has_values);
                        if valid.is_empty() {
                            BEAM_DEAD_ENDS.add(1);
                            continue; // dead hypothesis
                        }
                        let logits = self.masked_sketch_logits(g, ps, f, &valid);
                        let lp = g.log_softmax_rows(logits);
                        let row = g.value(lp).row(0);
                        valid
                            .iter()
                            .map(|&i| (Action::from_sketch_index(i), row[i]))
                            .collect()
                    }
                };
                let mut ranked = choices;
                BEAM_CANDIDATES.record(ranked.len() as u64);
                ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
                for (action, logp) in ranked.into_iter().take(beam_width) {
                    let mut ts = hyp.ts.clone();
                    if ts.apply(&action).is_err() {
                        continue;
                    }
                    count_choice(&action);
                    BEAM_EXPANDED.add(1);
                    let mut actions = hyp.actions.clone();
                    actions.push(action);
                    let score = hyp.score + logp;
                    if ts.is_complete() {
                        BEAM_COMPLETED.add(1);
                        completed.push((actions, score));
                    } else {
                        let prev_emb = self.action_input(g, ps, enc, &action);
                        expansions.push(BeamHyp {
                            ts,
                            state,
                            prev_emb,
                            prev_ctx: ctx,
                            actions,
                            score,
                        });
                    }
                }
            }
            expansions
                .sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));
            BEAM_PRUNED.add(expansions.len().saturating_sub(beam_width) as u64);
            expansions.truncate(beam_width);
            beams = expansions;
            // Early exit: enough completed hypotheses that beat every open one.
            if completed.len() >= beam_width
                && beams
                    .iter()
                    .all(|h| completed.iter().any(|(_, cs)| *cs >= h.score))
            {
                break;
            }
        }
        rank_completed(completed, beam_width)
    }

    /// Greedy grammar-constrained decoding.
    ///
    /// # Errors
    /// Returns an error if the derivation does not complete in `max_steps`.
    pub fn decode_greedy(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        enc: &Encodings,
        max_steps: usize,
    ) -> Result<Vec<Action>, String> {
        let _span = valuenet_obs::span("decode.greedy");
        let has_values = enc.values.is_some();
        let num_values = enc.values.map(|v| g.value(v).rows()).unwrap_or(0);
        let mut ts = TransitionSystem::new();
        let mut state = self.init_state(g, ps, enc);
        let mut prev_emb = self.action_emb.forward(g, ps, &[0]);
        let mut prev_ctx = enc.pooled;
        let mut actions = Vec::new();
        while !ts.is_complete() {
            if actions.len() >= max_steps {
                return Err(format!("decoding exceeded {max_steps} steps"));
            }
            let frontier = ts.frontier().expect("incomplete derivation has a frontier");
            let (next_state, f) = self.step(g, ps, enc, prev_emb, prev_ctx, state);
            state = next_state;
            prev_ctx = g.slice_cols(f, g.value(state.h).cols(), g.value(state.h).cols() + self.d);
            let action = match frontier {
                NonTerminal::C => {
                    let scores = self.pointer_scores(g, ps, f, enc.columns, NonTerminal::C);
                    Action::C(g.value(scores).argmax())
                }
                NonTerminal::T => {
                    let scores = self.pointer_scores(g, ps, f, enc.tables, NonTerminal::T);
                    Action::T(g.value(scores).argmax())
                }
                NonTerminal::V => {
                    debug_assert!(num_values > 0, "V frontier reached without candidates");
                    let values = enc.values.expect("checked above");
                    let scores = self.pointer_scores(g, ps, f, values, NonTerminal::V);
                    Action::V(g.value(scores).argmax())
                }
                _ => {
                    let valid = self.valid_sketch(&ts, has_values);
                    if valid.is_empty() {
                        return Err(format!("no valid action at frontier {frontier:?}"));
                    }
                    let logits = self.masked_sketch_logits(g, ps, f, &valid);
                    Action::from_sketch_index(g.value(logits).argmax())
                }
            };
            prev_emb = self.action_input(g, ps, enc, &action);
            ts.apply(&action).map_err(|e| format!("decoder chose invalid action: {e}"))?;
            count_choice(&action);
            actions.push(action);
        }
        Ok(actions)
    }

    /// One fused LSTM + attention step over rows drawn from *multiple*
    /// requests. `blocks` lists, in row order, `(enc index, row count)` per
    /// request; `embs`/`ctxs`/`hs`/`cs` are the flattened per-row inputs.
    ///
    /// The shared-weight kernels (the LSTM gate matmul — the dominant
    /// per-step cost — and the attention query projection) run once over all
    /// rows; attention scores and contexts are computed per request against
    /// that request's own question encodings, so no padding or masking is
    /// needed and every output row stays bit-identical to what the request
    /// would compute alone (the same row-stability discipline
    /// [`Decoder::step`] relies on).
    ///
    /// Returns the stacked state, the stacked attention contexts and the
    /// feature matrix `[B_total, hidden + d]`.
    #[allow(clippy::too_many_arguments)]
    fn step_multi(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        encs: &[Encodings],
        blocks: &[(usize, usize)],
        embs: &[Var],
        ctxs: &[Var],
        hs: &[Var],
        cs: &[Var],
    ) -> (LstmState, Var, Var) {
        let prev_emb = g.concat_rows(embs);
        let prev_ctx = g.concat_rows(ctxs);
        let state = LstmState { h: g.concat_rows(hs), c: g.concat_rows(cs) };
        let x = g.concat_cols(&[prev_emb, prev_ctx]);
        let state = self.cell.step(g, ps, x, state);
        let q_all = self.attn_q.forward(g, ps, state.h);
        let scale = 1.0 / (self.d as f32).sqrt();
        let mut ctx_parts = Vec::with_capacity(blocks.len());
        let mut off = 0usize;
        for &(ei, n) in blocks {
            let enc = &encs[ei];
            let q = if blocks.len() == 1 { q_all } else { g.slice_rows(q_all, off, off + n) };
            let attn = g.attn_softmax(q, enc.question, scale, None);
            ctx_parts.push(g.matmul(attn, enc.question));
            off += n;
        }
        let ctx_all = if ctx_parts.len() == 1 { ctx_parts[0] } else { g.concat_rows(&ctx_parts) };
        let f_all = g.concat_cols(&[state.h, ctx_all]);
        (state, ctx_all, f_all)
    }

    /// Beam search over *several requests at once*: all live hypotheses of
    /// all unfinished requests advance through one [`Decoder::step_multi`]
    /// pass per search step, and each head (sketch, column/table/value
    /// pointers) runs its shared-weight projection once over every row that
    /// needs it across the whole batch. Per-request work — attention over
    /// the request's question, pointer scores against the request's item
    /// matrices, expansion, pruning, completion — is untouched, so each
    /// request terminates independently and drops out of subsequent steps.
    ///
    /// Returns one [`Decoder::decode_beam`]-shaped result per request, in
    /// input order, bit-identical to decoding each request alone (pinned by
    /// `tests/multi_decode.rs`).
    pub fn decode_beam_multi(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        encs: &[Encodings],
        max_steps: usize,
        beam_width: usize,
    ) -> Vec<Vec<(Vec<Action>, f32)>> {
        assert!(beam_width >= 1, "beam width must be at least 1");
        let _span = valuenet_obs::span("decode.beam_multi");
        struct ReqBeam {
            beams: Vec<BeamHyp>,
            completed: Vec<(Vec<Action>, f32)>,
            done: bool,
        }
        let mut reqs: Vec<ReqBeam> = encs
            .iter()
            .map(|enc| {
                let start = self.action_emb.forward(g, ps, &[0]);
                let init = self.init_state(g, ps, enc);
                ReqBeam {
                    beams: vec![BeamHyp {
                        ts: TransitionSystem::new(),
                        state: init,
                        prev_emb: start,
                        prev_ctx: enc.pooled,
                        actions: Vec::new(),
                        score: 0.0,
                    }],
                    completed: Vec::new(),
                    done: false,
                }
            })
            .collect();
        for _ in 0..max_steps {
            for rq in reqs.iter_mut() {
                if rq.beams.is_empty() {
                    rq.done = true;
                }
            }
            let active: Vec<usize> =
                (0..reqs.len()).filter(|&r| !reqs[r].done).collect();
            if active.is_empty() {
                break;
            }
            BEAM_STEPS.add(active.len() as u64);
            // Stack every live hypothesis of every unfinished request.
            let mut blocks: Vec<(usize, usize)> = Vec::with_capacity(active.len());
            let mut embs = Vec::new();
            let mut ctxs = Vec::new();
            let mut hs = Vec::new();
            let mut cs = Vec::new();
            for &r in &active {
                blocks.push((r, reqs[r].beams.len()));
                for h in &reqs[r].beams {
                    embs.push(h.prev_emb);
                    ctxs.push(h.prev_ctx);
                    hs.push(h.state.h);
                    cs.push(h.state.c);
                }
            }
            let (state_all, ctx_all, f_all) =
                self.step_multi(g, ps, encs, &blocks, &embs, &ctxs, &hs, &cs);
            // Group rows by frontier kind across all requests. Rows of one
            // request stay contiguous within a kind, so per-request scores
            // slice out of one shared projection pass.
            let mut ptr_rows: [Vec<(usize, usize, usize)>; 3] =
                [Vec::new(), Vec::new(), Vec::new()];
            let mut sketch_rows: Vec<(usize, usize, usize, Vec<usize>)> = Vec::new();
            let mut base = 0usize;
            for &(r, n) in &blocks {
                let has_values = encs[r].values.is_some();
                for (li, hyp) in reqs[r].beams.iter().enumerate() {
                    let gi = base + li;
                    match hyp.ts.frontier().expect("incomplete hypotheses only") {
                        NonTerminal::C => ptr_rows[0].push((gi, r, li)),
                        NonTerminal::T => ptr_rows[1].push((gi, r, li)),
                        NonTerminal::V => ptr_rows[2].push((gi, r, li)),
                        _ => {
                            let valid = self.valid_sketch(&hyp.ts, has_values);
                            if valid.is_empty() {
                                BEAM_DEAD_ENDS.add(1);
                            } else {
                                sketch_rows.push((gi, r, li, valid));
                            }
                        }
                    }
                }
                base += n;
            }
            let mut choices: Vec<BeamChoices> = reqs
                .iter()
                .map(|rq| if rq.done { Vec::new() } else { vec![None; rq.beams.len()] })
                .collect();
            for (k, rows) in ptr_rows.iter().enumerate() {
                if rows.is_empty() {
                    continue;
                }
                let which = [NonTerminal::C, NonTerminal::T, NonTerminal::V][k];
                let global: Vec<usize> = rows.iter().map(|&(gi, _, _)| gi).collect();
                let f_k = g.gather_rows(f_all, &global);
                // One shared-weight projection pass per pointer head …
                let proj = self.pointer_project(g, ps, f_k, which);
                // … then scores per request, against its own item matrix.
                let mut i = 0;
                while i < rows.len() {
                    let r = rows[i].1;
                    let mut j = i;
                    while j < rows.len() && rows[j].1 == r {
                        j += 1;
                    }
                    let items = match which {
                        NonTerminal::C => encs[r].columns,
                        NonTerminal::T => encs[r].tables,
                        _ => encs[r].values.expect("masking guarantees candidates"),
                    };
                    let proj_r = if i == 0 && j == rows.len() {
                        proj
                    } else {
                        g.slice_rows(proj, i, j)
                    };
                    let scores = self.pointer_score_items(g, proj_r, items);
                    let lp = g.log_softmax_rows(scores);
                    for (jj, &(_, _, li)) in rows[i..j].iter().enumerate() {
                        let row = g.value(lp).row(jj);
                        choices[r][li] = Some(
                            row.iter()
                                .enumerate()
                                .map(|(i2, &p)| {
                                    let a = match which {
                                        NonTerminal::C => Action::C(i2),
                                        NonTerminal::T => Action::T(i2),
                                        _ => Action::V(i2),
                                    };
                                    (a, p)
                                })
                                .collect(),
                        );
                    }
                    i = j;
                }
            }
            if !sketch_rows.is_empty() {
                let global: Vec<usize> = sketch_rows.iter().map(|&(gi, _, _, _)| gi).collect();
                let f_s = g.gather_rows(f_all, &global);
                let logits = self.sketch_head.forward(g, ps, f_s);
                let mut mask = Tensor::full(sketch_rows.len(), SKETCH_VOCAB, -1e9);
                for (j, (_, _, _, valid)) in sketch_rows.iter().enumerate() {
                    for &i in valid {
                        mask.set(j, i, 0.0);
                    }
                }
                let m = g.input(mask);
                let masked = g.add(logits, m);
                let lp = g.log_softmax_rows(masked);
                for (j, (_, r, li, valid)) in sketch_rows.iter().enumerate() {
                    let row = g.value(lp).row(j);
                    choices[*r][*li] = Some(
                        valid.iter().map(|&i| (Action::from_sketch_index(i), row[i])).collect(),
                    );
                }
            }
            // Expand, prune and early-exit each request exactly like the
            // single-request batched search.
            let mut base = 0usize;
            for &(r, n) in &blocks {
                let rq = &mut reqs[r];
                let enc = &encs[r];
                let mut state_rows: Vec<Option<(Var, Var, Var)>> = (0..n).map(|_| None).collect();
                let mut expansions: Vec<BeamHyp> = Vec::new();
                for (li, hyp) in rq.beams.drain(..).enumerate() {
                    let Some(mut ranked) = choices[r][li].take() else { continue };
                    BEAM_CANDIDATES.record(ranked.len() as u64);
                    ranked.sort_by(|a, b| {
                        b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal)
                    });
                    for (action, logp) in ranked.into_iter().take(beam_width) {
                        let mut ts = hyp.ts.clone();
                        if ts.apply(&action).is_err() {
                            continue;
                        }
                        count_choice(&action);
                        BEAM_EXPANDED.add(1);
                        let mut actions = hyp.actions.clone();
                        actions.push(action);
                        let score = hyp.score + logp;
                        if ts.is_complete() {
                            BEAM_COMPLETED.add(1);
                            rq.completed.push((actions, score));
                        } else {
                            let gi = base + li;
                            if state_rows[li].is_none() {
                                state_rows[li] = Some((
                                    g.slice_rows(state_all.h, gi, gi + 1),
                                    g.slice_rows(state_all.c, gi, gi + 1),
                                    g.slice_rows(ctx_all, gi, gi + 1),
                                ));
                            }
                            let (h, c, ctx) = state_rows[li].expect("just inserted");
                            let prev_emb = self.action_input(g, ps, enc, &action);
                            expansions.push(BeamHyp {
                                ts,
                                state: LstmState { h, c },
                                prev_emb,
                                prev_ctx: ctx,
                                actions,
                                score,
                            });
                        }
                    }
                }
                expansions.sort_by(|a, b| {
                    b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal)
                });
                BEAM_PRUNED.add(expansions.len().saturating_sub(beam_width) as u64);
                expansions.truncate(beam_width);
                rq.beams = expansions;
                if rq.completed.len() >= beam_width
                    && rq
                        .beams
                        .iter()
                        .all(|h| rq.completed.iter().any(|(_, cs)| *cs >= h.score))
                {
                    rq.done = true;
                    rq.beams.clear();
                }
                base += n;
            }
        }
        reqs.into_iter().map(|rq| rank_completed(rq.completed, beam_width)).collect()
    }

    /// Greedy decoding over several requests at once: one
    /// [`Decoder::step_multi`] pass per step with one row per live request,
    /// shared-weight head projections batched across requests, argmax and
    /// grammar bookkeeping per request. Each request's result is
    /// bit-identical to [`Decoder::decode_greedy`] on that request alone —
    /// including the exact error strings for step-budget exhaustion and
    /// dead-end frontiers.
    pub fn decode_greedy_multi(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        encs: &[Encodings],
        max_steps: usize,
    ) -> Vec<Result<Vec<Action>, String>> {
        let _span = valuenet_obs::span("decode.greedy_multi");
        struct ReqGreedy {
            ts: TransitionSystem,
            state: LstmState,
            prev_emb: Var,
            prev_ctx: Var,
            actions: Vec<Action>,
            result: Option<Result<Vec<Action>, String>>,
        }
        let mut reqs: Vec<ReqGreedy> = encs
            .iter()
            .map(|enc| ReqGreedy {
                ts: TransitionSystem::new(),
                state: self.init_state(g, ps, enc),
                prev_emb: self.action_emb.forward(g, ps, &[0]),
                prev_ctx: enc.pooled,
                actions: Vec::new(),
                result: None,
            })
            .collect();
        loop {
            // Terminal checks, in the single-request loop's order: a complete
            // derivation finishes Ok; an over-budget one finishes Err.
            for rq in reqs.iter_mut() {
                if rq.result.is_some() {
                    continue;
                }
                if rq.ts.is_complete() {
                    rq.result = Some(Ok(std::mem::take(&mut rq.actions)));
                } else if rq.actions.len() >= max_steps {
                    rq.result = Some(Err(format!("decoding exceeded {max_steps} steps")));
                }
            }
            let active: Vec<usize> =
                (0..reqs.len()).filter(|&r| reqs[r].result.is_none()).collect();
            if active.is_empty() {
                break;
            }
            let blocks: Vec<(usize, usize)> = active.iter().map(|&r| (r, 1)).collect();
            let embs: Vec<Var> = active.iter().map(|&r| reqs[r].prev_emb).collect();
            let ctxs: Vec<Var> = active.iter().map(|&r| reqs[r].prev_ctx).collect();
            let hs: Vec<Var> = active.iter().map(|&r| reqs[r].state.h).collect();
            let cs: Vec<Var> = active.iter().map(|&r| reqs[r].state.c).collect();
            let (state_all, ctx_all, f_all) =
                self.step_multi(g, ps, encs, &blocks, &embs, &ctxs, &hs, &cs);
            for (gi, &r) in active.iter().enumerate() {
                let rq = &mut reqs[r];
                rq.state = LstmState {
                    h: g.slice_rows(state_all.h, gi, gi + 1),
                    c: g.slice_rows(state_all.c, gi, gi + 1),
                };
                rq.prev_ctx = g.slice_rows(ctx_all, gi, gi + 1);
            }
            // Group the single row of each request by frontier kind.
            let mut ptr_rows: [Vec<(usize, usize)>; 3] = [Vec::new(), Vec::new(), Vec::new()];
            let mut sketch_rows: Vec<(usize, usize, Vec<usize>)> = Vec::new();
            let mut dead: Vec<(usize, NonTerminal)> = Vec::new();
            for (gi, &r) in active.iter().enumerate() {
                let rq = &reqs[r];
                let frontier = rq.ts.frontier().expect("incomplete derivation has a frontier");
                match frontier {
                    NonTerminal::C => ptr_rows[0].push((gi, r)),
                    NonTerminal::T => ptr_rows[1].push((gi, r)),
                    NonTerminal::V => ptr_rows[2].push((gi, r)),
                    _ => {
                        let valid = self.valid_sketch(&rq.ts, encs[r].values.is_some());
                        if valid.is_empty() {
                            dead.push((r, frontier));
                        } else {
                            sketch_rows.push((gi, r, valid));
                        }
                    }
                }
            }
            for (r, frontier) in dead {
                reqs[r].result = Some(Err(format!("no valid action at frontier {frontier:?}")));
            }
            let mut pending: Vec<Option<Action>> = vec![None; reqs.len()];
            for (k, rows) in ptr_rows.iter().enumerate() {
                if rows.is_empty() {
                    continue;
                }
                let which = [NonTerminal::C, NonTerminal::T, NonTerminal::V][k];
                let global: Vec<usize> = rows.iter().map(|&(gi, _)| gi).collect();
                let f_k = g.gather_rows(f_all, &global);
                let proj = self.pointer_project(g, ps, f_k, which);
                for (j, &(_, r)) in rows.iter().enumerate() {
                    let items = match which {
                        NonTerminal::C => encs[r].columns,
                        NonTerminal::T => encs[r].tables,
                        _ => encs[r].values.expect("V frontier without candidates"),
                    };
                    let proj_r = if rows.len() == 1 {
                        proj
                    } else {
                        g.slice_rows(proj, j, j + 1)
                    };
                    let scores = self.pointer_score_items(g, proj_r, items);
                    let i = g.value(scores).argmax();
                    pending[r] = Some(match which {
                        NonTerminal::C => Action::C(i),
                        NonTerminal::T => Action::T(i),
                        _ => Action::V(i),
                    });
                }
            }
            if !sketch_rows.is_empty() {
                let global: Vec<usize> = sketch_rows.iter().map(|&(gi, _, _)| gi).collect();
                let f_s = g.gather_rows(f_all, &global);
                let logits = self.sketch_head.forward(g, ps, f_s);
                let mut mask = Tensor::full(sketch_rows.len(), SKETCH_VOCAB, -1e9);
                for (j, (_, _, valid)) in sketch_rows.iter().enumerate() {
                    for &i in valid {
                        mask.set(j, i, 0.0);
                    }
                }
                let m = g.input(mask);
                let masked = g.add(logits, m);
                for (j, (_, r, _)) in sketch_rows.iter().enumerate() {
                    // Row argmax with `Tensor::argmax` semantics (first
                    // strict maximum wins).
                    let row = g.value(masked).row(j);
                    let mut best = 0;
                    for (i, &v) in row.iter().enumerate() {
                        if v > row[best] {
                            best = i;
                        }
                    }
                    pending[*r] = Some(Action::from_sketch_index(best));
                }
            }
            for &r in &active {
                let Some(action) = pending[r] else { continue };
                let enc = &encs[r];
                let prev_emb = self.action_input(g, ps, enc, &action);
                let rq = &mut reqs[r];
                rq.prev_emb = prev_emb;
                match rq.ts.apply(&action) {
                    Ok(()) => {
                        count_choice(&action);
                        rq.actions.push(action);
                    }
                    Err(e) => {
                        rq.result = Some(Err(format!("decoder chose invalid action: {e}")));
                    }
                }
            }
        }
        reqs.into_iter()
            .map(|rq| rq.result.expect("every request finished"))
            .collect()
    }
}

/// Whether applying this sketch action eventually forces a `V` pointer.
fn action_needs_value(a: Action) -> bool {
    use valuenet_semql::{FilterRule, RRule};
    match a {
        Action::R(RRule::SSup) | Action::R(RRule::SSupF) | Action::SupRule(_) => true,
        Action::F(rule) => matches!(
            rule,
            FilterRule::Eq
                | FilterRule::Ne
                | FilterRule::Lt
                | FilterRule::Gt
                | FilterRule::Le
                | FilterRule::Ge
                | FilterRule::Between
                | FilterRule::Like
                | FilterRule::NotLike
        ),
        _ => false,
    }
}
