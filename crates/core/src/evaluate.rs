//! Scoring a pipeline over a sample split, fanned out over worker threads.
//!
//! Each sample's translate-and-execute round trip is independent (the
//! [`Pipeline`] is read-only during inference), so the sweep parallelises
//! with [`valuenet_par::par_map`]. Outputs are collected in sample order,
//! so every aggregate — accuracy, per-difficulty counts, failure lists — is
//! identical for any thread count.

use crate::pipeline::{Pipeline, Prediction, ValueMode};
use std::collections::BTreeMap;
use valuenet_dataset::{Corpus, Sample};
use valuenet_eval::{exact_match, execution_accuracy, Difficulty, ExecOutcome};
use valuenet_sql::{parse_select, SelectStmt};

/// Evaluation outcome of one sample.
pub struct SampleEval {
    /// Index into the evaluated split.
    pub index: usize,
    /// The execution-accuracy outcome.
    pub outcome: ExecOutcome,
    /// Whether the sketch/schema components matched (Exact-Match metric).
    pub exact: bool,
    /// Query difficulty.
    pub difficulty: Difficulty,
    /// The full prediction (for error analysis and timing).
    pub prediction: Prediction,
    /// The parsed gold query.
    pub gold: SelectStmt,
}

/// Aggregate evaluation of a split.
pub struct EvalStats {
    /// Per-sample outcomes, in split order.
    pub samples: Vec<SampleEval>,
}

impl EvalStats {
    /// Execution accuracy over all samples (gold failures excluded).
    pub fn execution_accuracy(&self) -> f64 {
        let scored: Vec<&SampleEval> = self
            .samples
            .iter()
            .filter(|s| s.outcome != ExecOutcome::GoldFailed)
            .collect();
        if scored.is_empty() {
            return 0.0;
        }
        scored.iter().filter(|s| s.outcome.is_correct()).count() as f64 / scored.len() as f64
    }

    /// Exact-Matching accuracy.
    pub fn exact_match_accuracy(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|s| s.exact).count() as f64 / self.samples.len() as f64
    }

    /// `(correct, total)` per Spider difficulty.
    pub fn by_difficulty(&self) -> BTreeMap<Difficulty, (usize, usize)> {
        let mut map: BTreeMap<Difficulty, (usize, usize)> = BTreeMap::new();
        for s in &self.samples {
            if s.outcome == ExecOutcome::GoldFailed {
                continue;
            }
            let e = map.entry(s.difficulty).or_insert((0, 0));
            e.1 += 1;
            if s.outcome.is_correct() {
                e.0 += 1;
            }
        }
        map
    }

    /// The failed samples.
    pub fn failures(&self) -> Vec<&SampleEval> {
        self.samples
            .iter()
            .filter(|s| {
                matches!(s.outcome, ExecOutcome::WrongResult | ExecOutcome::PredictionFailed)
            })
            .collect()
    }
}

/// Runs a pipeline over a sample set and scores every prediction, using the
/// process-wide default worker count. In [`ValueMode::Light`] the gold value
/// options are passed through (the oracle the paper describes).
pub fn evaluate(pipeline: &Pipeline, corpus: &Corpus, samples: &[Sample]) -> EvalStats {
    evaluate_with_threads(pipeline, corpus, samples, 0)
}

/// [`evaluate`] with an explicit worker count (`0` = process-wide default).
/// The outcome counts are identical for any thread count.
pub fn evaluate_with_threads(
    pipeline: &Pipeline,
    corpus: &Corpus,
    samples: &[Sample],
    threads: usize,
) -> EvalStats {
    let _span = valuenet_obs::span("eval");
    let samples = valuenet_par::par_map(samples, threads, |index, sample| {
        let _sample_span = valuenet_obs::span("eval.sample");
        let db = corpus.db(sample);
        let gold = parse_select(&sample.sql).expect("gold SQL parses by construction");
        let gold_values = match pipeline.mode {
            ValueMode::Light => Some(sample.values.as_slice()),
            _ => None,
        };
        let prediction = pipeline.translate(db, &sample.question, gold_values);
        let (outcome, exact) = match &prediction.sql {
            Some(sql) => (execution_accuracy(db, sql, &gold), exact_match(sql, &gold)),
            None => (ExecOutcome::PredictionFailed, false),
        };
        SampleEval { index, outcome, exact, difficulty: sample.difficulty, prediction, gold }
    });
    EvalStats { samples }
}
