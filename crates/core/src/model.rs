//! The assembled ValueNet model: encoder + decoder + parameters.

use crate::decoder::Decoder;
use crate::encoder::{Encoder, Encodings};
use crate::input::{InputOptions, ModelInput};
use crate::vocab::Vocab;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use valuenet_nn::ParamStore;
use valuenet_semql::Action;
use valuenet_tensor::{Graph, Var};

/// Model hyper-parameters. The defaults are laptop-scale versions of the
/// paper's setup (the paper uses BERT-Base with 300-dimensional LSTM
/// summarisers; we train from scratch, so smaller is both sufficient and
/// necessary for CPU training).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Shared model dimension.
    pub d_model: usize,
    /// Hidden size of the Bi-LSTM item summariser (output is twice this).
    pub summary_hidden: usize,
    /// Attention heads per transformer block.
    pub heads: usize,
    /// Number of transformer blocks.
    pub encoder_layers: usize,
    /// Transformer feed-forward inner size.
    pub ffn_inner: usize,
    /// Action-embedding dimension.
    pub action_dim: usize,
    /// Decoder LSTM hidden size.
    pub decoder_hidden: usize,
    /// Dropout probability (question embeddings, training only).
    pub dropout: f32,
    /// Decoding step budget.
    pub max_decode_steps: usize,
    /// Beam width for decoding (`1` = greedy). With a width above one the
    /// pipeline performs execution-guided selection: the best-scoring
    /// hypothesis whose SQL actually executes wins.
    pub beam_width: usize,
    /// Feed question/schema hints to the encoder (ablation knob).
    pub use_hints: bool,
    /// Encode value candidates with their table/column location (Fig. 8;
    /// ablation knob).
    pub encode_value_location: bool,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            d_model: 64,
            summary_hidden: 32,
            heads: 4,
            encoder_layers: 2,
            ffn_inner: 128,
            action_dim: 48,
            decoder_hidden: 128,
            dropout: 0.1,
            max_decode_steps: 80,
            beam_width: 1,
            use_hints: true,
            encode_value_location: true,
        }
    }
}

impl ModelConfig {
    /// An even smaller configuration for fast unit tests.
    pub fn tiny() -> Self {
        ModelConfig {
            d_model: 32,
            summary_hidden: 16,
            heads: 2,
            encoder_layers: 1,
            ffn_inner: 48,
            action_dim: 24,
            decoder_hidden: 48,
            dropout: 0.0,
            max_decode_steps: 80,
            beam_width: 1,
            use_hints: true,
            encode_value_location: true,
        }
    }
}

/// Serialised model (config + vocabulary + weights).
#[derive(Serialize, Deserialize)]
struct SavedModel {
    config: ModelConfig,
    vocab: Vocab,
    params: String,
}

thread_local! {
    /// When set, inference runs on a fresh scalar tape (no packed weights,
    /// no int8, no recycled tape) — see [`ValueNetModel::with_scalar_fallback`].
    static FORCE_SCALAR: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// The complete ValueNet neural model.
pub struct ValueNetModel {
    /// Hyper-parameters.
    pub config: ModelConfig,
    /// Word vocabulary.
    pub vocab: Vocab,
    /// All trainable weights.
    pub params: ParamStore,
    encoder: Encoder,
    decoder: Decoder,
}

impl ValueNetModel {
    /// Builds a freshly initialised model.
    pub fn new(config: ModelConfig, vocab: Vocab, seed: u64) -> Self {
        let mut ps = ParamStore::new();
        let mut rng = SmallRng::seed_from_u64(seed);
        let encoder = Encoder::new(&mut ps, &mut rng, &config, vocab.len());
        let decoder = Decoder::new(&mut ps, &mut rng, &config);
        ValueNetModel { config, vocab, params: ps, encoder, decoder }
    }

    /// Number of scalar weights.
    pub fn num_weights(&self) -> usize {
        self.params.num_weights()
    }

    /// The input-construction options implied by this configuration.
    pub fn input_options(&self) -> InputOptions {
        InputOptions {
            use_hints: self.config.use_hints,
            encode_value_location: self.config.encode_value_location,
        }
    }

    /// Encodes an input (training mode when `dropout_rng` is provided).
    pub fn encode(
        &self,
        g: &mut Graph,
        input: &ModelInput,
        dropout_rng: Option<&mut SmallRng>,
    ) -> Encodings {
        let _span = valuenet_obs::span("model.encode");
        self.encoder.forward(g, &self.params, input, self.config.dropout, dropout_rng)
    }

    /// Teacher-forced loss of one sample; returns the graph's loss node.
    pub fn loss(
        &self,
        g: &mut Graph,
        input: &ModelInput,
        gold_actions: &[Action],
        dropout_rng: Option<&mut SmallRng>,
    ) -> Var {
        let enc = self.encode(g, input, dropout_rng);
        self.decoder.loss(g, &self.params, &enc, gold_actions)
    }

    /// Runs `f` with this thread forced onto the scalar tape path:
    /// [`ValueNetModel::predict`] / [`ValueNetModel::predict_beam`] inside
    /// `f` use a fresh non-inference tape, bypassing the packed-weight and
    /// int8 caches entirely. This is the serving engine's degradation
    /// ladder — when a packed/quantized kernel panics, the request is
    /// retried once on this path before failing. The flag is restored even
    /// if `f` unwinds.
    pub fn with_scalar_fallback<R>(f: impl FnOnce() -> R) -> R {
        struct Restore(bool);
        impl Drop for Restore {
            fn drop(&mut self) {
                FORCE_SCALAR.with(|c| c.set(self.0));
            }
        }
        let _restore = FORCE_SCALAR.with(|c| Restore(c.replace(true)));
        f()
    }

    /// Whether [`ValueNetModel::with_scalar_fallback`] is active on this
    /// thread.
    pub fn scalar_fallback_active() -> bool {
        FORCE_SCALAR.with(|c| c.get())
    }

    /// Runs `f` on a thread-local recycled tape (capacity and, through the
    /// buffer pool, every tensor from the previous query survive), or on a
    /// fresh tape when the execution rework is toggled off — the pre-rework
    /// behaviour the speed benchmark's baseline arm measures. Under
    /// [`ValueNetModel::with_scalar_fallback`] the recycled inference tape
    /// (and with it every packed/quantized fast path) is bypassed.
    fn with_inference_tape<R>(f: impl FnOnce(&mut Graph) -> R) -> R {
        if valuenet_tensor::fusion_enabled() && !Self::scalar_fallback_active() {
            thread_local! {
                static TAPE: std::cell::RefCell<Graph> = std::cell::RefCell::new(Graph::new());
            }
            TAPE.with(|tape| {
                let mut g = tape.borrow_mut();
                g.reset();
                // Inference tape: layers may evaluate parameter applications
                // off-tape against the packed-weight cache (bit-identical on
                // the f32 path; int8 when the store is set quantized).
                g.set_inference(true);
                f(&mut g)
            })
        } else {
            f(&mut Graph::new())
        }
    }

    /// Greedy grammar-constrained prediction.
    ///
    /// # Errors
    /// Propagates decoding failures (step-budget exhaustion).
    pub fn predict(&self, input: &ModelInput) -> Result<Vec<Action>, String> {
        Self::with_inference_tape(|g| {
            let enc = self.encode(g, input, None);
            self.decoder.decode_greedy(g, &self.params, &enc, self.config.max_decode_steps)
        })
    }

    /// Beam-search prediction: up to `config.beam_width` completed action
    /// sequences, best first, with their summed log-probabilities.
    pub fn predict_beam(&self, input: &ModelInput) -> Vec<(Vec<Action>, f32)> {
        Self::with_inference_tape(|g| {
            let enc = self.encode(g, input, None);
            self.decoder.decode_beam(
                g,
                &self.params,
                &enc,
                self.config.max_decode_steps,
                self.config.beam_width.max(1),
            )
        })
    }

    /// Beam-search prediction for several inputs at once: all requests'
    /// live hypotheses ride the same fused LSTM/attention/pointer kernels,
    /// one pass per search step (see [`Decoder::decode_beam_multi`]). A
    /// single input takes the exact [`ValueNetModel::predict_beam`] code
    /// path; every result is bit-identical to predicting that input alone.
    pub fn predict_beam_multi(&self, inputs: &[&ModelInput]) -> Vec<Vec<(Vec<Action>, f32)>> {
        if inputs.len() == 1 {
            return vec![self.predict_beam(inputs[0])];
        }
        Self::with_inference_tape(|g| {
            let encs: Vec<Encodings> =
                inputs.iter().map(|input| self.encode(g, input, None)).collect();
            self.decoder.decode_beam_multi(
                g,
                &self.params,
                &encs,
                self.config.max_decode_steps,
                self.config.beam_width.max(1),
            )
        })
    }

    /// Greedy prediction for several inputs at once, one fused step pass per
    /// decode step (see [`Decoder::decode_greedy_multi`]). A single input
    /// takes the exact [`ValueNetModel::predict`] code path; every result —
    /// including error strings — is bit-identical to predicting that input
    /// alone.
    pub fn predict_greedy_multi(&self, inputs: &[&ModelInput]) -> Vec<Result<Vec<Action>, String>> {
        if inputs.len() == 1 {
            return vec![self.predict(inputs[0])];
        }
        Self::with_inference_tape(|g| {
            let encs: Vec<Encodings> =
                inputs.iter().map(|input| self.encode(g, input, None)).collect();
            self.decoder.decode_greedy_multi(g, &self.params, &encs, self.config.max_decode_steps)
        })
    }

    /// Beam-search prediction through the per-hypothesis reference decoder
    /// ([`Decoder::decode_beam_unbatched`]). Bit-identical to
    /// [`ValueNetModel::predict_beam`]; kept as the differential oracle and
    /// the baseline arm of the speed benchmark.
    pub fn predict_beam_unbatched(&self, input: &ModelInput) -> Vec<(Vec<Action>, f32)> {
        let mut g = Graph::new();
        let enc = self.encode(&mut g, input, None);
        self.decoder.decode_beam_unbatched(
            &mut g,
            &self.params,
            &enc,
            self.config.max_decode_steps,
            self.config.beam_width.max(1),
        )
    }

    /// Replaces the model's weights with a store restored from a checkpoint,
    /// after checking that it matches this architecture parameter-for-
    /// parameter (count, names and shapes).
    ///
    /// # Errors
    /// Describes the first mismatch; the model is left unchanged.
    pub fn load_params(&mut self, params: ParamStore) -> Result<(), String> {
        if params.len() != self.params.len() {
            return Err(format!(
                "checkpoint has {} parameters, architecture expects {}",
                params.len(),
                self.params.len()
            ));
        }
        for (new, old) in params.ids().zip(self.params.ids()) {
            if params.name(new) != self.params.name(old) {
                return Err(format!(
                    "parameter {} is named `{}` in the checkpoint, `{}` in the architecture",
                    old.index(),
                    params.name(new),
                    self.params.name(old)
                ));
            }
            if params.shape(new) != self.params.shape(old) {
                return Err(format!(
                    "parameter `{}` has shape {:?} in the checkpoint, {:?} in the architecture",
                    params.name(new),
                    params.shape(new),
                    self.params.shape(old)
                ));
            }
        }
        self.params = params;
        Ok(())
    }

    /// Serialises config, vocabulary and weights to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(&SavedModel {
            config: self.config.clone(),
            vocab: self.vocab.clone(),
            params: self.params.to_json(),
        })
        .expect("model serialisation cannot fail")
    }

    /// Restores a model saved with [`ValueNetModel::to_json`].
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        let saved: SavedModel = serde_json::from_str(json)?;
        let mut model = ValueNetModel::new(saved.config, saved.vocab, 0);
        let params = ParamStore::from_json(&saved.params)?;
        assert_eq!(
            params.len(),
            model.params.len(),
            "saved parameter count does not match the architecture"
        );
        model.params = params;
        Ok(model)
    }
}
