//! Model-input construction: question + hints, schema items, and value
//! candidates with their locations (paper Figs. 6–8).

use crate::vocab::Vocab;
use valuenet_preprocess::{Preprocessed, QuestionHint, SchemaHint};
use valuenet_schema::ColumnId;
use valuenet_storage::Database;

/// Word-id sequence of one encodable item (column / table / value).
#[derive(Debug, Clone)]
pub struct ItemTokens {
    /// Word ids (never empty).
    pub word_ids: Vec<usize>,
}

/// Everything the encoder consumes for one question.
#[derive(Debug, Clone)]
pub struct ModelInput {
    /// Question word ids.
    pub question_ids: Vec<usize>,
    /// Question-hint class per token.
    pub question_hints: Vec<usize>,
    /// One entry per schema column (index = `ColumnId.0`).
    pub columns: Vec<ItemTokens>,
    /// Schema-hint class per column.
    pub column_hints: Vec<usize>,
    /// Column-type class per column (5 = the `*` pseudo-column).
    pub column_types: Vec<usize>,
    /// One entry per schema table.
    pub tables: Vec<ItemTokens>,
    /// Schema-hint class per table.
    pub table_hints: Vec<usize>,
    /// One entry per value candidate: value words ⊕ its location's table and
    /// column words (Fig. 8).
    pub values: Vec<ItemTokens>,
    /// Candidate texts, parallel to `values` (resolves `V` pointers).
    pub candidates: Vec<String>,
}

/// Number of question-hint classes.
pub const NUM_QUESTION_HINTS: usize = 6;
/// Number of schema-hint classes.
pub const NUM_SCHEMA_HINTS: usize = 4;
/// Number of column-type classes (five logical types + `*`).
pub const NUM_COLUMN_TYPES: usize = 6;

fn qhint_id(h: QuestionHint) -> usize {
    match h {
        QuestionHint::None => 0,
        QuestionHint::Table => 1,
        QuestionHint::Column => 2,
        QuestionHint::Value => 3,
        QuestionHint::Agg => 4,
        QuestionHint::Superlative => 5,
    }
}

fn shint_id(h: SchemaHint) -> usize {
    match h {
        SchemaHint::None => 0,
        SchemaHint::Partial => 1,
        SchemaHint::Exact => 2,
        SchemaHint::ValueCandidate => 3,
    }
}

fn ctype_id(ty: valuenet_schema::ColumnType) -> usize {
    match ty {
        valuenet_schema::ColumnType::Text => 0,
        valuenet_schema::ColumnType::Number => 1,
        valuenet_schema::ColumnType::Time => 2,
        valuenet_schema::ColumnType::Boolean => 3,
        valuenet_schema::ColumnType::Others => 4,
    }
}

/// Ablation switches for input construction (`DESIGN.md` Section 5).
#[derive(Debug, Clone, Copy)]
pub struct InputOptions {
    /// Feed the question/schema hint classes to the encoder (Figs. 6–7).
    pub use_hints: bool,
    /// Encode each value candidate together with its table/column location
    /// (Fig. 8) rather than the bare value text.
    pub encode_value_location: bool,
}

impl Default for InputOptions {
    fn default() -> Self {
        InputOptions { use_hints: true, encode_value_location: true }
    }
}

/// Builds the encoder input. `candidates` supplies the value options —
/// ground truth for *ValueNet light*, the candidate pipeline's output for
/// *ValueNet* — each with the columns it was located in.
pub fn build_input(
    db: &Database,
    pre: &Preprocessed,
    candidates: &[(String, Vec<ColumnId>)],
    vocab: &Vocab,
) -> ModelInput {
    build_input_opts(db, pre, candidates, vocab, InputOptions::default())
}

/// [`build_input`] with explicit ablation options.
pub fn build_input_opts(
    db: &Database,
    pre: &Preprocessed,
    candidates: &[(String, Vec<ColumnId>)],
    vocab: &Vocab,
    opts: InputOptions,
) -> ModelInput {
    let schema = db.schema();
    let question_ids: Vec<usize> = pre.tokens.iter().map(|t| vocab.id(&t.lower)).collect();
    let question_hints: Vec<usize> = if opts.use_hints {
        pre.question_hints.iter().map(|&h| qhint_id(h)).collect()
    } else {
        vec![0; pre.question_hints.len()]
    };

    let mut columns = Vec::with_capacity(schema.columns.len());
    let mut column_hints = Vec::with_capacity(schema.columns.len());
    let mut column_types = Vec::with_capacity(schema.columns.len());
    for (i, col) in schema.columns.iter().enumerate() {
        columns.push(ItemTokens { word_ids: vocab.ids(&col.display) });
        column_hints.push(if opts.use_hints { shint_id(pre.schema_hints.columns[i]) } else { 0 });
        column_types.push(if i == 0 { 5 } else { ctype_id(col.ty) });
    }

    let mut tables = Vec::with_capacity(schema.tables.len());
    let mut table_hints = Vec::with_capacity(schema.tables.len());
    for (i, t) in schema.tables.iter().enumerate() {
        tables.push(ItemTokens { word_ids: vocab.ids(&t.display) });
        table_hints.push(if opts.use_hints { shint_id(pre.schema_hints.tables[i]) } else { 0 });
    }

    let mut values = Vec::with_capacity(candidates.len());
    let mut cand_texts = Vec::with_capacity(candidates.len());
    for (text, locations) in candidates {
        // Value words first, then the location (table ⊕ column) words, so the
        // encoder can attend to where the value was found (Fig. 8).
        let mut word_ids = vocab.ids(text);
        if !opts.encode_value_location {
            values.push(ItemTokens { word_ids });
            cand_texts.push(text.clone());
            continue;
        }
        if let Some(&col) = locations.first() {
            if !col.is_star() && col.0 < schema.columns.len() {
                let c = schema.column(col);
                if let Some(t) = c.table {
                    word_ids.extend(vocab.ids(&schema.table(t).display));
                }
                word_ids.extend(vocab.ids(&c.display));
            }
        }
        values.push(ItemTokens { word_ids });
        cand_texts.push(text.clone());
    }

    ModelInput {
        question_ids,
        question_hints,
        columns,
        column_hints,
        column_types,
        tables,
        table_hints,
        values,
        candidates: cand_texts,
    }
}

/// The candidate texts of an input (the `V`-pointer target list).
pub fn candidate_texts(input: &ModelInput) -> &[String] {
    &input.candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use valuenet_preprocess::{preprocess, CandidateConfig, HeuristicNer};
    use valuenet_schema::{ColumnType, SchemaBuilder};

    fn demo_db() -> Database {
        let schema = SchemaBuilder::new("d")
            .table(
                "student",
                &[
                    ("stu_id", ColumnType::Number),
                    ("name", ColumnType::Text),
                    ("age", ColumnType::Number),
                    ("home_country", ColumnType::Text),
                ],
            )
            .build();
        let mut db = Database::new(schema);
        let s = db.schema().table_by_name("student").unwrap();
        db.insert(s, vec![1.into(), "Alice".into(), 20.into(), "France".into()]);
        db.rebuild_index();
        db
    }

    #[test]
    fn builds_aligned_input() {
        let db = demo_db();
        let q = "How many students are from France?";
        let pre = preprocess(q, &db, &HeuristicNer::new(), &CandidateConfig::default());
        let vocab = Vocab::build([q, "student name age home country france"].into_iter());
        let country = db.schema().any_column_by_name("home_country").map(|(_, c)| c).unwrap();
        let cands = vec![("France".to_string(), vec![country])];
        let input = build_input(&db, &pre, &cands, &vocab);

        assert_eq!(input.question_ids.len(), input.question_hints.len());
        assert_eq!(input.columns.len(), db.schema().columns.len());
        assert_eq!(input.tables.len(), 1);
        assert_eq!(input.values.len(), 1);
        assert_eq!(input.candidates, vec!["France"]);
        // The value item must include its location words (student, home, country).
        let val_ids = &input.values[0].word_ids;
        assert!(val_ids.len() >= 3, "location words missing: {val_ids:?}");
        assert!(val_ids.contains(&vocab.id("student")));
        assert!(val_ids.contains(&vocab.id("country")));
        // Star column typed as class 5.
        assert_eq!(input.column_types[0], 5);
    }

    #[test]
    fn ablation_options_strip_features() {
        let db = demo_db();
        let q = "How many students are from France?";
        let pre = preprocess(q, &db, &HeuristicNer::new(), &CandidateConfig::default());
        let vocab = Vocab::build([q, "student name age home country france"].into_iter());
        let country = db.schema().any_column_by_name("home_country").map(|(_, c)| c).unwrap();
        let cands = vec![("France".to_string(), vec![country])];

        let no_hints = build_input_opts(
            &db,
            &pre,
            &cands,
            &vocab,
            InputOptions { use_hints: false, encode_value_location: true },
        );
        assert!(no_hints.question_hints.iter().all(|&h| h == 0));
        assert!(no_hints.column_hints.iter().all(|&h| h == 0));
        assert!(no_hints.table_hints.iter().all(|&h| h == 0));

        let no_loc = build_input_opts(
            &db,
            &pre,
            &cands,
            &vocab,
            InputOptions { use_hints: true, encode_value_location: false },
        );
        // Without the location, the value item is just the value's words.
        assert_eq!(no_loc.values[0].word_ids, vocab.ids("France"));
        let with_loc = build_input(&db, &pre, &cands, &vocab);
        assert!(with_loc.values[0].word_ids.len() > no_loc.values[0].word_ids.len());
    }

    #[test]
    fn empty_candidate_list_ok() {
        let db = demo_db();
        let q = "How many students are there?";
        let pre = preprocess(q, &db, &HeuristicNer::new(), &CandidateConfig::default());
        let vocab = Vocab::build([q].into_iter());
        let input = build_input(&db, &pre, &[], &vocab);
        assert!(input.values.is_empty());
        assert!(input.candidates.is_empty());
    }
}
