//! The ValueNet neural model and end-to-end NL-to-SQL pipeline.
//!
//! This crate assembles the paper's architecture (Sections III and IV):
//!
//! 1. **Input building** ([`input`]): the question tokens with their hint
//!    classes, every schema column/table with its schema-hint class, and the
//!    value candidates *encoded together with their locations* (Fig. 8).
//! 2. **Encoder** ([`encoder`]): word + hint-type embeddings; each
//!    multi-token column/table/value summarised by a Bi-LSTM; the joint
//!    sequence contextualised by multi-head self-attention blocks — the
//!    from-scratch substitute for the paper's pretrained BERT (`DESIGN.md`).
//! 3. **Decoder** ([`decoder`]): an LSTM over SemQL actions with attention
//!    over the question and three pointer networks selecting columns,
//!    tables and value candidates; the output distribution is masked to the
//!    grammar-valid actions of the
//!    [`TransitionSystem`](valuenet_semql::TransitionSystem).
//! 4. **Training** ([`trainer`]): teacher-forced cross-entropy with Adam and
//!    the paper's three learning-rate groups (encoder / decoder /
//!    connection parameters).
//! 5. **Pipeline** ([`pipeline`]): pre-processing → encoding/decoding →
//!    SemQL-to-SQL post-processing → execution, instrumented per stage for
//!    the paper's Table II. Two operating modes: **ValueNet light** (gold
//!    value options provided) and **ValueNet** (candidates extracted,
//!    generated and validated from the database), plus the `NoValue`
//!    placeholder baseline the paper attributes to Exact-Match-era systems.

mod decoder;
mod encoder;
mod evaluate;
mod heuristic;
mod input;
mod model;
mod pipeline;
mod trainer;
mod vocab;

pub use decoder::Decoder;
pub use encoder::{Encoder, Encodings};
pub use evaluate::{evaluate, evaluate_with_threads, EvalStats, SampleEval};
pub use heuristic::HeuristicBaseline;
pub use input::{build_input, build_input_opts, candidate_texts, InputOptions, ItemTokens, ModelInput};
pub use model::{ModelConfig, ValueNetModel};
pub use pipeline::{
    assemble_candidates, Pipeline, PipelineError, PreparedRequest, Prediction, Stage,
    StageTimings, ValueMode,
};
pub use trainer::{train, TrainConfig, TrainReport};
pub use vocab::Vocab;
