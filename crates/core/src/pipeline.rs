//! The end-to-end NL-to-SQL pipeline (paper Fig. 5) with per-stage timing
//! (paper Table II).

use crate::heuristic::HeuristicBaseline;
use crate::input::build_input_opts;
use crate::model::ValueNetModel;
use std::time::{Duration, Instant};
use valuenet_exec::{execute, ResultSet};
use valuenet_preprocess::{
    generate_candidates, question_hints, schema_hints, tokenize_question, CandidateConfig,
    Ner, Preprocessed, StatisticalNer,
};
use valuenet_schema::{ColumnId, SchemaGraph};
use valuenet_semql::{actions_to_ast, to_sql, Action, ResolvedValue, SemQl};
use valuenet_sql::SelectStmt;
use valuenet_storage::Database;

/// A pipeline stage boundary, in execution order. Stage guards (serving
/// deadlines, fault injection) are consulted with the stage about to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Tokenisation + hint classification.
    Preprocess,
    /// NER + candidate generation + database validation.
    ValueLookup,
    /// Neural encoding and grammar-constrained decoding.
    EncodeDecode,
    /// SemQL → SQL lowering and execution-guided selection.
    PostProcess,
    /// Executing the synthesized query.
    Execute,
}

impl Stage {
    /// All stages in execution order.
    pub const ALL: [Stage; 5] =
        [Stage::Preprocess, Stage::ValueLookup, Stage::EncodeDecode, Stage::PostProcess, Stage::Execute];

    /// Parses a [`Stage::label`] back to the stage.
    pub fn from_label(s: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|st| st.label() == s)
    }

    /// Stable lowercase label (protocol / metrics key).
    pub fn label(self) -> &'static str {
        match self {
            Stage::Preprocess => "preprocess",
            Stage::ValueLookup => "value_lookup",
            Stage::EncodeDecode => "encode_decode",
            Stage::PostProcess => "post_process",
            Stage::Execute => "execute",
        }
    }
}

/// A typed translation failure. A serving front-end must be able to turn
/// every malformed or aborted request into a protocol error instead of a
/// panic, so the request path reports these instead of unwinding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// [`ValueMode::Light`] requires the oracle's gold value options.
    MissingGoldValues,
    /// A decoded `V` pointer indexes past the candidate list — the model
    /// emitted a value reference with no backing candidate text.
    DanglingValuePointer {
        /// The offending pointer.
        index: usize,
        /// Number of candidates that were available.
        candidates: usize,
    },
    /// A stage guard aborted the translation (e.g. a serving deadline
    /// expired at a stage boundary).
    Aborted {
        /// The stage that was about to run.
        stage: Stage,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::MissingGoldValues => {
                write!(f, "ValueNet light requires the gold value options")
            }
            PipelineError::DanglingValuePointer { index, candidates } => write!(
                f,
                "value pointer {index} has no backing candidate ({candidates} available)"
            ),
            PipelineError::Aborted { stage } => {
                write!(f, "translation aborted before stage `{}`", stage.label())
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// How value options are supplied to the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueMode {
    /// *ValueNet light*: the gold value options are provided by an oracle
    /// (paper Section IV-A).
    Light,
    /// *ValueNet*: value candidates are extracted from the question and the
    /// database content (paper Section IV-B).
    Full,
    /// The pre-ValueNet baseline: a constant placeholder `1` is the only
    /// available value (what Exact-Match-era systems effectively do,
    /// paper Section III).
    NoValue,
}

impl ValueMode {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            ValueMode::Light => "ValueNet light",
            ValueMode::Full => "ValueNet",
            ValueMode::NoValue => "NoValue baseline",
        }
    }
}

/// Wall-clock duration of each pipeline stage (paper Table II rows).
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Tokenisation + question/schema hints.
    pub pre_processing: Duration,
    /// NER + candidate generation + database validation.
    pub value_lookup: Duration,
    /// Neural encoding and grammar-constrained decoding.
    pub encoder_decoder: Duration,
    /// SemQL → SQL lowering.
    pub post_processing: Duration,
    /// Executing the synthesized query.
    pub query_execution: Duration,
}

impl StageTimings {
    /// Total translation time.
    pub fn total(&self) -> Duration {
        self.pre_processing
            + self.value_lookup
            + self.encoder_decoder
            + self.post_processing
            + self.query_execution
    }
}

/// A completed hypothesis chosen by execution-guided selection.
type ChosenHypothesis = (Vec<Action>, SemQl, Option<SelectStmt>, Option<ResultSet>);

/// A request that has run every pipeline stage up to (and including) input
/// assembly, and is ready for the neural decode. This is the unit a serving
/// engine batches: several prepared requests from different clients can ride
/// one fused decode pass ([`Pipeline::decode_batch`]) before each finishes
/// independently ([`Pipeline::finish_guarded`]).
pub struct PreparedRequest<'a> {
    db: &'a Database,
    input: crate::input::ModelInput,
    hypotheses: Vec<Vec<Action>>,
    /// Per-stage timings accumulated so far (preprocess, value lookup, input
    /// assembly; [`Pipeline::decode_batch`] adds the decode wall time).
    pub timings: StageTimings,
}

/// The outcome of translating one question.
pub struct Prediction {
    /// Decoded action sequence (empty on decoding failure).
    pub actions: Vec<Action>,
    /// The predicted SemQL tree, when decoding succeeded.
    pub semql: Option<SemQl>,
    /// The synthesized SQL, when lowering succeeded.
    pub sql: Option<SelectStmt>,
    /// The candidate list the `V` pointers index into.
    pub candidates: Vec<String>,
    /// The execution result, when the query ran.
    pub result: Option<ResultSet>,
    /// Per-stage timings.
    pub timings: StageTimings,
}

/// Counts decoded `V` pointers with no backing candidate. The decoder masks
/// `V` to the candidate range, so a non-zero count means a grammar/masking
/// regression — a server must reject such a prediction rather than emit SQL
/// built from a fabricated placeholder value.
static DANGLING_VALUE_POINTERS: valuenet_obs::Counter =
    valuenet_obs::Counter::new("pipeline.dangling_value_pointer");

impl Prediction {
    /// The value texts actually selected by the decoder, in `V`-pointer
    /// order.
    ///
    /// # Errors
    /// [`PipelineError::DanglingValuePointer`] when a decoded pointer has no
    /// backing candidate (also recorded on the
    /// `pipeline.dangling_value_pointer` counter).
    pub fn selected_values(&self) -> Result<Vec<String>, PipelineError> {
        let mut out = Vec::new();
        for a in &self.actions {
            if let Action::V(i) = a {
                match self.candidates.get(*i) {
                    Some(text) => out.push(text.clone()),
                    None => {
                        DANGLING_VALUE_POINTERS.add(1);
                        return Err(PipelineError::DanglingValuePointer {
                            index: *i,
                            candidates: self.candidates.len(),
                        });
                    }
                }
            }
        }
        Ok(out)
    }
}

/// Assembles the candidate list for a mode. `gold` must be provided in
/// [`ValueMode::Light`]; `for_training` appends missing gold values in
/// [`ValueMode::Full`] so the value pointer always has a target.
pub fn assemble_candidates(
    db: &Database,
    pre: &Preprocessed,
    mode: ValueMode,
    gold: Option<&[String]>,
    for_training: bool,
) -> Vec<(String, Vec<ColumnId>)> {
    let locate = |text: &str| db.index().find_exact(text);
    let mut out: Vec<(String, Vec<ColumnId>)> = Vec::new();
    let push = |text: &str, locations: Vec<ColumnId>, out: &mut Vec<(String, Vec<ColumnId>)>| {
        if !out.iter().any(|(t, _)| t.eq_ignore_ascii_case(text)) {
            out.push((text.to_string(), locations));
        }
    };
    match mode {
        ValueMode::Light => {
            let gold = gold.expect("ValueNet light requires the gold value options");
            for v in gold {
                push(v, locate(v), &mut out);
            }
        }
        ValueMode::Full => {
            for cand in &pre.candidates {
                push(&cand.text, cand.locations.clone(), &mut out);
            }
            // The implicit LIMIT 1 of superlatives never appears in the
            // question; a constant candidate keeps it selectable.
            push("1", Vec::new(), &mut out);
            if for_training {
                if let Some(gold) = gold {
                    for v in gold {
                        push(v, locate(v), &mut out);
                    }
                }
            }
        }
        ValueMode::NoValue => {
            push("1", Vec::new(), &mut out);
        }
    }
    out
}

/// The end-to-end system: pre-processing, the neural model, SemQL lowering,
/// and execution.
pub struct Pipeline {
    /// The trained model.
    pub model: ValueNetModel,
    /// Operating mode.
    pub mode: ValueMode,
    /// The trained statistical NER (combined with the heuristics).
    pub ner: StatisticalNer,
    /// Candidate-pipeline configuration.
    pub cand_cfg: CandidateConfig,
}

impl Pipeline {
    /// Wraps a trained model.
    pub fn new(model: ValueNetModel, mode: ValueMode, ner: StatisticalNer) -> Self {
        Pipeline { model, mode, ner, cand_cfg: CandidateConfig::default() }
    }

    /// Translates a question end to end. `gold_values` is consumed only in
    /// [`ValueMode::Light`] (the oracle's value options).
    ///
    /// # Panics
    /// In [`ValueMode::Light`] when `gold_values` is `None` — the historical
    /// contract of the offline trainer/eval path. Serving front-ends use
    /// [`Pipeline::try_translate`], which reports the same condition as a
    /// typed error instead.
    pub fn translate(
        &self,
        db: &Database,
        question: &str,
        gold_values: Option<&[String]>,
    ) -> Prediction {
        self.try_translate(db, question, gold_values)
            .unwrap_or_else(|e| panic!("pipeline::translate: {e}"))
    }

    /// [`Pipeline::translate`] with malformed-request conditions surfaced as
    /// typed [`PipelineError`]s instead of panics.
    ///
    /// # Errors
    /// [`PipelineError::MissingGoldValues`] in [`ValueMode::Light`] without
    /// gold value options.
    pub fn try_translate(
        &self,
        db: &Database,
        question: &str,
        gold_values: Option<&[String]>,
    ) -> Result<Prediction, PipelineError> {
        self.try_translate_guarded(db, question, gold_values, &mut |_| true)
    }

    /// [`Pipeline::try_translate`] with a *stage guard*: `guard` is called
    /// with each [`Stage`] immediately before that stage runs (and before
    /// each hypothesis execution in the execution-guided selection loop).
    /// Returning `false` aborts the translation with
    /// [`PipelineError::Aborted`] — this is how a serving engine enforces
    /// per-request deadlines at stage boundaries instead of cancelling
    /// mid-kernel.
    ///
    /// # Errors
    /// [`PipelineError::Aborted`] when the guard declines a stage;
    /// [`PipelineError::MissingGoldValues`] as in
    /// [`Pipeline::try_translate`].
    pub fn try_translate_guarded(
        &self,
        db: &Database,
        question: &str,
        gold_values: Option<&[String]>,
        guard: &mut dyn FnMut(Stage) -> bool,
    ) -> Result<Prediction, PipelineError> {
        let _span = valuenet_obs::span("pipeline.translate");
        let mut prepared = self.prepare_guarded(db, question, gold_values, guard)?;
        self.decode_batch(&mut [&mut prepared]);
        self.finish_guarded(prepared, guard)
    }

    /// Consults the stage guard with `stage`, stamping the ambient request
    /// trace (if one is installed — serving path only) *before* the guard
    /// runs, so injected faults and deadline aborts attribute to the stage
    /// being entered.
    fn gate(
        guard: &mut dyn FnMut(Stage) -> bool,
        stage: Stage,
    ) -> Result<(), PipelineError> {
        valuenet_obs::trace::enter_stage(stage.label());
        if guard(stage) {
            Ok(())
        } else {
            Err(PipelineError::Aborted { stage })
        }
    }

    /// The per-request front half of [`Pipeline::try_translate_guarded`]:
    /// pre-processing, value lookup and model-input assembly, through the
    /// [`Stage::EncodeDecode`] gate but *not* the decode itself. The
    /// returned [`PreparedRequest`] is ready for [`Pipeline::decode_batch`].
    ///
    /// # Errors
    /// As [`Pipeline::try_translate_guarded`], for the stages covered here.
    pub fn prepare_guarded<'a>(
        &self,
        db: &'a Database,
        question: &str,
        gold_values: Option<&[String]>,
        guard: &mut dyn FnMut(Stage) -> bool,
    ) -> Result<PreparedRequest<'a>, PipelineError> {
        if self.mode == ValueMode::Light && gold_values.is_none() {
            return Err(PipelineError::MissingGoldValues);
        }
        let mut timings = StageTimings::default();

        // Stage 1a: tokenisation (pre-processing).
        Self::gate(guard, Stage::Preprocess)?;
        let t0 = Instant::now();
        let tokens = {
            let _s = valuenet_obs::span("pipeline.pre_processing");
            tokenize_question(question)
        };
        timings.pre_processing += t0.elapsed();

        // Stage 2: value extraction + candidate generation + validation
        // ("Value lookup" in Table II — dominated by database lookups).
        Self::gate(guard, Stage::ValueLookup)?;
        let t0 = Instant::now();
        let candidates = {
            let _s = valuenet_obs::span("pipeline.value_lookup");
            let extracted = self.ner.extract(question, &tokens);
            generate_candidates(&extracted, &tokens, db, &self.cand_cfg)
        };
        timings.value_lookup += t0.elapsed();

        // Stage 1b: hint classification (needs the candidates for the
        // value-candidate-match class).
        let t0 = Instant::now();
        let pre = {
            let _s = valuenet_obs::span("pipeline.pre_processing");
            let qh = question_hints(&tokens, db);
            let sh = schema_hints(&tokens, db, &candidates);
            Preprocessed { tokens, question_hints: qh, schema_hints: sh, candidates }
        };
        timings.pre_processing += t0.elapsed();

        // Stage 3 (input half): the encode/decode gate fires here — serving
        // faults and deadline aborts happen per request, before the request
        // can join a shared decode batch — followed by candidate assembly
        // and input construction. The decode itself is batch-wide.
        Self::gate(guard, Stage::EncodeDecode)?;
        let t0 = Instant::now();
        let input = {
            let _s = valuenet_obs::span("pipeline.encode_decode");
            let cands = assemble_candidates(db, &pre, self.mode, gold_values, false);
            build_input_opts(db, &pre, &cands, &self.model.vocab, self.model.input_options())
        };
        timings.encoder_decoder += t0.elapsed();
        Ok(PreparedRequest { db, input, hypotheses: Vec::new(), timings })
    }

    /// Decodes a batch of prepared requests — possibly from different
    /// serving clients — in one fused pass, stamping each request's
    /// hypotheses and adding the decode wall time to each request's
    /// `encoder_decoder` timing (every co-batched request experiences the
    /// full batch decode as latency).
    ///
    /// A batch of one takes the exact single-request code path
    /// ([`ValueNetModel::predict_beam`] / [`ValueNetModel::predict`]), so a
    /// lone in-flight request is bit-identical to the unbatched engine.
    pub fn decode_batch(&self, batch: &mut [&mut PreparedRequest<'_>]) {
        if batch.is_empty() {
            return;
        }
        let t0 = Instant::now();
        {
            let _s = valuenet_obs::span("pipeline.encode_decode");
            let beam = self.model.config.beam_width > 1;
            if batch.len() == 1 {
                let m = &mut *batch[0];
                m.hypotheses = if beam {
                    self.model.predict_beam(&m.input).into_iter().map(|(a, _)| a).collect()
                } else {
                    self.model.predict(&m.input).into_iter().collect()
                };
            } else {
                let hyps: Vec<Vec<Vec<Action>>> = {
                    let inputs: Vec<&crate::input::ModelInput> =
                        batch.iter().map(|m| &m.input).collect();
                    if beam {
                        self.model
                            .predict_beam_multi(&inputs)
                            .into_iter()
                            .map(|hs| hs.into_iter().map(|(a, _)| a).collect())
                            .collect()
                    } else {
                        self.model
                            .predict_greedy_multi(&inputs)
                            .into_iter()
                            .map(|r| r.into_iter().collect())
                            .collect()
                    }
                };
                for (m, h) in batch.iter_mut().zip(hyps) {
                    m.hypotheses = h;
                }
            }
        }
        let dt = t0.elapsed();
        for m in batch.iter_mut() {
            m.timings.encoder_decoder += dt;
        }
    }

    /// The per-request back half of [`Pipeline::try_translate_guarded`]:
    /// SemQL lowering and execution-guided selection over the hypotheses
    /// stamped by [`Pipeline::decode_batch`].
    ///
    /// # Errors
    /// As [`Pipeline::try_translate_guarded`], for the stages covered here.
    pub fn finish_guarded(
        &self,
        prepared: PreparedRequest<'_>,
        guard: &mut dyn FnMut(Stage) -> bool,
    ) -> Result<Prediction, PipelineError> {
        let PreparedRequest { db, input, hypotheses, mut timings } = prepared;
        // Stages 4 + 5: lower each hypothesis (best first) and keep the
        // first whose SQL executes — execution-guided selection. With a
        // greedy decode there is exactly one hypothesis, so this reduces to
        // the paper's deterministic post-processing.
        let graph = SchemaGraph::new(db.schema());
        let resolved: Vec<ResolvedValue> =
            input.candidates.iter().map(ResolvedValue::new).collect();
        let mut chosen: Option<ChosenHypothesis> = None;
        Self::gate(guard, Stage::PostProcess)?;
        for actions in &hypotheses {
            let t0 = Instant::now();
            let (semql, sql) = {
                let _s = valuenet_obs::span("pipeline.post_processing");
                let semql = actions_to_ast(actions).ok();
                let sql = semql
                    .as_ref()
                    .and_then(|tree| to_sql(tree, db.schema(), &graph, &resolved).ok());
                (semql, sql)
            };
            timings.post_processing += t0.elapsed();
            Self::gate(guard, Stage::Execute)?;
            let t0 = Instant::now();
            let result = {
                let _s = valuenet_obs::span("pipeline.execution");
                sql.as_ref().and_then(|stmt| execute(db, stmt).ok())
            };
            timings.query_execution += t0.elapsed();
            let executed = result.is_some();
            if let Some(tree) = semql {
                if chosen.is_none() || executed {
                    chosen = Some((actions.clone(), tree, sql, result));
                }
            }
            if executed {
                break;
            }
        }

        Ok(match chosen {
            Some((actions, semql, sql, result)) => Prediction {
                actions,
                semql: Some(semql),
                sql,
                candidates: input.candidates,
                result,
                timings,
            },
            None => Prediction {
                actions: hypotheses.into_iter().next().unwrap_or_default(),
                semql: None,
                sql: None,
                candidates: input.candidates,
                result: None,
                timings,
            },
        })
    }

    /// The rule-based baseline sharing this pipeline's pre-processing.
    pub fn heuristic_baseline(&self) -> HeuristicBaseline {
        HeuristicBaseline::new()
    }
}
