//! A rule-based NL-to-SQL baseline (no neural network).
//!
//! Serves as a floor in the Fig. 10 comparison: table/column selection by
//! hint matching, a single equality filter from the first located value
//! candidate, `count(*)` for "how many" questions. Roughly what pre-neural
//! keyword systems achieve on cross-domain data.

use valuenet_preprocess::{preprocess, CandidateConfig, HeuristicNer, SchemaHint};
use valuenet_schema::{ColumnType, SchemaGraph, TableId};
use valuenet_semql::{
    to_sql, Agg, CmpOp, Filter, QueryR, ResolvedValue, Select, SemQl, ValueRef,
};
use valuenet_sql::SelectStmt;
use valuenet_storage::Database;

/// The rule-based baseline translator.
#[derive(Debug, Default, Clone)]
pub struct HeuristicBaseline {
    cand_cfg: CandidateConfig,
}

impl HeuristicBaseline {
    /// A baseline with default candidate configuration.
    pub fn new() -> Self {
        HeuristicBaseline { cand_cfg: CandidateConfig::default() }
    }

    /// Translates a question with rules only.
    pub fn translate(&self, db: &Database, question: &str) -> Option<SelectStmt> {
        let pre = preprocess(question, db, &HeuristicNer::new(), &self.cand_cfg);
        let schema = db.schema();

        // Table: best schema hint, falling back to the first candidate's
        // location, then table 0.
        let rank = |h: SchemaHint| match h {
            SchemaHint::Exact => 3,
            SchemaHint::Partial => 2,
            SchemaHint::ValueCandidate => 1,
            SchemaHint::None => 0,
        };
        let mut table = TableId(0);
        let mut best = 0;
        for (i, &h) in pre.schema_hints.tables.iter().enumerate() {
            if rank(h) > best {
                best = rank(h);
                table = TableId(i);
            }
        }
        if best == 0 {
            if let Some(col) = pre.candidates.iter().flat_map(|c| &c.locations).next() {
                if let Some(t) = schema.column(*col).table {
                    table = t;
                }
            }
        }

        // Projection: count(*) for counting questions, otherwise the first
        // mentioned (or first textual) column of the table.
        let ql = question.to_lowercase();
        let counting = ql.contains("how many") || ql.contains("number of") || ql.starts_with("count");
        let select = if counting {
            Select::new(vec![Agg::count_star(table)])
        } else {
            let col = schema
                .table(table)
                .columns
                .iter()
                .copied()
                .find(|&c| {
                    pre.schema_hints.columns[c.0] != SchemaHint::None
                        && schema.column(c).ty == ColumnType::Text
                })
                .or_else(|| {
                    schema
                        .table(table)
                        .columns
                        .iter()
                        .copied()
                        .find(|&c| schema.column(c).ty == ColumnType::Text)
                })
                .or_else(|| schema.table(table).columns.first().copied())?;
            Select::new(vec![Agg::plain(col, table)])
        };

        // Filter: equality with the first validated candidate.
        let mut values = Vec::new();
        let filter = pre
            .candidates
            .iter()
            .find_map(|c| {
                let col = *c.locations.first()?;
                let t = schema.column(col).table?;
                values.push(ResolvedValue::new(c.text.clone()));
                Some(Filter::Cmp {
                    op: CmpOp::Eq,
                    agg: Agg::plain(col, t),
                    value: ValueRef(0),
                })
            });

        let tree = SemQl::Single(Box::new(QueryR {
            select,
            order: None,
            superlative: None,
            filter,
        }));
        let graph = SchemaGraph::new(schema);
        to_sql(&tree, schema, &graph, &values).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use valuenet_exec::execute;
    use valuenet_schema::SchemaBuilder;

    fn db() -> Database {
        let schema = SchemaBuilder::new("d")
            .table(
                "student",
                &[
                    ("stu_id", ColumnType::Number),
                    ("name", ColumnType::Text),
                    ("home_country", ColumnType::Text),
                ],
            )
            .build();
        let mut db = Database::new(schema);
        let s = db.schema().table_by_name("student").unwrap();
        db.insert(s, vec![1.into(), "Alice".into(), "France".into()]);
        db.insert(s, vec![2.into(), "Bob".into(), "Germany".into()]);
        db.rebuild_index();
        db
    }

    #[test]
    fn counts_filtered_students() {
        let db = db();
        let sql = HeuristicBaseline::new()
            .translate(&db, "How many students are from France?")
            .expect("baseline produced SQL");
        let rs = execute(&db, &sql).unwrap();
        assert_eq!(rs.rows[0][0].as_number(), Some(1.0));
    }

    #[test]
    fn lists_names_without_filter() {
        let db = db();
        let sql = HeuristicBaseline::new()
            .translate(&db, "List the names of all students.")
            .expect("baseline produced SQL");
        let rs = execute(&db, &sql).unwrap();
        assert_eq!(rs.rows.len(), 2);
    }
}
