//! Training: teacher forcing with Adam and the paper's three learning-rate
//! groups (encoder / decoder / connection parameters, Section V-C).
//!
//! The forward/backward pass of every sample in a gradient-accumulation
//! batch is independent (each builds its own [`Graph`] against the shared,
//! read-only parameter store), so batches fan out over
//! [`valuenet_par::par_map`]. Determinism is preserved by construction:
//!
//! * shuffling uses a dedicated RNG (`seed + 1`) touched only between
//!   epochs;
//! * dropout uses a *per-sample* RNG derived from `(seed, epoch, sample
//!   index)`, so the noise a sample sees is a pure function of the
//!   configuration — not of which worker ran it first;
//! * per-sample gradients are summed **in sample order** before the Adam
//!   step, so f32 accumulation order is canonical.
//!
//! As a result `epoch_losses` and the final weights are bit-identical for
//! any `threads` setting, including the inline `threads = 1` path.

use crate::input::{build_input_opts, ModelInput};
use crate::model::{ModelConfig, ValueNetModel};
use crate::pipeline::{assemble_candidates, Pipeline, ValueMode};
use crate::vocab::Vocab;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use valuenet_dataset::{Corpus, Sample};
use valuenet_nn::{Adam, AdamConfig, ParamId};
use valuenet_preprocess::{preprocess, CandidateConfig, StatisticalNer, tokenize_question};
use valuenet_semql::{ast_to_actions, Action};
use valuenet_tensor::{Graph, Tensor};

/// Training hyper-parameters. The three learning rates mirror the paper's
/// grouping; since our encoder trains from scratch (no pretrained BERT), all
/// three default to the same magnitude.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training split.
    pub epochs: usize,
    /// Encoder learning rate (paper: 2e-5 for BERT fine-tuning).
    pub lr_encoder: f32,
    /// Decoder learning rate (paper: 1e-3).
    pub lr_decoder: f32,
    /// Connection-parameter learning rate (paper: 1e-4).
    pub lr_connection: f32,
    /// Gradient-accumulation batch size (paper: 20).
    pub batch_size: usize,
    /// Worker threads for the in-batch fan-out (`0` = the process-wide
    /// default, see [`valuenet_par::resolve_threads`]). Any value produces
    /// bit-identical results; it only changes wall-clock time.
    pub threads: usize,
    /// RNG seed (shuffling, dropout).
    pub seed: u64,
    /// Print progress to stderr.
    pub verbose: bool,
    /// Candidate-pipeline configuration (ablation knob; see
    /// `CandidateConfig`'s `enable_*` flags).
    pub cand_cfg: CandidateConfig,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 12,
            lr_encoder: 2e-3,
            lr_decoder: 2e-3,
            lr_connection: 2e-3,
            batch_size: 16,
            threads: 0,
            seed: 1,
            verbose: false,
            cand_cfg: CandidateConfig::default(),
        }
    }
}

/// Summary of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Number of usable training samples.
    pub trained_samples: usize,
    /// Samples skipped (gold value unmappable to a candidate).
    pub skipped_samples: usize,
}

struct PreparedSample {
    input: ModelInput,
    actions: Vec<Action>,
}

/// Derives the dropout-RNG seed of one `(epoch, sample)` pass from the
/// configured seed: a SplitMix64-style finaliser over the three inputs, so
/// every pass gets an independent stream that does not depend on execution
/// order or thread count.
fn sample_seed(seed: u64, epoch: usize, index: usize) -> u64 {
    let mut z = seed
        ^ (epoch as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (index as u64).wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds the vocabulary: training questions, every schema's names, and the
/// distinct database values (standing in for the pretrained word-piece
/// coverage of the original system; see `DESIGN.md`).
fn build_vocab(corpus: &Corpus) -> Vocab {
    let mut texts: Vec<String> = Vec::new();
    for s in &corpus.train {
        texts.push(s.question.to_lowercase());
    }
    for db in &corpus.databases {
        for t in &db.schema().tables {
            texts.push(t.display.clone());
        }
        for c in &db.schema().columns {
            texts.push(c.display.clone());
        }
        // Database content words give the encoder word-piece-like coverage
        // of value candidates. Purely numeric values are skipped (each is a
        // unique, meaningless token) and each column is capped so the
        // vocabulary — and with it the embedding table the optimiser walks —
        // stays bounded on large databases.
        for (i, _) in db.schema().columns.iter().enumerate() {
            for v in db
                .index()
                .distinct_values(valuenet_schema::ColumnId(i))
                .iter()
                .filter(|v| v.parse::<f64>().is_err())
                .take(300)
            {
                texts.push(v.to_lowercase());
            }
        }
    }
    Vocab::build(texts.iter().map(String::as_str))
}

/// Trains the statistical NER on the train split (question tokens labelled
/// by whether they belong to a gold value surface).
fn train_ner(corpus: &Corpus) -> StatisticalNer {
    let mut ner = StatisticalNer::new();
    let examples: Vec<(Vec<valuenet_preprocess::Token>, Vec<String>)> = corpus
        .train
        .iter()
        .map(|s| {
            let tokens = tokenize_question(&s.question);
            let surfaces: Vec<String> = s
                .value_infos
                .iter()
                .filter(|v| !v.implicit)
                .map(|v| v.question_text.clone())
                .collect();
            (tokens, surfaces)
        })
        .collect();
    ner.fit(&examples);
    ner
}

/// Remaps the gold tree's `ValueRef`s (indices into `sample.values`) to
/// indices into the candidate list. Returns `None` when a gold value is not
/// among the candidates.
fn remap_actions(sample: &Sample, candidates: &[String]) -> Option<Vec<Action>> {
    let actions = ast_to_actions(&sample.semql);
    actions
        .into_iter()
        .map(|a| match a {
            Action::V(i) => {
                let gold = sample.values.get(i)?;
                let idx =
                    candidates.iter().position(|c| c.eq_ignore_ascii_case(gold))?;
                Some(Action::V(idx))
            }
            other => Some(other),
        })
        .collect()
}

/// Trains a ValueNet model on the corpus's training split and returns the
/// ready-to-use [`Pipeline`] together with a [`TrainReport`].
pub fn train(
    corpus: &Corpus,
    mode: ValueMode,
    model_cfg: ModelConfig,
    cfg: &TrainConfig,
) -> (Pipeline, TrainReport) {
    let _span = valuenet_obs::span("train");
    let prep_span = valuenet_obs::span("train.prepare");
    let vocab = build_vocab(corpus);
    let ner = train_ner(corpus);
    let cand_cfg = cfg.cand_cfg.clone();

    // Precompute inputs and remapped gold actions once.
    let mut prepared = Vec::with_capacity(corpus.train.len());
    let mut skipped = 0;
    for sample in &corpus.train {
        let db = corpus.db(sample);
        let pre = preprocess(&sample.question, db, &ner, &cand_cfg);
        let cands = assemble_candidates(db, &pre, mode, Some(&sample.values), true);
        let cand_texts: Vec<String> = cands.iter().map(|(t, _)| t.clone()).collect();
        let Some(actions) = remap_actions(sample, &cand_texts) else {
            skipped += 1;
            continue;
        };
        let input = build_input_opts(
            db,
            &pre,
            &cands,
            &vocab,
            crate::input::InputOptions {
                use_hints: model_cfg.use_hints,
                encode_value_location: model_cfg.encode_value_location,
            },
        );
        prepared.push(PreparedSample { input, actions });
    }
    drop(prep_span);

    let model = ValueNetModel::new(model_cfg, vocab, cfg.seed);
    let mut opt = Adam::new(
        &model.params,
        AdamConfig {
            group_lrs: vec![cfg.lr_encoder, cfg.lr_decoder, cfg.lr_connection],
            ..Default::default()
        },
    );

    let mut model = model;
    // Shuffle-only RNG: dropout draws from per-sample streams (below), so
    // the epoch ordering is the sole consumer of this generator.
    let mut shuffle_rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(1));
    let mut order: Vec<usize> = (0..prepared.len()).collect();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    // Per-LR-group learning rates are constant across the run; record them
    // once so the run report can join them with the per-group grad norms.
    valuenet_obs::metric("train.lr.encoder", 0, cfg.lr_encoder as f64);
    valuenet_obs::metric("train.lr.decoder", 0, cfg.lr_decoder as f64);
    valuenet_obs::metric("train.lr.connection", 0, cfg.lr_connection as f64);
    for epoch in 0..cfg.epochs {
        let epoch_span = valuenet_obs::span("train.epoch");
        let epoch_start = std::time::Instant::now();
        order.shuffle(&mut shuffle_rng);
        let mut epoch_loss = 0.0;
        // Squared L2 grad norm per learning-rate group, summed over batches.
        let mut group_sq = [0.0f64; 3];
        for batch in order.chunks(cfg.batch_size.max(1)) {
            let _batch_span = valuenet_obs::span("train.batch");
            // Fan the independent per-sample passes out over the workers;
            // par_map returns results in batch order regardless of timing.
            let passes = valuenet_par::par_map(batch, cfg.threads, |_, &i| {
                let _sample_span = valuenet_obs::span("train.sample");
                let sample = &prepared[i];
                // One tape per worker thread, recycled across samples: the
                // node vector's capacity (and, via the buffer pool, every
                // tensor it held) survives from one pass to the next.
                thread_local! {
                    static TAPE: std::cell::RefCell<Graph> = std::cell::RefCell::new(Graph::new());
                }
                TAPE.with(|tape| {
                    let mut g = tape.borrow_mut();
                    g.reset();
                    let mut rng = SmallRng::seed_from_u64(sample_seed(cfg.seed, epoch, i));
                    let (loss, loss_value) = {
                        let _s = valuenet_obs::span("train.forward");
                        let loss =
                            model.loss(&mut g, &sample.input, &sample.actions, Some(&mut rng));
                        let v = g.value(loss).scalar_value();
                        (loss, v)
                    };
                    let _s = valuenet_obs::span("train.backward");
                    let grads = g.backward(loss);
                    (loss_value, model.params.collect_grads(&grads))
                })
            });
            // Reduce in sample order so f32 sums are canonical. The slot map
            // is indexed by `ParamId::index()`, making each accumulation an
            // O(1) lookup instead of a linear scan over the parameters seen
            // so far (which made batch reduction quadratic in model size).
            let mut slots: Vec<Option<(ParamId, Tensor)>> = Vec::new();
            slots.resize_with(model.params.len(), || None);
            let mut touched: Vec<usize> = Vec::new();
            for (loss_value, grads) in passes {
                epoch_loss += loss_value;
                for (id, grad) in grads {
                    match &mut slots[id.index()] {
                        Some((_, acc)) => acc.add_assign(&grad),
                        slot @ None => {
                            touched.push(id.index());
                            *slot = Some((id, grad));
                        }
                    }
                }
            }
            // First-seen order equals the old push order, so the f32 sums —
            // and therefore training — are unchanged.
            let mut batch_grads: Vec<(ParamId, Tensor)> = Vec::with_capacity(touched.len());
            for idx in touched {
                batch_grads.push(slots[idx].take().expect("touched slot is filled"));
            }
            // Average over the batch before the Adam step.
            let scale = 1.0 / batch.len() as f32;
            for (_, grad) in &mut batch_grads {
                for x in grad.as_mut_slice() {
                    *x *= scale;
                }
            }
            if valuenet_obs::enabled() {
                for (id, grad) in &batch_grads {
                    let group = model.params.group(*id).min(2);
                    group_sq[group] += grad.as_slice().iter().map(|&x| (x as f64) * x as f64).sum::<f64>();
                }
            }
            opt.step_collected(&mut model.params, batch_grads);
        }
        let mean = epoch_loss / prepared.len().max(1) as f32;
        epoch_losses.push(mean);
        drop(epoch_span);
        let e = epoch as u64;
        valuenet_obs::metric("train.epoch_loss", e, mean as f64);
        let secs = epoch_start.elapsed().as_secs_f64();
        if secs > 0.0 {
            valuenet_obs::metric("train.examples_per_sec", e, prepared.len() as f64 / secs);
        }
        valuenet_obs::metric("train.grad_norm", e, group_sq.iter().sum::<f64>().sqrt());
        valuenet_obs::metric("train.grad_norm.encoder", e, group_sq[0].sqrt());
        valuenet_obs::metric("train.grad_norm.decoder", e, group_sq[1].sqrt());
        valuenet_obs::metric("train.grad_norm.connection", e, group_sq[2].sqrt());
        if cfg.verbose {
            eprintln!("epoch {:>2}/{}: mean loss {mean:.4}", epoch + 1, cfg.epochs);
        }
    }

    let report = TrainReport {
        epoch_losses,
        trained_samples: prepared.len(),
        skipped_samples: skipped,
    };
    let mut pipeline = Pipeline::new(model, mode, ner);
    pipeline.cand_cfg = cand_cfg;
    (pipeline, report)
}
