//! Generic question templates.
//!
//! Each template builds a question, the gold SemQL tree, and the gold value
//! list (in canonical `ValueRef` order — superlative limits before filter
//! values, left to right), from the metadata in a [`DomainSpec`]. The
//! templates cover Spider's query distribution: counting, filtered
//! selection, multi-condition AND/OR, BETWEEN, LIKE, grouping + HAVING,
//! ORDER BY, superlatives with LIMIT, nested subqueries and set operations.

use crate::spec::*;
use rand::rngs::SmallRng;
use rand::Rng;
use valuenet_schema::TableId;
use valuenet_semql::{Agg, CmpOp, Filter, Order, QueryR, Select, SemQl, Superlative, ValueRef};
use valuenet_sql::AggFunc;
use valuenet_storage::{Database, Datum};

/// A generated sample before lowering/validation.
#[derive(Debug, Clone)]
pub struct Draft {
    /// The natural-language question.
    pub question: String,
    /// Gold SemQL tree.
    pub semql: SemQl,
    /// Gold resolved value texts, indexed by `ValueRef`.
    pub values: Vec<String>,
    /// Provenance per value (parallel to `values`).
    pub value_infos: Vec<ValueInfo>,
}

/// Allocates values in canonical order while a tree is being built.
#[derive(Default)]
struct Values {
    texts: Vec<String>,
    infos: Vec<ValueInfo>,
}

impl Values {
    fn push_surface(&mut self, s: &SurfaceForm) -> ValueRef {
        self.texts.push(s.db_value.clone());
        self.infos.push(ValueInfo {
            db_value: s.db_value.clone(),
            question_text: s.question_text.clone(),
            difficulty: s.difficulty,
            implicit: false,
        });
        ValueRef(self.texts.len() - 1)
    }

    fn push_literal(&mut self, text: &str) -> ValueRef {
        self.texts.push(text.to_string());
        self.infos.push(ValueInfo {
            db_value: text.to_string(),
            question_text: text.to_string(),
            difficulty: ValueDifficulty::Easy,
            implicit: false,
        });
        ValueRef(self.texts.len() - 1)
    }

    fn push_implicit(&mut self, text: &str) -> ValueRef {
        self.texts.push(text.to_string());
        self.infos.push(ValueInfo {
            db_value: text.to_string(),
            question_text: String::new(),
            difficulty: ValueDifficulty::Easy,
            implicit: true,
        });
        ValueRef(self.texts.len() - 1)
    }
}

/// A rendered filter phrase: adjectives go before the noun, suffixes after.
struct FilterPhrase {
    adjective: Option<String>,
    suffix: Option<String>,
}

fn render_phrase(f: &FilterCol, surface: &SurfaceForm) -> FilterPhrase {
    let q = &surface.question_text;
    match &f.phrase {
        Phrase::From => FilterPhrase { adjective: None, suffix: Some(format!("from {q}")) },
        Phrase::Adjective => FilterPhrase { adjective: Some(q.clone()), suffix: None },
        Phrase::Whose(l) => {
            FilterPhrase { adjective: None, suffix: Some(format!("whose {l} is {q}")) }
        }
        Phrase::WhoAre => FilterPhrase { adjective: None, suffix: Some(format!("who are {q}")) },
        Phrase::With(l) => {
            FilterPhrase { adjective: None, suffix: Some(format!("with {l} {q}")) }
        }
        Phrase::ThatAre => {
            FilterPhrase { adjective: None, suffix: Some(format!("that are {q}")) }
        }
    }
}

/// Builds a noun phrase from a plural noun plus filter phrases.
fn noun_phrase(plural: &str, phrases: &[FilterPhrase], connective: &str) -> String {
    let adjectives: Vec<&str> =
        phrases.iter().filter_map(|p| p.adjective.as_deref()).collect();
    let suffixes: Vec<&str> = phrases.iter().filter_map(|p| p.suffix.as_deref()).collect();
    let mut np = String::new();
    for a in &adjectives {
        np.push_str(a);
        np.push(' ');
    }
    np.push_str(plural);
    match suffixes.len() {
        0 => {}
        1 => {
            np.push(' ');
            np.push_str(suffixes[0]);
        }
        _ => {
            np.push(' ');
            np.push_str(&suffixes.join(&format!(" {connective} ")));
        }
    }
    np
}

/// Template execution context.
pub struct TemplateCtx<'a> {
    /// The domain metadata.
    pub spec: &'a DomainSpec,
    /// The populated database (numeric values are sampled from content).
    pub db: &'a Database,
    /// Sampling weights per surface-difficulty class (Easy/Medium/Hard/Extra).
    pub surface_weights: [u32; 4],
}

impl<'a> TemplateCtx<'a> {
    fn pick_entity(&self, rng: &mut SmallRng) -> &'a Entity {
        &self.spec.entities[rng.gen_range(0..self.spec.entities.len())]
    }

    fn pick_filter_on(&self, rng: &mut SmallRng, table: TableId) -> Option<&'a FilterCol> {
        let fs = self.spec.filters_for_table(table);
        if fs.is_empty() {
            None
        } else {
            Some(fs[rng.gen_range(0..fs.len())])
        }
    }

    fn pick_numeric_on(&self, rng: &mut SmallRng, table: TableId) -> Option<&'a NumericCol> {
        let ns = self.spec.numerics_for_table(table);
        if ns.is_empty() {
            None
        } else {
            Some(ns[rng.gen_range(0..ns.len())])
        }
    }

    /// Samples a surface form using the corpus's difficulty weights (the
    /// default is biased towards the easier classes, like Spider).
    fn pick_surface(&self, rng: &mut SmallRng, f: &'a FilterCol) -> &'a SurfaceForm {
        let weight = |d: ValueDifficulty| match d {
            ValueDifficulty::Easy => self.surface_weights[0],
            ValueDifficulty::Medium => self.surface_weights[1],
            ValueDifficulty::Hard => self.surface_weights[2],
            ValueDifficulty::ExtraHard => self.surface_weights[3],
        };
        let total: u32 = f.surfaces.iter().map(|s| weight(s.difficulty)).sum();
        let mut roll = rng.gen_range(0..total.max(1));
        for s in &f.surfaces {
            let w = weight(s.difficulty);
            if roll < w {
                return s;
            }
            roll -= w;
        }
        &f.surfaces[0]
    }

    /// Samples an actual value of a numeric column from the base data.
    fn sample_numeric(&self, rng: &mut SmallRng, n: &NumericCol) -> Option<String> {
        let vals: Vec<&Datum> = self.db.column_values(n.column).collect();
        if vals.is_empty() {
            return None;
        }
        let v = vals[rng.gen_range(0..vals.len())];
        Some(match v {
            Datum::Int(i) => i.to_string(),
            Datum::Float(f) if f.fract() == 0.0 => format!("{}", *f as i64),
            Datum::Float(f) => format!("{f}"),
            other => other.to_string(),
        })
    }

    fn cmp_phrase(&self, n: &NumericCol, more: bool, v: &str) -> String {
        match &n.cmp_phrases {
            Some((m, l)) => format!("{} {v}", if more { m } else { l }),
            None => format!(
                "with {} {} than {v}",
                n.label,
                if more { "greater" } else { "less" }
            ),
        }
    }
}

fn select_name(e: &Entity) -> Select {
    Select::new(vec![Agg::plain(e.name_col, e.table)])
}

fn filter_eq(f: &FilterCol, v: ValueRef) -> Filter {
    Filter::Cmp { op: CmpOp::Eq, agg: Agg::plain(f.column, f.table), value: v }
}

fn single(q: QueryR) -> SemQl {
    SemQl::Single(Box::new(q))
}

fn list_head(rng: &mut SmallRng, what: &str, np: &str) -> String {
    match rng.gen_range(0..5) {
        0 => format!("List the {what} of {np}."),
        1 => format!("Show the {what} of {np}."),
        2 => format!("What are the {what} of {np}?"),
        3 => format!("Give me the {what} of {np}."),
        _ => format!("Find the {what} of {np}."),
    }
}

fn count_head(rng: &mut SmallRng, np: &str) -> String {
    match rng.gen_range(0..3) {
        0 => format!("How many {np} are there?"),
        1 => format!("Count the number of {np}."),
        _ => format!("What is the total number of {np}?"),
    }
}

/// The draft produced by a template, or `None` when the domain lacks the
/// needed metadata (the caller retries with another template).
pub type TemplateFn = fn(&TemplateCtx<'_>, &mut SmallRng) -> Option<Draft>;

// -------------------------- 0-value templates --------------------------

fn t_count_all(ctx: &TemplateCtx<'_>, rng: &mut SmallRng) -> Option<Draft> {
    let e = ctx.pick_entity(rng);
    let q = QueryR::select_only(Select::new(vec![Agg::count_star(e.table)]));
    Some(Draft {
        question: count_head(rng, &e.plural),
        semql: single(q),
        values: vec![],
        value_infos: vec![],
    })
}

fn t_list_all(ctx: &TemplateCtx<'_>, rng: &mut SmallRng) -> Option<Draft> {
    let e = ctx.pick_entity(rng);
    let q = QueryR::select_only(select_name(e));
    Some(Draft {
        question: list_head(rng, &format!("{}s", e.name_label), &format!("all {}", e.plural)),
        semql: single(q),
        values: vec![],
        value_infos: vec![],
    })
}

fn t_distinct(ctx: &TemplateCtx<'_>, rng: &mut SmallRng) -> Option<Draft> {
    let e = ctx.pick_entity(rng);
    let f = ctx.pick_filter_on(rng, e.table)?;
    let mut select = Select::new(vec![Agg::plain(f.column, f.table)]);
    select.distinct = true;
    let q = QueryR::select_only(select);
    Some(Draft {
        question: format!("What are the distinct {}s of the {}?", f.label, e.plural),
        semql: single(q),
        values: vec![],
        value_infos: vec![],
    })
}

fn t_agg_stat(ctx: &TemplateCtx<'_>, rng: &mut SmallRng) -> Option<Draft> {
    let e = ctx.pick_entity(rng);
    let n = ctx.pick_numeric_on(rng, e.table)?;
    let (func, word) = match rng.gen_range(0..4) {
        0 => (AggFunc::Avg, "average"),
        1 => (AggFunc::Sum, "total"),
        2 => (AggFunc::Max, "maximum"),
        _ => (AggFunc::Min, "minimum"),
    };
    let q = QueryR::select_only(Select::new(vec![Agg::with(func, n.column, n.table)]));
    Some(Draft {
        question: format!("What is the {word} {} of all {}?", n.label, e.plural),
        semql: single(q),
        values: vec![],
        value_infos: vec![],
    })
}

fn t_order_by(ctx: &TemplateCtx<'_>, rng: &mut SmallRng) -> Option<Draft> {
    let e = ctx.pick_entity(rng);
    let n = ctx.pick_numeric_on(rng, e.table)?;
    let desc = rng.gen_bool(0.5);
    let q = QueryR {
        select: select_name(e),
        order: Some(Order { desc, agg: Agg::plain(n.column, n.table) }),
        superlative: None,
        filter: None,
    };
    Some(Draft {
        question: format!(
            "List the {}s of all {} sorted by {} in {} order.",
            e.name_label,
            e.plural,
            n.label,
            if desc { "descending" } else { "ascending" }
        ),
        semql: single(q),
        values: vec![],
        value_infos: vec![],
    })
}

fn t_group_count(ctx: &TemplateCtx<'_>, rng: &mut SmallRng) -> Option<Draft> {
    let e = ctx.pick_entity(rng);
    let f = ctx.pick_filter_on(rng, e.table)?;
    let q = QueryR::select_only(Select::new(vec![
        Agg::plain(f.column, f.table),
        Agg::count_star(e.table),
    ]));
    Some(Draft {
        question: format!("For each {}, how many {} are there?", f.label, e.plural),
        semql: single(q),
        values: vec![],
        value_infos: vec![],
    })
}

fn t_nested_avg(ctx: &TemplateCtx<'_>, rng: &mut SmallRng) -> Option<Draft> {
    let e = ctx.pick_entity(rng);
    let n = ctx.pick_numeric_on(rng, e.table)?;
    let inner = QueryR::select_only(Select::new(vec![Agg::with(
        AggFunc::Avg,
        n.column,
        n.table,
    )]));
    let q = QueryR {
        select: select_name(e),
        order: None,
        superlative: None,
        filter: Some(Filter::CmpNested {
            op: CmpOp::Gt,
            agg: Agg::plain(n.column, n.table),
            query: Box::new(inner),
        }),
    };
    Some(Draft {
        question: format!(
            "Which {} have a {} above the average?",
            e.plural, n.label
        ),
        semql: single(q),
        values: vec![],
        value_infos: vec![],
    })
}

fn t_not_in(ctx: &TemplateCtx<'_>, rng: &mut SmallRng) -> Option<Draft> {
    if ctx.spec.relations.is_empty() {
        return None;
    }
    let r = &ctx.spec.relations[rng.gen_range(0..ctx.spec.relations.len())];
    let subj = &ctx.spec.entities[r.subject];
    let obj = &ctx.spec.entities[r.object];
    let inner =
        QueryR::select_only(Select::new(vec![Agg::plain(r.link_col, r.link_table)]));
    let q = QueryR {
        select: select_name(subj),
        order: None,
        superlative: None,
        filter: Some(Filter::In {
            agg: Agg::plain(r.subject_key, subj.table),
            query: Box::new(inner),
            negated: true,
        }),
    };
    Some(Draft {
        question: format!(
            "List the {}s of {} that do not {} any {}.",
            subj.name_label, subj.plural, r.verb, obj.singular
        ),
        semql: single(q),
        values: vec![],
        value_infos: vec![],
    })
}

fn t_superlative(ctx: &TemplateCtx<'_>, rng: &mut SmallRng) -> Option<Draft> {
    let e = ctx.pick_entity(rng);
    let n = ctx.pick_numeric_on(rng, e.table)?;
    let most = rng.gen_bool(0.5);
    let mut vals = Values::default();
    let limit = vals.push_implicit("1");
    let q = QueryR {
        select: select_name(e),
        order: None,
        superlative: Some(Superlative { most, limit, agg: Agg::plain(n.column, n.table) }),
        filter: None,
    };
    let phrase = match &n.superlatives {
        Some((m, l)) => (if most { m } else { l }).clone(),
        None => format!("{} {}", if most { "highest" } else { "lowest" }, n.label),
    };
    Some(Draft {
        question: format!(
            "What is the {} of the {} with the {}?",
            e.name_label, e.singular, phrase
        ),
        semql: single(q),
        values: vals.texts,
        value_infos: vals.infos,
    })
}

// -------------------------- 1-value templates --------------------------

fn filtered_entity<'a>(
    ctx: &TemplateCtx<'a>,
    rng: &mut SmallRng,
) -> Option<(&'a Entity, &'a FilterCol, &'a SurfaceForm)> {
    // Prefer an entity that actually has filters.
    for _ in 0..6 {
        let e = ctx.pick_entity(rng);
        if let Some(f) = ctx.pick_filter_on(rng, e.table) {
            let s = ctx.pick_surface(rng, f);
            return Some((e, f, s));
        }
    }
    None
}

fn t_count_filtered(ctx: &TemplateCtx<'_>, rng: &mut SmallRng) -> Option<Draft> {
    let (e, f, s) = filtered_entity(ctx, rng)?;
    let mut vals = Values::default();
    let v = vals.push_surface(s);
    let q = QueryR {
        select: Select::new(vec![Agg::count_star(e.table)]),
        order: None,
        superlative: None,
        filter: Some(filter_eq(f, v)),
    };
    let np = noun_phrase(&e.plural, &[render_phrase(f, s)], "and");
    Some(Draft {
        question: count_head(rng, &np),
        semql: single(q),
        values: vals.texts,
        value_infos: vals.infos,
    })
}

fn t_list_filtered(ctx: &TemplateCtx<'_>, rng: &mut SmallRng) -> Option<Draft> {
    let (e, f, s) = filtered_entity(ctx, rng)?;
    if f.column == e.name_col {
        return None; // "names of students whose name is X" is degenerate
    }
    let mut vals = Values::default();
    let v = vals.push_surface(s);
    let q = QueryR {
        select: select_name(e),
        order: None,
        superlative: None,
        filter: Some(filter_eq(f, v)),
    };
    let np = noun_phrase(&e.plural, &[render_phrase(f, s)], "and");
    Some(Draft {
        question: list_head(rng, &format!("{}s", e.name_label), &np),
        semql: single(q),
        values: vals.texts,
        value_infos: vals.infos,
    })
}

fn t_numeric_cmp(ctx: &TemplateCtx<'_>, rng: &mut SmallRng) -> Option<Draft> {
    let e = ctx.pick_entity(rng);
    let n = ctx.pick_numeric_on(rng, e.table)?;
    let v = ctx.sample_numeric(rng, n)?;
    let more = rng.gen_bool(0.5);
    let mut vals = Values::default();
    let vr = vals.push_literal(&v);
    let q = QueryR {
        select: select_name(e),
        order: None,
        superlative: None,
        filter: Some(Filter::Cmp {
            op: if more { CmpOp::Gt } else { CmpOp::Lt },
            agg: Agg::plain(n.column, n.table),
            value: vr,
        }),
    };
    let np = format!("{} {}", e.plural, ctx.cmp_phrase(n, more, &v));
    Some(Draft {
        question: list_head(rng, &format!("{}s", e.name_label), &np),
        semql: single(q),
        values: vals.texts,
        value_infos: vals.infos,
    })
}

fn t_topk(ctx: &TemplateCtx<'_>, rng: &mut SmallRng) -> Option<Draft> {
    let e = ctx.pick_entity(rng);
    let n = ctx.pick_numeric_on(rng, e.table)?;
    let k = rng.gen_range(2..=5);
    let mut vals = Values::default();
    let limit = vals.push_literal(&k.to_string());
    let q = QueryR {
        select: select_name(e),
        order: None,
        superlative: Some(Superlative {
            most: true,
            limit,
            agg: Agg::plain(n.column, n.table),
        }),
        filter: None,
    };
    Some(Draft {
        question: format!(
            "List the {}s of the top {k} {} by {}.",
            e.name_label, e.plural, n.label
        ),
        semql: single(q),
        values: vals.texts,
        value_infos: vals.infos,
    })
}

fn t_having(ctx: &TemplateCtx<'_>, rng: &mut SmallRng) -> Option<Draft> {
    if ctx.spec.relations.is_empty() {
        return None;
    }
    let r = &ctx.spec.relations[rng.gen_range(0..ctx.spec.relations.len())];
    let subj = &ctx.spec.entities[r.subject];
    let obj = &ctx.spec.entities[r.object];
    let nthr = rng.gen_range(1..=2);
    let mut vals = Values::default();
    let v = vals.push_literal(&nthr.to_string());
    let q = QueryR {
        select: select_name(subj),
        order: None,
        superlative: None,
        filter: Some(Filter::Cmp {
            op: CmpOp::Gt,
            agg: Agg::count_star(r.link_table),
            value: v,
        }),
    };
    Some(Draft {
        question: format!(
            "Which {} {} more than {nthr} {}?",
            subj.plural, r.verb, obj.plural
        ),
        semql: single(q),
        values: vals.texts,
        value_infos: vals.infos,
    })
}

fn t_like(ctx: &TemplateCtx<'_>, rng: &mut SmallRng) -> Option<Draft> {
    let e = ctx.pick_entity(rng);
    // Take a fragment of an actual name so the query is non-trivial.
    let names: Vec<&Datum> = ctx.db.column_values(e.name_col).collect();
    if names.is_empty() {
        return None;
    }
    let name = names[rng.gen_range(0..names.len())].to_string();
    let word = name.split_whitespace().next()?.to_string();
    if word.chars().count() < 4 {
        return None;
    }
    let take = rng.gen_range(2..=3);
    let frag: String = word.chars().take(take).collect();
    let mut vals = Values::default();
    let v = vals.push_literal(&frag);
    let q = QueryR {
        select: select_name(e),
        order: None,
        superlative: None,
        filter: Some(Filter::Like {
            agg: Agg::plain(e.name_col, e.table),
            value: v,
            negated: rng.gen_bool(0.15),
        }),
    };
    let negated = matches!(q.filter, Some(Filter::Like { negated: true, .. }));
    Some(Draft {
        question: format!(
            "Which {} have a {} that {} contain the substring '{frag}'?",
            e.plural,
            e.name_label,
            if negated { "does not" } else { "does" }
        ),
        semql: single(q),
        values: vals.texts,
        value_infos: vals.infos,
    })
}

fn t_join_filtered(ctx: &TemplateCtx<'_>, rng: &mut SmallRng) -> Option<Draft> {
    // Select entity A, filter on a *different* table's column — the join
    // tree (possibly with a bridge table) is resolved at lowering.
    let e = ctx.pick_entity(rng);
    let other: Vec<&FilterCol> =
        ctx.spec.filters.iter().filter(|f| f.table != e.table).collect();
    if other.is_empty() {
        return None;
    }
    let f = other[rng.gen_range(0..other.len())];
    let s = ctx.pick_surface(rng, f);
    let other_entity = ctx.spec.entity_for_table(f.table)?;
    let mut vals = Values::default();
    let v = vals.push_surface(s);
    let q = QueryR {
        select: select_name(e),
        order: None,
        superlative: None,
        filter: Some(filter_eq(f, v)),
    };
    let obj_np = noun_phrase(&other_entity.plural, &[render_phrase(f, s)], "and");
    Some(Draft {
        question: format!(
            "What are the {}s of {} associated with {}?",
            e.name_label, e.plural, obj_np
        ),
        semql: single(q),
        values: vals.texts,
        value_infos: vals.infos,
    })
}

fn t_filter_superlative(ctx: &TemplateCtx<'_>, rng: &mut SmallRng) -> Option<Draft> {
    let (e, f, s) = filtered_entity(ctx, rng)?;
    let n = ctx.pick_numeric_on(rng, e.table)?;
    let most = rng.gen_bool(0.5);
    let mut vals = Values::default();
    let limit = vals.push_implicit("1");
    let v = vals.push_surface(s);
    let q = QueryR {
        select: select_name(e),
        order: None,
        superlative: Some(Superlative { most, limit, agg: Agg::plain(n.column, n.table) }),
        filter: Some(filter_eq(f, v)),
    };
    let phrase = match &n.superlatives {
        Some((m, l)) => (if most { m } else { l }).clone(),
        None => format!("{} {}", if most { "highest" } else { "lowest" }, n.label),
    };
    let np = noun_phrase(&e.plural, &[render_phrase(f, s)], "and");
    Some(Draft {
        question: format!("Among {np}, which {} has the {}?", e.singular, phrase),
        semql: single(q),
        values: vals.texts,
        value_infos: vals.infos,
    })
}

fn conjugate(verb: &str) -> String {
    // "own" -> "owns", "perform in" -> "performs in".
    let mut parts = verb.splitn(2, ' ');
    let head = parts.next().unwrap_or(verb);
    match parts.next() {
        Some(rest) => format!("{head}s {rest}"),
        None => format!("{head}s"),
    }
}

/// "Which author writes the most books?" — a grouped superlative over a
/// relation. Lowers to GROUP BY + ORDER BY count(*) DESC LIMIT 1 over a
/// join, which Spider's heuristic classifies as Extra-hard.
fn t_most_related(ctx: &TemplateCtx<'_>, rng: &mut SmallRng) -> Option<Draft> {
    if ctx.spec.relations.is_empty() {
        return None;
    }
    let r = &ctx.spec.relations[rng.gen_range(0..ctx.spec.relations.len())];
    let subj = &ctx.spec.entities[r.subject];
    let obj = &ctx.spec.entities[r.object];
    let most = rng.gen_bool(0.7);
    let mut vals = Values::default();
    let limit = vals.push_implicit("1");
    let q = QueryR {
        select: select_name(subj),
        order: None,
        superlative: Some(Superlative {
            most,
            limit,
            agg: Agg::count_star(r.link_table),
        }),
        filter: None,
    };
    Some(Draft {
        question: format!(
            "Which {} {} the {} {}?",
            subj.singular,
            conjugate(&r.verb),
            if most { "most" } else { "fewest" },
            obj.plural
        ),
        semql: single(q),
        values: vals.texts,
        value_infos: vals.infos,
    })
}

/// "List the names of French authors that have not written any book." —
/// an equality filter combined with a NOT IN subquery (Extra-hard).
fn t_not_in_filtered(ctx: &TemplateCtx<'_>, rng: &mut SmallRng) -> Option<Draft> {
    if ctx.spec.relations.is_empty() {
        return None;
    }
    let r = &ctx.spec.relations[rng.gen_range(0..ctx.spec.relations.len())];
    let subj = &ctx.spec.entities[r.subject];
    let obj = &ctx.spec.entities[r.object];
    let f = ctx.pick_filter_on(rng, subj.table)?;
    let s = ctx.pick_surface(rng, f);
    let mut vals = Values::default();
    let v = vals.push_surface(s);
    let inner =
        QueryR::select_only(Select::new(vec![Agg::plain(r.link_col, r.link_table)]));
    let filter = Filter::And(
        Box::new(filter_eq(f, v)),
        Box::new(Filter::In {
            agg: Agg::plain(r.subject_key, subj.table),
            query: Box::new(inner),
            negated: true,
        }),
    );
    let q = QueryR { select: select_name(subj), order: None, superlative: None, filter: Some(filter) };
    let np = noun_phrase(&subj.plural, &[render_phrase(f, s)], "and");
    Some(Draft {
        question: format!(
            "List the {}s of {np} that do not {} any {}.",
            subj.name_label, r.verb, obj.singular
        ),
        semql: single(q),
        values: vals.texts,
        value_infos: vals.infos,
    })
}

// -------------------------- 2-value templates --------------------------

fn two_filters<'a>(
    ctx: &TemplateCtx<'a>,
    rng: &mut SmallRng,
) -> Option<(&'a Entity, [(&'a FilterCol, &'a SurfaceForm); 2])> {
    for _ in 0..8 {
        let e = ctx.pick_entity(rng);
        let fs = ctx.spec.filters_for_table(e.table);
        if fs.len() >= 2 {
            let i = rng.gen_range(0..fs.len());
            let mut j = rng.gen_range(0..fs.len());
            while j == i {
                j = rng.gen_range(0..fs.len());
            }
            let s1 = ctx.pick_surface(rng, fs[i]);
            let s2 = ctx.pick_surface(rng, fs[j]);
            return Some((e, [(fs[i], s1), (fs[j], s2)]));
        }
    }
    None
}

fn t_two_filters(ctx: &TemplateCtx<'_>, rng: &mut SmallRng) -> Option<Draft> {
    let (e, [(f1, s1), (f2, s2)]) = two_filters(ctx, rng)?;
    let or = rng.gen_bool(0.3);
    let mut vals = Values::default();
    let v1 = vals.push_surface(s1);
    let v2 = vals.push_surface(s2);
    let (a, b) = (filter_eq(f1, v1), filter_eq(f2, v2));
    let filter = if or {
        Filter::Or(Box::new(a), Box::new(b))
    } else {
        Filter::And(Box::new(a), Box::new(b))
    };
    let q = QueryR { select: select_name(e), order: None, superlative: None, filter: Some(filter) };
    let connective = if or { "or" } else { "and" };
    let np = noun_phrase(
        &e.plural,
        &[render_phrase(f1, s1), render_phrase(f2, s2)],
        connective,
    );
    Some(Draft {
        question: list_head(rng, &format!("{}s", e.name_label), &np),
        semql: single(q),
        values: vals.texts,
        value_infos: vals.infos,
    })
}

fn t_filter_and_numcmp(ctx: &TemplateCtx<'_>, rng: &mut SmallRng) -> Option<Draft> {
    let (e, f, s) = filtered_entity(ctx, rng)?;
    let n = ctx.pick_numeric_on(rng, e.table)?;
    let nv = ctx.sample_numeric(rng, n)?;
    let more = rng.gen_bool(0.5);
    let mut vals = Values::default();
    let v1 = vals.push_surface(s);
    let v2 = vals.push_literal(&nv);
    let filter = Filter::And(
        Box::new(filter_eq(f, v1)),
        Box::new(Filter::Cmp {
            op: if more { CmpOp::Gt } else { CmpOp::Lt },
            agg: Agg::plain(n.column, n.table),
            value: v2,
        }),
    );
    let q = QueryR { select: select_name(e), order: None, superlative: None, filter: Some(filter) };
    let np = format!(
        "{} {}",
        noun_phrase(&e.plural, &[render_phrase(f, s)], "and"),
        ctx.cmp_phrase(n, more, &nv)
    );
    let question = match rng.gen_range(0..2) {
        0 => count_head(rng, &np),
        _ => list_head(rng, &format!("{}s", e.name_label), &np),
    };
    // A count question needs a count(*) projection instead of the name.
    let semql = if question.starts_with("How many")
        || question.starts_with("Count")
        || question.starts_with("What is the total number")
    {
        let mut q2 = q.clone();
        q2.select = Select::new(vec![Agg::count_star(e.table)]);
        single(q2)
    } else {
        single(q)
    };
    Some(Draft { question, semql, values: vals.texts, value_infos: vals.infos })
}

fn t_between(ctx: &TemplateCtx<'_>, rng: &mut SmallRng) -> Option<Draft> {
    let e = ctx.pick_entity(rng);
    let n = ctx.pick_numeric_on(rng, e.table)?;
    let a = ctx.sample_numeric(rng, n)?;
    let b = ctx.sample_numeric(rng, n)?;
    let (lo, hi) = if a.parse::<f64>().ok()? <= b.parse::<f64>().ok()? { (a, b) } else { (b, a) };
    let mut vals = Values::default();
    let v1 = vals.push_literal(&lo);
    let v2 = vals.push_literal(&hi);
    let q = QueryR {
        select: select_name(e),
        order: None,
        superlative: None,
        filter: Some(Filter::Between {
            agg: Agg::plain(n.column, n.table),
            low: v1,
            high: v2,
        }),
    };
    Some(Draft {
        question: format!(
            "List the {}s of {} with {} between {lo} and {hi}.",
            e.name_label, e.plural, n.label
        ),
        semql: single(q),
        values: vals.texts,
        value_infos: vals.infos,
    })
}

fn t_set_op(ctx: &TemplateCtx<'_>, rng: &mut SmallRng) -> Option<Draft> {
    let (e, [(f1, s1), (f2, s2)]) = two_filters(ctx, rng)?;
    let mut vals = Values::default();
    let v1 = vals.push_surface(s1);
    let left = QueryR {
        select: select_name(e),
        order: None,
        superlative: None,
        filter: Some(filter_eq(f1, v1)),
    };
    let v2 = vals.push_surface(s2);
    let right = QueryR {
        select: select_name(e),
        order: None,
        superlative: None,
        filter: Some(filter_eq(f2, v2)),
    };
    let np1 = noun_phrase(&e.plural, &[render_phrase(f1, s1)], "and");
    let np2 = noun_phrase(&e.plural, &[render_phrase(f2, s2)], "and");
    let (semql, question) = match rng.gen_range(0..3) {
        0 => (
            SemQl::Intersect(Box::new(left), Box::new(right)),
            format!("Find the {}s that appear both among {np1} and among {np2}.", e.name_label),
        ),
        1 => (
            SemQl::Except(Box::new(left), Box::new(right)),
            format!("List the {}s of {np1} that are not among {np2}.", e.name_label),
        ),
        _ => (
            SemQl::Union(Box::new(left), Box::new(right)),
            format!("List the {}s of {np1} together with those of {np2}.", e.name_label),
        ),
    };
    Some(Draft { question, semql, values: vals.texts, value_infos: vals.infos })
}

// -------------------------- 3- and 4-value templates --------------------------

fn t_three_values(ctx: &TemplateCtx<'_>, rng: &mut SmallRng) -> Option<Draft> {
    let (e, [(f1, s1), (f2, s2)]) = two_filters(ctx, rng)?;
    let n = ctx.pick_numeric_on(rng, e.table)?;
    let nv = ctx.sample_numeric(rng, n)?;
    let more = rng.gen_bool(0.5);
    let mut vals = Values::default();
    let v1 = vals.push_surface(s1);
    let v2 = vals.push_surface(s2);
    let v3 = vals.push_literal(&nv);
    let filter = Filter::And(
        Box::new(Filter::And(Box::new(filter_eq(f1, v1)), Box::new(filter_eq(f2, v2)))),
        Box::new(Filter::Cmp {
            op: if more { CmpOp::Gt } else { CmpOp::Lt },
            agg: Agg::plain(n.column, n.table),
            value: v3,
        }),
    );
    let q = QueryR { select: select_name(e), order: None, superlative: None, filter: Some(filter) };
    let np = format!(
        "{} {}",
        noun_phrase(&e.plural, &[render_phrase(f1, s1), render_phrase(f2, s2)], "and"),
        ctx.cmp_phrase(n, more, &nv)
    );
    Some(Draft {
        question: list_head(rng, &format!("{}s", e.name_label), &np),
        semql: single(q),
        values: vals.texts,
        value_infos: vals.infos,
    })
}

fn t_four_values(ctx: &TemplateCtx<'_>, rng: &mut SmallRng) -> Option<Draft> {
    let (e, [(f1, s1), (f2, s2)]) = two_filters(ctx, rng)?;
    let n = ctx.pick_numeric_on(rng, e.table)?;
    let a = ctx.sample_numeric(rng, n)?;
    let b = ctx.sample_numeric(rng, n)?;
    let (lo, hi) = if a.parse::<f64>().ok()? <= b.parse::<f64>().ok()? { (a, b) } else { (b, a) };
    let mut vals = Values::default();
    let v1 = vals.push_surface(s1);
    let v2 = vals.push_surface(s2);
    let v3 = vals.push_literal(&lo);
    let v4 = vals.push_literal(&hi);
    let filter = Filter::And(
        Box::new(Filter::And(Box::new(filter_eq(f1, v1)), Box::new(filter_eq(f2, v2)))),
        Box::new(Filter::Between { agg: Agg::plain(n.column, n.table), low: v3, high: v4 }),
    );
    let q = QueryR { select: select_name(e), order: None, superlative: None, filter: Some(filter) };
    let np = format!(
        "{} with {} between {lo} and {hi}",
        noun_phrase(&e.plural, &[render_phrase(f1, s1), render_phrase(f2, s2)], "and"),
        n.label
    );
    Some(Draft {
        question: list_head(rng, &format!("{}s", e.name_label), &np),
        semql: single(q),
        values: vals.texts,
        value_infos: vals.infos,
    })
}

/// Templates grouped by the number of *countable* (non-implicit) values
/// their questions carry, indexed `0..=4`.
pub fn templates_by_value_count() -> [Vec<TemplateFn>; 5] {
    [
        vec![
            t_count_all,
            t_list_all,
            t_distinct,
            t_agg_stat,
            t_order_by,
            t_group_count,
            t_nested_avg,
            t_not_in,
            t_superlative,
            t_most_related,
        ],
        vec![
            t_count_filtered,
            t_list_filtered,
            t_numeric_cmp,
            t_topk,
            t_having,
            t_like,
            t_join_filtered,
            t_filter_superlative,
            t_not_in_filtered,
        ],
        vec![t_two_filters, t_filter_and_numcmp, t_between, t_set_op],
        vec![t_three_values],
        vec![t_four_values],
    ]
}
