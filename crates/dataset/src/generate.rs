//! Corpus assembly: domain construction, sampling, validation, splitting.

use crate::domains::{all_domains, NUM_TRAIN_DOMAINS};
use crate::spec::{DomainSpec, ValueInfo};
use crate::templates::{templates_by_value_count, TemplateCtx};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use valuenet_eval::{spider_difficulty, Difficulty};
use valuenet_exec::execute;
use valuenet_schema::SchemaGraph;
use valuenet_semql::{to_sql, ResolvedValue, SemQl};
use valuenet_storage::Database;

/// Corpus generation knobs.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CorpusConfig {
    /// Random seed (databases and questions are fully determined by it).
    pub seed: u64,
    /// Number of training questions.
    pub train_size: usize,
    /// Number of dev questions (over the unseen databases).
    pub dev_size: usize,
    /// Approximate rows per table in each database.
    pub rows_per_table: usize,
    /// Sampling weights for the value-surface difficulty classes
    /// (Easy, Medium, Hard, Extra-hard). The default mirrors Spider's
    /// easy-heavy mix; biasing towards the harder classes reproduces the
    /// paper's light-vs-full gap (Section V-E).
    pub surface_weights: [u32; 4],
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: 42,
            train_size: 2000,
            dev_size: 300,
            rows_per_table: 30,
            surface_weights: DEFAULT_SURFACE_WEIGHTS,
        }
    }
}

impl CorpusConfig {
    /// The paper-scale configuration: 7,000 train / 1,034 dev questions
    /// (Spider's split sizes).
    pub fn paper_scale() -> Self {
        CorpusConfig {
            seed: 42,
            train_size: 7000,
            dev_size: 1034,
            rows_per_table: 30,
            surface_weights: DEFAULT_SURFACE_WEIGHTS,
        }
    }

    /// A tiny configuration for fast tests.
    pub fn tiny() -> Self {
        CorpusConfig {
            seed: 7,
            train_size: 120,
            dev_size: 40,
            rows_per_table: 16,
            surface_weights: DEFAULT_SURFACE_WEIGHTS,
        }
    }
}

/// One question/query pair.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Index into [`Corpus::databases`].
    pub db_index: usize,
    /// Database id.
    pub db_id: String,
    /// The natural-language question.
    pub question: String,
    /// Gold SQL text.
    pub sql: String,
    /// Gold SemQL tree.
    pub semql: SemQl,
    /// Gold value texts in `ValueRef` order.
    pub values: Vec<String>,
    /// Per-value provenance.
    pub value_infos: Vec<ValueInfo>,
    /// Spider difficulty of the gold query.
    pub difficulty: Difficulty,
}

impl Sample {
    /// Number of question-visible (non-implicit) values — what the paper's
    /// Fig. 9 counts.
    pub fn num_question_values(&self) -> usize {
        self.value_infos.iter().filter(|v| !v.implicit).count()
    }
}

/// A generated corpus.
pub struct Corpus {
    /// All databases (train domains first).
    pub databases: Vec<Database>,
    /// The domain metadata, parallel to `databases`.
    pub specs: Vec<DomainSpec>,
    /// Training samples (databases `0..NUM_TRAIN_DOMAINS`).
    pub train: Vec<Sample>,
    /// Dev samples over the unseen databases.
    pub dev: Vec<Sample>,
}

impl Corpus {
    /// The database a sample runs against.
    pub fn db(&self, sample: &Sample) -> &Database {
        &self.databases[sample.db_index]
    }
}

/// Target value-count distribution: the paper's Fig. 9 fractions of the
/// 7,000-question train split (3469 / 2494 / 945 / 62 / 30).
const VALUE_COUNT_WEIGHTS: [u32; 5] = [3469, 2494, 945, 62, 30];

/// Default surface-difficulty weights (Easy / Medium / Hard / Extra-hard).
pub const DEFAULT_SURFACE_WEIGHTS: [u32; 4] = [60, 20, 15, 5];

/// Generates the full corpus.
pub fn generate(cfg: &CorpusConfig) -> Corpus {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let specs = all_domains(&mut rng, cfg.rows_per_table);
    let databases: Vec<Database> = specs
        .iter()
        .map(|s| Database::with_rows(s.schema.clone(), s.rows.clone()))
        .collect();
    let graphs: Vec<SchemaGraph> = specs.iter().map(|s| SchemaGraph::new(&s.schema)).collect();

    let train = generate_split(
        &mut rng,
        &specs[..NUM_TRAIN_DOMAINS],
        &databases[..NUM_TRAIN_DOMAINS],
        &graphs[..NUM_TRAIN_DOMAINS],
        0,
        cfg.train_size,
        cfg.surface_weights,
    );
    let dev = generate_split(
        &mut rng,
        &specs[NUM_TRAIN_DOMAINS..],
        &databases[NUM_TRAIN_DOMAINS..],
        &graphs[NUM_TRAIN_DOMAINS..],
        NUM_TRAIN_DOMAINS,
        cfg.dev_size,
        cfg.surface_weights,
    );
    Corpus { databases, specs, train, dev }
}

fn generate_split(
    rng: &mut SmallRng,
    specs: &[DomainSpec],
    databases: &[Database],
    graphs: &[SchemaGraph],
    db_offset: usize,
    size: usize,
    surface_weights: [u32; 4],
) -> Vec<Sample> {
    let buckets = templates_by_value_count();
    let total_weight: u32 = VALUE_COUNT_WEIGHTS.iter().sum();
    let mut out = Vec::with_capacity(size);
    let mut attempts = 0usize;
    while out.len() < size {
        attempts += 1;
        assert!(
            attempts < size * 200 + 10_000,
            "corpus generation is not converging ({}/{size} after {attempts} attempts)",
            out.len()
        );
        // 1. Pick a value-count bucket by the Fig. 9 distribution, then a
        //    template and a domain.
        let mut roll = rng.gen_range(0..total_weight);
        let mut bucket = 0;
        for (i, &w) in VALUE_COUNT_WEIGHTS.iter().enumerate() {
            if roll < w {
                bucket = i;
                break;
            }
            roll -= w;
        }
        let template = buckets[bucket][rng.gen_range(0..buckets[bucket].len())];
        let di = rng.gen_range(0..specs.len());
        let ctx = TemplateCtx { spec: &specs[di], db: &databases[di], surface_weights };
        let Some(draft) = template(&ctx, rng) else { continue };

        // 2. Lower the gold tree and validate by executing it — every
        //    emitted sample is runnable by construction.
        let values: Vec<ResolvedValue> =
            draft.values.iter().map(ResolvedValue::new).collect();
        let Ok(stmt) = to_sql(&draft.semql, &specs[di].schema, &graphs[di], &values) else {
            continue;
        };
        if execute(&databases[di], &stmt).is_err() {
            continue;
        }
        let difficulty = spider_difficulty(&stmt);
        out.push(Sample {
            db_index: db_offset + di,
            db_id: specs[di].schema.db_id.clone(),
            question: draft.question,
            sql: stmt.to_string(),
            semql: draft.semql,
            values: draft.values,
            value_infos: draft.value_infos,
            difficulty,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use valuenet_sql::parse_select;

    fn tiny() -> Corpus {
        generate(&CorpusConfig::tiny())
    }

    #[test]
    fn corpus_has_requested_sizes_and_disjoint_dbs() {
        let c = tiny();
        assert_eq!(c.train.len(), 120);
        assert_eq!(c.dev.len(), 40);
        assert_eq!(c.databases.len(), 14);
        let train_dbs: std::collections::BTreeSet<&str> =
            c.train.iter().map(|s| s.db_id.as_str()).collect();
        let dev_dbs: std::collections::BTreeSet<&str> =
            c.dev.iter().map(|s| s.db_id.as_str()).collect();
        assert!(train_dbs.is_disjoint(&dev_dbs), "train/dev databases overlap");
        assert!(dev_dbs.len() >= 2, "dev should span several unseen databases");
    }

    #[test]
    fn every_sample_parses_and_executes() {
        let c = tiny();
        for s in c.train.iter().chain(&c.dev) {
            let stmt = parse_select(&s.sql)
                .unwrap_or_else(|e| panic!("gold SQL unparsable: {} ({e})", s.sql));
            execute(c.db(s), &stmt)
                .unwrap_or_else(|e| panic!("gold SQL fails to run: {} ({e})", s.sql));
        }
    }

    #[test]
    fn gold_semql_round_trips_through_actions() {
        use valuenet_semql::{actions_to_ast, ast_to_actions};
        let c = tiny();
        for s in c.train.iter().take(60) {
            let actions = ast_to_actions(&s.semql);
            assert_eq!(actions_to_ast(&actions).unwrap(), s.semql, "sample: {}", s.question);
        }
    }

    #[test]
    fn value_distribution_shape_matches_fig9() {
        let c = generate(&CorpusConfig { train_size: 1500, ..CorpusConfig::tiny() });
        let mut counts = [0usize; 5];
        for s in &c.train {
            counts[s.num_question_values().min(4)] += 1;
        }
        let total = c.train.len() as f64;
        // Roughly half the questions carry no value, one-value questions are
        // the biggest value bucket, counts fall off monotonically.
        assert!((counts[0] as f64 / total - 0.50).abs() < 0.08, "{counts:?}");
        assert!((counts[1] as f64 / total - 0.36).abs() < 0.08, "{counts:?}");
        assert!(counts[1] > counts[2], "{counts:?}");
        assert!(counts[2] > counts[3], "{counts:?}");
        assert!(counts[3] + counts[4] > 0, "tail buckets must be populated: {counts:?}");
    }

    #[test]
    fn values_match_semql_references() {
        let c = tiny();
        for s in c.train.iter().chain(&c.dev) {
            let refs = s.semql.value_refs();
            assert_eq!(refs.len(), s.values.len(), "sample: {}", s.question);
            for r in refs {
                assert!(r.0 < s.values.len(), "dangling ValueRef in {}", s.question);
            }
            assert_eq!(s.values.len(), s.value_infos.len());
        }
    }

    #[test]
    fn question_surfaces_appear_in_questions() {
        let c = tiny();
        for s in c.train.iter().chain(&c.dev) {
            for vi in &s.value_infos {
                if !vi.implicit {
                    assert!(
                        s.question.to_lowercase().contains(&vi.question_text.to_lowercase()),
                        "surface '{}' missing from question '{}'",
                        vi.question_text,
                        s.question
                    );
                }
            }
        }
    }

    #[test]
    fn difficulty_mix_covers_multiple_levels() {
        let c = generate(&CorpusConfig { train_size: 600, ..CorpusConfig::tiny() });
        let mut seen = std::collections::BTreeSet::new();
        for s in &c.train {
            seen.insert(s.difficulty);
        }
        assert!(seen.len() >= 3, "difficulty mix too narrow: {seen:?}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = generate(&CorpusConfig::tiny());
        let b = generate(&CorpusConfig::tiny());
        for (x, y) in a.train.iter().zip(&b.train) {
            assert_eq!(x.question, y.question);
            assert_eq!(x.sql, y.sql);
        }
    }

    #[test]
    fn hard_value_surfaces_differ_from_db_values() {
        // The corpus must contain Hard/Extra-hard samples whose question text
        // does not literally contain the DB value (e.g. "French" → France).
        let c = generate(&CorpusConfig { train_size: 800, ..CorpusConfig::tiny() });
        let hard = c
            .train
            .iter()
            .flat_map(|s| &s.value_infos)
            .filter(|v| {
                !v.implicit
                    && v.difficulty >= crate::ValueDifficulty::Hard
                    && v.question_text != v.db_value
            })
            .count();
        assert!(hard > 0, "no hard surface forms generated");
    }
}
