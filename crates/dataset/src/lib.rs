//! A synthetic Spider-like corpus generator.
//!
//! The original ValueNet is trained and evaluated on the Spider dataset
//! (10,181 human-written questions over 200 databases), which is not
//! available here; per the substitution policy in `DESIGN.md` this crate
//! generates the closest synthetic equivalent that exercises every code
//! path of the system:
//!
//! - **14 multi-table domain databases** with seeded data generators,
//!   split into *disjoint* train and dev sets so that evaluation measures
//!   transfer to unseen schemas, exactly like Spider.
//! - **Question templates** spanning the Spider query distribution:
//!   counting, filtered selection, multi-condition AND/OR, BETWEEN, LIKE,
//!   grouping + HAVING, ORDER BY, superlatives with LIMIT, nested
//!   subqueries, and set operations.
//! - **Value surface forms** reproducing the paper's value-difficulty
//!   classes (Section V-A1): *Easy* (literal in the question), *Medium*
//!   (inflected form, e.g. "professors" → `'Professor'`), *Hard* (domain
//!   mapping, e.g. "French" → `'France'`, "Los Angeles" → `'LAX'`) and
//!   *Extra-hard* (implicit values, e.g. "official languages" →
//!   `is_official = 1`).
//! - A **value-count distribution** matched to the paper's Fig. 9
//!   (≈49.6% of questions carry no value, 35.6% one, 13.5% two, 0.9%
//!   three, 0.4% four).
//!
//! Every generated sample is *self-consistent by construction*: the gold
//! SemQL tree is lowered to SQL with the production lowering code and
//! executed against the generated database before the sample is emitted.

//! ```
//! use valuenet_dataset::{generate, CorpusConfig};
//!
//! let corpus = generate(&CorpusConfig {
//!     train_size: 20,
//!     dev_size: 8,
//!     ..CorpusConfig::tiny()
//! });
//! assert_eq!(corpus.databases.len(), 14);
//! assert_eq!(corpus.train.len(), 20);
//! // Every sample's gold SQL executes against its database.
//! let s = &corpus.train[0];
//! let stmt = valuenet_sql::parse_select(&s.sql).unwrap();
//! assert!(valuenet_exec::execute(corpus.db(s), &stmt).is_ok());
//! ```

mod domains;
mod generate;
pub mod pools;
mod spec;
mod templates;

pub use generate::{generate, Corpus, CorpusConfig, Sample, DEFAULT_SURFACE_WEIGHTS};
pub use spec::{
    DomainSpec, Entity, FilterCol, NumericCol, Phrase, Relation, SurfaceForm, ValueDifficulty,
    ValueInfo,
};

pub use domains::all_domains;
