//! Domain specification: the metadata the generic question templates need.

use serde::{Deserialize, Serialize};
use valuenet_schema::{ColumnId, DbSchema, TableId};
use valuenet_storage::Datum;

/// The paper's value-difficulty classes (Section V-A1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ValueDifficulty {
    /// Value appears verbatim in the question ("older than 20").
    Easy,
    /// Slightly different form ("professors" → `'Professor'`).
    Medium,
    /// Needs domain knowledge ("French" → `'France'`, "Los Angeles" → `'LAX'`).
    Hard,
    /// Not explicitly recognisable as a value ("official languages" →
    /// `is_official = 1`).
    ExtraHard,
}

impl ValueDifficulty {
    /// All classes in order.
    pub const ALL: [ValueDifficulty; 4] = [
        ValueDifficulty::Easy,
        ValueDifficulty::Medium,
        ValueDifficulty::Hard,
        ValueDifficulty::ExtraHard,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            ValueDifficulty::Easy => "Easy",
            ValueDifficulty::Medium => "Medium",
            ValueDifficulty::Hard => "Hard",
            ValueDifficulty::ExtraHard => "Extra-Hard",
        }
    }
}

/// One way a database value can surface in a question.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SurfaceForm {
    /// The value as stored in the database (and used in the gold SQL).
    pub db_value: String,
    /// The text that appears in the question ("French").
    pub question_text: String,
    /// The resulting extraction difficulty.
    pub difficulty: ValueDifficulty,
}

impl SurfaceForm {
    /// A value that surfaces verbatim.
    pub fn easy(v: impl Into<String>) -> Self {
        let v = v.into();
        SurfaceForm { question_text: v.clone(), db_value: v, difficulty: ValueDifficulty::Easy }
    }

    /// A value with a different surface form of the given difficulty.
    pub fn mapped(
        db_value: impl Into<String>,
        question_text: impl Into<String>,
        difficulty: ValueDifficulty,
    ) -> Self {
        SurfaceForm { db_value: db_value.into(), question_text: question_text.into(), difficulty }
    }
}

/// How an equality filter on a column is phrased in a question.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phrase {
    /// "`{plural}` from `{value}`" (countries, cities).
    From,
    /// "`{value}` `{plural}`" — adjective position ("French students").
    Adjective,
    /// "`{plural}` whose `{label}` is `{value}`".
    Whose(String),
    /// "`{plural}` who are `{value}`" (titles, positions).
    WhoAre,
    /// "`{plural}` with `{label}` `{value}`".
    With(String),
    /// "`{plural}` that are `{value}`" (boolean adjectives).
    ThatAre,
}

/// A column suitable for equality filters, with its surface forms.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FilterCol {
    /// Owning table.
    pub table: TableId,
    /// The column.
    pub column: ColumnId,
    /// Natural-language label ("major", "home country").
    pub label: String,
    /// Phrasing.
    pub phrase: Phrase,
    /// Possible value surfaces (all `db_value`s exist in the generated data).
    pub surfaces: Vec<SurfaceForm>,
}

/// A numeric column usable in comparisons, aggregates and orderings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NumericCol {
    /// Owning table.
    pub table: TableId,
    /// The column.
    pub column: ColumnId,
    /// Natural-language label ("age", "salary").
    pub label: String,
    /// Comparison phrasings, e.g. `("older than", "younger than")`;
    /// `None` falls back to "with {label} greater/less than".
    pub cmp_phrases: Option<(String, String)>,
    /// Superlative adjectives, e.g. `("oldest", "youngest")`; `None` falls
    /// back to "the highest/lowest {label}".
    pub superlatives: Option<(String, String)>,
}

/// A table the questions can be *about*.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Entity {
    /// The table.
    pub table: TableId,
    /// Singular noun ("student").
    pub singular: String,
    /// Plural noun ("students").
    pub plural: String,
    /// The column naming one row ("name", "title").
    pub name_col: ColumnId,
    /// NL label of that column ("name", "title").
    pub name_label: String,
}

/// A semantic relation between two entities, for join / NOT-IN templates
/// ("students that own pets").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Relation {
    /// Index into `DomainSpec::entities` of the subject (student).
    pub subject: usize,
    /// Index into `DomainSpec::entities` of the object (pet).
    pub object: usize,
    /// Verb phrase ("own", "have").
    pub verb: String,
    /// The subject's key column (student.stu_id).
    pub subject_key: ColumnId,
    /// The column (in the bridge or object table) listing subjects that
    /// participate (has_pet.stu_id), with its owning table.
    pub link_col: ColumnId,
    /// Owning table of `link_col`.
    pub link_table: TableId,
}

/// One fully-specified domain: schema, generated rows, and the NL metadata
/// the templates draw from.
#[derive(Debug, Clone)]
pub struct DomainSpec {
    /// The schema (db_id is the domain name).
    pub schema: DbSchema,
    /// Generated rows, one `Vec` per table in schema order.
    pub rows: Vec<Vec<Vec<Datum>>>,
    /// Queryable entities.
    pub entities: Vec<Entity>,
    /// Equality-filterable columns.
    pub filters: Vec<FilterCol>,
    /// Numeric columns.
    pub numerics: Vec<NumericCol>,
    /// Entity relations.
    pub relations: Vec<Relation>,
}

impl DomainSpec {
    /// Entities belonging to a given table.
    pub fn entity_for_table(&self, table: TableId) -> Option<&Entity> {
        self.entities.iter().find(|e| e.table == table)
    }

    /// Filter columns on a given table.
    pub fn filters_for_table(&self, table: TableId) -> Vec<&FilterCol> {
        self.filters.iter().filter(|f| f.table == table).collect()
    }

    /// Numeric columns on a given table.
    pub fn numerics_for_table(&self, table: TableId) -> Vec<&NumericCol> {
        self.numerics.iter().filter(|n| n.table == table).collect()
    }
}

/// One gold value of a sample, with its provenance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValueInfo {
    /// The value as used in the gold SQL (database form).
    pub db_value: String,
    /// The surface text in the question (empty for implicit values).
    pub question_text: String,
    /// Extraction difficulty class.
    pub difficulty: ValueDifficulty,
    /// Whether the value never appears in the question (e.g. the implicit
    /// `LIMIT 1` of a superlative). Implicit values are excluded from the
    /// Fig. 9 value counts, matching the paper's counting of question values.
    pub implicit: bool,
}
