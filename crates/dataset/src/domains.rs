//! The 14 domain databases.
//!
//! Each function builds a schema, seeds its rows, and annotates the
//! entities / filterable columns / numeric columns / relations the generic
//! templates draw from. The first ten domains form the training split, the
//! last four the (unseen) dev split — mirroring Spider's disjoint-database
//! transfer setting.

use crate::pools::*;
use crate::spec::*;
use rand::rngs::SmallRng;
use rand::Rng;
use valuenet_schema::{ColumnId, ColumnType, DbSchema, SchemaBuilder, TableId};
use valuenet_storage::Datum;

/// Builds every domain. The returned vector is ordered: the first
/// [`NUM_TRAIN_DOMAINS`] are the training databases.
pub fn all_domains(rng: &mut SmallRng, rows_per_table: usize) -> Vec<DomainSpec> {
    vec![
        student_pets(rng, rows_per_table),
        flights(rng, rows_per_table),
        employees(rng, rows_per_table),
        world(rng, rows_per_table),
        orchestra(rng, rows_per_table),
        tv_channels(rng, rows_per_table),
        shop_orders(rng, rows_per_table),
        sports_league(rng, rows_per_table),
        music_albums(rng, rows_per_table),
        university(rng, rows_per_table),
        // --- dev (unseen) domains ---
        concerts(rng, rows_per_table),
        car_dealers(rng, rows_per_table),
        library(rng, rows_per_table),
        hospital(rng, rows_per_table),
    ]
}

/// Number of domains reserved for the training split.
pub const NUM_TRAIN_DOMAINS: usize = 10;

fn cid(schema: &DbSchema, table: &str, column: &str) -> (TableId, ColumnId) {
    let t = schema.table_by_name(table).unwrap_or_else(|| panic!("table {table}"));
    let c = schema
        .column_by_name(t, column)
        .unwrap_or_else(|| panic!("column {table}.{column}"));
    (t, c)
}

fn pick<'a, T>(rng: &mut SmallRng, xs: &'a [T]) -> &'a T {
    &xs[rng.gen_range(0..xs.len())]
}

fn person_name(rng: &mut SmallRng, i: usize) -> String {
    format!("{} {}", FIRST_NAMES[i % FIRST_NAMES.len()], pick(rng, LAST_NAMES))
}

fn title_name(rng: &mut SmallRng) -> String {
    format!("{} {}", pick(rng, TITLE_WORDS), pick(rng, TITLE_WORDS))
}

fn rand_date(rng: &mut SmallRng) -> String {
    iso_date(rng.gen_range(2005..2022), rng.gen_range(1..13), rng.gen_range(1..29))
}

fn country_surfaces(used: &[&str]) -> Vec<SurfaceForm> {
    let mut out = Vec::new();
    for c in used {
        out.push(SurfaceForm::easy(*c));
        if let Some(d) = demonym(c) {
            out.push(SurfaceForm::mapped(*c, d, ValueDifficulty::Hard));
        }
    }
    out
}

fn easy_surfaces(values: &[&str]) -> Vec<SurfaceForm> {
    values.iter().map(|v| SurfaceForm::easy(*v)).collect()
}

fn inflected_surfaces(pairs: &[(&str, &str)]) -> Vec<SurfaceForm> {
    let mut out = Vec::new();
    for (v, plural) in pairs {
        out.push(SurfaceForm::easy(*v));
        out.push(SurfaceForm::mapped(*v, *plural, ValueDifficulty::Medium));
    }
    out
}

fn gender_surfaces() -> Vec<SurfaceForm> {
    vec![
        SurfaceForm::mapped("F", "female", ValueDifficulty::Hard),
        SurfaceForm::mapped("M", "male", ValueDifficulty::Hard),
    ]
}

fn num(table: TableId, column: ColumnId, label: &str) -> NumericCol {
    NumericCol { table, column, label: label.into(), cmp_phrases: None, superlatives: None }
}

fn num_full(
    table: TableId,
    column: ColumnId,
    label: &str,
    cmp: (&str, &str),
    sup: (&str, &str),
) -> NumericCol {
    NumericCol {
        table,
        column,
        label: label.into(),
        cmp_phrases: Some((cmp.0.into(), cmp.1.into())),
        superlatives: Some((sup.0.into(), sup.1.into())),
    }
}

fn entity(
    schema: &DbSchema,
    table: &str,
    singular: &str,
    plural: &str,
    name_col: &str,
    name_label: &str,
) -> Entity {
    let (t, c) = cid(schema, table, name_col);
    Entity {
        table: t,
        singular: singular.into(),
        plural: plural.into(),
        name_col: c,
        name_label: name_label.into(),
    }
}

// ---------------------------------------------------------------------
// 1. student_pets — the paper's running example (Fig. 1).
// ---------------------------------------------------------------------
fn student_pets(rng: &mut SmallRng, n: usize) -> DomainSpec {
    let schema = SchemaBuilder::new("student_pets")
        .table(
            "student",
            &[
                ("stu_id", ColumnType::Number),
                ("name", ColumnType::Text),
                ("age", ColumnType::Number),
                ("gender", ColumnType::Text),
                ("home_country", ColumnType::Text),
                ("major", ColumnType::Text),
            ],
        )
        .primary_key("student", "stu_id")
        .table("has_pet", &[("stu_id", ColumnType::Number), ("pet_id", ColumnType::Number)])
        .table(
            "pet",
            &[
                ("pet_id", ColumnType::Number),
                ("pet_type", ColumnType::Text),
                ("weight", ColumnType::Number),
                ("pet_age", ColumnType::Number),
            ],
        )
        .primary_key("pet", "pet_id")
        .foreign_key("has_pet", "stu_id", "student", "stu_id")
        .foreign_key("has_pet", "pet_id", "pet", "pet_id")
        .build();

    let mut students = Vec::new();
    let countries: Vec<&str> = COUNTRIES.iter().take(8).map(|&(c, _)| c).collect();
    for i in 0..n {
        students.push(vec![
            Datum::Int(i as i64 + 1),
            person_name(rng, i).into(),
            Datum::Int(rng.gen_range(17..30)),
            (if rng.gen_bool(0.5) { "F" } else { "M" }).into(),
            (*pick(rng, &countries)).into(),
            MAJORS[i % MAJORS.len()].into(),
        ]);
    }
    let n_pets = n;
    let mut pets = Vec::new();
    for i in 0..n_pets {
        pets.push(vec![
            Datum::Int(i as i64 + 1),
            PET_TYPES[i % PET_TYPES.len()].into(),
            Datum::Float((rng.gen_range(5..250) as f64) / 10.0),
            Datum::Int(rng.gen_range(1..15)),
        ]);
    }
    let mut has_pet = Vec::new();
    for i in 0..n_pets {
        has_pet.push(vec![
            Datum::Int(rng.gen_range(1..=(n as i64))),
            Datum::Int(i as i64 + 1),
        ]);
    }

    let (t_student, c_country) = cid(&schema, "student", "home_country");
    let (_, c_major) = cid(&schema, "student", "major");
    let (_, c_gender) = cid(&schema, "student", "gender");
    let (_, c_age) = cid(&schema, "student", "age");
    let (_, c_sid) = cid(&schema, "student", "stu_id");
    let (t_pet, c_pet_type) = cid(&schema, "pet", "pet_type");
    let (_, c_weight) = cid(&schema, "pet", "weight");
    let (t_has_pet, c_hp_sid) = cid(&schema, "has_pet", "stu_id");

    DomainSpec {
        entities: vec![
            entity(&schema, "student", "student", "students", "name", "name"),
            entity(&schema, "pet", "pet", "pets", "pet_type", "type"),
        ],
        filters: vec![
            FilterCol {
                table: t_student,
                column: c_country,
                label: "home country".into(),
                phrase: Phrase::From,
                surfaces: country_surfaces(&countries),
            },
            FilterCol {
                table: t_student,
                column: c_major,
                label: "major".into(),
                phrase: Phrase::Whose("major".into()),
                surfaces: easy_surfaces(MAJORS),
            },
            FilterCol {
                table: t_student,
                column: c_gender,
                label: "gender".into(),
                phrase: Phrase::Adjective,
                surfaces: gender_surfaces(),
            },
            FilterCol {
                table: t_pet,
                column: c_pet_type,
                label: "type".into(),
                phrase: Phrase::Adjective,
                surfaces: easy_surfaces(PET_TYPES),
            },
        ],
        numerics: vec![
            num_full(t_student, c_age, "age", ("older than", "younger than"), ("oldest", "youngest")),
            num_full(t_pet, c_weight, "weight", ("heavier than", "lighter than"), ("heaviest", "lightest")),
        ],
        relations: vec![Relation {
            subject: 0,
            object: 1,
            verb: "own".into(),
            subject_key: c_sid,
            link_col: c_hp_sid,
            link_table: t_has_pet,
        }],
        rows: vec![students, has_pet, pets],
        schema,
    }
}

// ---------------------------------------------------------------------
// 2. flights — the paper's Fig. 4 / Fig. 8 examples (JFK).
// ---------------------------------------------------------------------
fn flights(rng: &mut SmallRng, n: usize) -> DomainSpec {
    let schema = SchemaBuilder::new("flights")
        .table(
            "airport",
            &[
                ("code", ColumnType::Text),
                ("airport_name", ColumnType::Text),
                ("city", ColumnType::Text),
            ],
        )
        .primary_key("airport", "code")
        .table(
            "flight",
            &[
                ("flight_id", ColumnType::Number),
                ("airline", ColumnType::Text),
                ("destination", ColumnType::Text),
                ("duration", ColumnType::Number),
                ("price", ColumnType::Number),
                ("departure_date", ColumnType::Time),
            ],
        )
        .primary_key("flight", "flight_id")
        .foreign_key("flight", "destination", "airport", "code")
        .build();

    let airports: Vec<Vec<Datum>> = AIRPORTS
        .iter()
        .map(|&(code, name, city)| vec![code.into(), name.into(), city.into()])
        .collect();
    let mut flights_rows = Vec::new();
    for i in 0..n * 2 {
        let (code, _, _) = *pick(rng, AIRPORTS);
        flights_rows.push(vec![
            Datum::Int(i as i64 + 100),
            (*pick(rng, AIRLINES)).into(),
            code.into(),
            Datum::Int(rng.gen_range(1..14)),
            Datum::Float(rng.gen_range(40..900) as f64),
            rand_date(rng).into(),
        ]);
    }

    let (t_flight, c_dest) = cid(&schema, "flight", "destination");
    let (_, c_airline) = cid(&schema, "flight", "airline");
    let (_, c_duration) = cid(&schema, "flight", "duration");
    let (_, c_price) = cid(&schema, "flight", "price");
    let (t_airport, c_city) = cid(&schema, "airport", "city");

    let mut dest_surfaces = Vec::new();
    for &(code, name, city) in AIRPORTS {
        dest_surfaces.push(SurfaceForm::easy(code));
        dest_surfaces.push(SurfaceForm::mapped(code, name, ValueDifficulty::Hard));
        dest_surfaces.push(SurfaceForm::mapped(code, city, ValueDifficulty::Hard));
    }

    DomainSpec {
        entities: vec![
            entity(&schema, "flight", "flight", "flights", "flight_id", "flight number"),
            entity(&schema, "airport", "airport", "airports", "airport_name", "name"),
        ],
        filters: vec![
            FilterCol {
                table: t_flight,
                column: c_dest,
                label: "destination".into(),
                phrase: Phrase::With("destination".into()),
                surfaces: dest_surfaces,
            },
            FilterCol {
                table: t_flight,
                column: c_airline,
                label: "airline".into(),
                phrase: Phrase::With("airline".into()),
                surfaces: easy_surfaces(AIRLINES),
            },
            FilterCol {
                table: t_airport,
                column: c_city,
                label: "city".into(),
                phrase: Phrase::From,
                surfaces: easy_surfaces(
                    &AIRPORTS.iter().map(|&(_, _, c)| c).collect::<Vec<_>>(),
                ),
            },
        ],
        numerics: vec![
            num_full(
                t_flight,
                c_duration,
                "duration",
                ("longer than", "shorter than"),
                ("longest", "shortest"),
            ),
            num_full(
                t_flight,
                c_price,
                "price",
                ("more expensive than", "cheaper than"),
                ("most expensive", "cheapest"),
            ),
        ],
        relations: vec![],
        rows: vec![airports, flights_rows],
        schema,
    }
}

// ---------------------------------------------------------------------
// 3. employees
// ---------------------------------------------------------------------
fn employees(rng: &mut SmallRng, n: usize) -> DomainSpec {
    let schema = SchemaBuilder::new("employees")
        .table(
            "department",
            &[
                ("dept_id", ColumnType::Number),
                ("dept_name", ColumnType::Text),
                ("budget", ColumnType::Number),
            ],
        )
        .primary_key("department", "dept_id")
        .table(
            "employee",
            &[
                ("emp_id", ColumnType::Number),
                ("name", ColumnType::Text),
                ("title", ColumnType::Text),
                ("salary", ColumnType::Number),
                ("emp_age", ColumnType::Number),
                ("gender", ColumnType::Text),
                ("hire_date", ColumnType::Time),
                ("dept_id", ColumnType::Number),
            ],
        )
        .primary_key("employee", "emp_id")
        .foreign_key("employee", "dept_id", "department", "dept_id")
        .build();

    let departments: Vec<Vec<Datum>> = DEPARTMENTS
        .iter()
        .enumerate()
        .map(|(i, d)| {
            vec![
                Datum::Int(i as i64 + 1),
                (*d).into(),
                Datum::Float(rng.gen_range(100..900) as f64 * 1000.0),
            ]
        })
        .collect();
    let mut emps = Vec::new();
    for i in 0..n {
        emps.push(vec![
            Datum::Int(i as i64 + 1),
            person_name(rng, i).into(),
            TITLES[i % TITLES.len()].0.into(),
            Datum::Int(rng.gen_range(30..160) * 1000),
            Datum::Int(rng.gen_range(21..65)),
            (if rng.gen_bool(0.5) { "F" } else { "M" }).into(),
            rand_date(rng).into(),
            Datum::Int(rng.gen_range(1..=(DEPARTMENTS.len() as i64))),
        ]);
    }

    let (t_emp, c_title) = cid(&schema, "employee", "title");
    let (_, c_gender) = cid(&schema, "employee", "gender");
    let (_, c_salary) = cid(&schema, "employee", "salary");
    let (_, c_age) = cid(&schema, "employee", "emp_age");
    let (t_dept, c_dname) = cid(&schema, "department", "dept_name");
    let (_, c_budget) = cid(&schema, "department", "budget");

    DomainSpec {
        entities: vec![
            entity(&schema, "employee", "employee", "employees", "name", "name"),
            entity(&schema, "department", "department", "departments", "dept_name", "name"),
        ],
        filters: vec![
            FilterCol {
                table: t_emp,
                column: c_title,
                label: "title".into(),
                phrase: Phrase::WhoAre,
                surfaces: inflected_surfaces(TITLES),
            },
            FilterCol {
                table: t_emp,
                column: c_gender,
                label: "gender".into(),
                phrase: Phrase::Adjective,
                surfaces: gender_surfaces(),
            },
            FilterCol {
                table: t_dept,
                column: c_dname,
                label: "department".into(),
                phrase: Phrase::From,
                surfaces: easy_surfaces(DEPARTMENTS),
            },
        ],
        numerics: vec![
            num_full(
                t_emp,
                c_salary,
                "salary",
                ("earning more than", "earning less than"),
                ("highest paid", "lowest paid"),
            ),
            num_full(t_emp, c_age, "age", ("older than", "younger than"), ("oldest", "youngest")),
            num(t_dept, c_budget, "budget"),
        ],
        relations: vec![],
        rows: vec![departments, emps],
        schema,
    }
}

// ---------------------------------------------------------------------
// 4. world — countries / cities / languages (the paper's Extra-hard
//    "official languages" example).
// ---------------------------------------------------------------------
fn world(rng: &mut SmallRng, n: usize) -> DomainSpec {
    let schema = SchemaBuilder::new("world")
        .table(
            "country",
            &[
                ("country_name", ColumnType::Text),
                ("continent", ColumnType::Text),
                ("population", ColumnType::Number),
                ("surface_area", ColumnType::Number),
            ],
        )
        .primary_key("country", "country_name")
        .table(
            "city",
            &[
                ("city_id", ColumnType::Number),
                ("city_name", ColumnType::Text),
                ("country_name", ColumnType::Text),
                ("city_population", ColumnType::Number),
            ],
        )
        .primary_key("city", "city_id")
        .foreign_key("city", "country_name", "country", "country_name")
        .table(
            "language",
            &[
                ("lang_id", ColumnType::Number),
                ("country_name", ColumnType::Text),
                ("language", ColumnType::Text),
                ("is_official", ColumnType::Boolean),
                ("percentage", ColumnType::Number),
            ],
        )
        .primary_key("language", "lang_id")
        .foreign_key("language", "country_name", "country", "country_name")
        .build();

    let countries: Vec<&str> = COUNTRIES.iter().map(|&(c, _)| c).collect();
    let country_rows: Vec<Vec<Datum>> = countries
        .iter()
        .map(|c| {
            vec![
                (*c).into(),
                (if rng.gen_bool(0.8) { "Europe" } else { "Other" }).into(),
                Datum::Int(rng.gen_range(1..90) * 1_000_000),
                Datum::Int(rng.gen_range(40..700) * 1000),
            ]
        })
        .collect();
    let mut city_rows = Vec::new();
    for i in 0..n {
        city_rows.push(vec![
            Datum::Int(i as i64 + 1),
            CITIES[i % CITIES.len()].into(),
            (*pick(rng, &countries)).into(),
            Datum::Int(rng.gen_range(50..4000) * 1000),
        ]);
    }
    let mut lang_rows = Vec::new();
    for (i, c) in countries.iter().enumerate() {
        for (j, l) in LANGUAGES.iter().take(3).enumerate() {
            lang_rows.push(vec![
                Datum::Int((i * 3 + j) as i64 + 1),
                (*c).into(),
                (*l).into(),
                Datum::Int(i64::from(j == 0)),
                Datum::Float(rng.gen_range(5..95) as f64),
            ]);
        }
    }

    let (t_country, c_cont) = cid(&schema, "country", "continent");
    let (_, c_pop) = cid(&schema, "country", "population");
    let (_, c_area) = cid(&schema, "country", "surface_area");
    let (t_city, c_cpop) = cid(&schema, "city", "city_population");
    let (_, c_city_country) = cid(&schema, "city", "country_name");
    let (t_lang, c_lname) = cid(&schema, "language", "language");
    let (_, c_official) = cid(&schema, "language", "is_official");

    DomainSpec {
        entities: vec![
            entity(&schema, "country", "country", "countries", "country_name", "name"),
            entity(&schema, "city", "city", "cities", "city_name", "name"),
            entity(&schema, "language", "language", "languages", "language", "name"),
        ],
        filters: vec![
            FilterCol {
                table: t_country,
                column: c_cont,
                label: "continent".into(),
                phrase: Phrase::From,
                surfaces: easy_surfaces(&["Europe", "Other"]),
            },
            FilterCol {
                table: t_city,
                column: c_city_country,
                label: "country".into(),
                phrase: Phrase::From,
                surfaces: country_surfaces(&countries),
            },
            FilterCol {
                table: t_lang,
                column: c_lname,
                label: "language".into(),
                phrase: Phrase::Whose("language".into()),
                surfaces: easy_surfaces(LANGUAGES),
            },
            FilterCol {
                table: t_lang,
                column: c_official,
                label: "official".into(),
                phrase: Phrase::ThatAre,
                surfaces: vec![SurfaceForm::mapped("1", "official", ValueDifficulty::ExtraHard)],
            },
        ],
        numerics: vec![
            num_full(
                t_country,
                c_pop,
                "population",
                ("with a population larger than", "with a population smaller than"),
                ("most populous", "least populous"),
            ),
            num(t_country, c_area, "surface area"),
            num(t_city, c_cpop, "population"),
        ],
        relations: vec![],
        rows: vec![country_rows, city_rows, lang_rows],
        schema,
    }
}

// ---------------------------------------------------------------------
// 5. orchestra
// ---------------------------------------------------------------------
fn orchestra(rng: &mut SmallRng, n: usize) -> DomainSpec {
    let schema = SchemaBuilder::new("orchestra")
        .table(
            "conductor",
            &[
                ("conductor_id", ColumnType::Number),
                ("name", ColumnType::Text),
                ("nationality", ColumnType::Text),
                ("year_started", ColumnType::Number),
            ],
        )
        .primary_key("conductor", "conductor_id")
        .table(
            "orchestra",
            &[
                ("orchestra_id", ColumnType::Number),
                ("orchestra_name", ColumnType::Text),
                ("conductor_id", ColumnType::Number),
                ("founded_year", ColumnType::Number),
                ("record_label", ColumnType::Text),
            ],
        )
        .primary_key("orchestra", "orchestra_id")
        .foreign_key("orchestra", "conductor_id", "conductor", "conductor_id")
        .build();

    let n_cond = n.min(FIRST_NAMES.len());
    let mut conductors = Vec::new();
    for i in 0..n_cond {
        conductors.push(vec![
            Datum::Int(i as i64 + 1),
            person_name(rng, i).into(),
            (*pick(rng, NATIONALITIES)).into(),
            Datum::Int(rng.gen_range(1970..2015)),
        ]);
    }
    let mut orchestras = Vec::new();
    for i in 0..n {
        orchestras.push(vec![
            Datum::Int(i as i64 + 1),
            format!("{} Philharmonic", CITIES[i % CITIES.len()]).into(),
            Datum::Int(rng.gen_range(1..=(n_cond as i64))),
            Datum::Int(rng.gen_range(1850..2000)),
            (*pick(rng, RECORD_LABELS)).into(),
        ]);
    }

    let (t_cond, c_nat) = cid(&schema, "conductor", "nationality");
    let (_, c_started) = cid(&schema, "conductor", "year_started");
    let (t_orch, c_label) = cid(&schema, "orchestra", "record_label");
    let (_, c_founded) = cid(&schema, "orchestra", "founded_year");

    DomainSpec {
        entities: vec![
            entity(&schema, "conductor", "conductor", "conductors", "name", "name"),
            entity(&schema, "orchestra", "orchestra", "orchestras", "orchestra_name", "name"),
        ],
        filters: vec![
            FilterCol {
                table: t_cond,
                column: c_nat,
                label: "nationality".into(),
                phrase: Phrase::Adjective,
                surfaces: easy_surfaces(NATIONALITIES),
            },
            FilterCol {
                table: t_orch,
                column: c_label,
                label: "record label".into(),
                phrase: Phrase::With("record label".into()),
                surfaces: easy_surfaces(RECORD_LABELS),
            },
        ],
        numerics: vec![
            num(t_cond, c_started, "year started"),
            num_full(
                t_orch,
                c_founded,
                "founding year",
                ("founded after", "founded before"),
                ("most recently founded", "oldest"),
            ),
        ],
        relations: vec![],
        rows: vec![conductors, orchestras],
        schema,
    }
}

// ---------------------------------------------------------------------
// 6. tv_channels
// ---------------------------------------------------------------------
fn tv_channels(rng: &mut SmallRng, n: usize) -> DomainSpec {
    let schema = SchemaBuilder::new("tv_channels")
        .table(
            "channel",
            &[
                ("channel_id", ColumnType::Number),
                ("channel_name", ColumnType::Text),
                ("owner", ColumnType::Text),
                ("share_percent", ColumnType::Number),
            ],
        )
        .primary_key("channel", "channel_id")
        .table(
            "program",
            &[
                ("program_id", ColumnType::Number),
                ("program_name", ColumnType::Text),
                ("channel_id", ColumnType::Number),
                ("origin_country", ColumnType::Text),
                ("launch_year", ColumnType::Number),
                ("genre", ColumnType::Text),
            ],
        )
        .primary_key("program", "program_id")
        .foreign_key("program", "channel_id", "channel", "channel_id")
        .build();

    let n_chan = 8;
    let mut channels = Vec::new();
    for i in 0..n_chan {
        channels.push(vec![
            Datum::Int(i as i64 + 1),
            format!("Channel {}", i + 1).into(),
            OWNERS[i % OWNERS.len()].into(),
            Datum::Float(rng.gen_range(10..300) as f64 / 10.0),
        ]);
    }
    let countries: Vec<&str> = COUNTRIES.iter().take(8).map(|&(c, _)| c).collect();
    let mut programs = Vec::new();
    for i in 0..n {
        programs.push(vec![
            Datum::Int(i as i64 + 1),
            title_name(rng).into(),
            Datum::Int(rng.gen_range(1..=(n_chan as i64))),
            (*pick(rng, &countries)).into(),
            Datum::Int(rng.gen_range(1990..2021)),
            (*pick(rng, GENRES)).into(),
        ]);
    }

    let (t_chan, c_owner) = cid(&schema, "channel", "owner");
    let (_, c_share) = cid(&schema, "channel", "share_percent");
    let (t_prog, c_origin) = cid(&schema, "program", "origin_country");
    let (_, c_genre) = cid(&schema, "program", "genre");
    let (_, c_launch) = cid(&schema, "program", "launch_year");

    DomainSpec {
        entities: vec![
            entity(&schema, "channel", "channel", "channels", "channel_name", "name"),
            entity(&schema, "program", "program", "programs", "program_name", "name"),
        ],
        filters: vec![
            FilterCol {
                table: t_chan,
                column: c_owner,
                label: "owner".into(),
                phrase: Phrase::With("owner".into()),
                surfaces: easy_surfaces(OWNERS),
            },
            FilterCol {
                table: t_prog,
                column: c_origin,
                label: "origin country".into(),
                phrase: Phrase::From,
                surfaces: country_surfaces(&countries),
            },
            FilterCol {
                table: t_prog,
                column: c_genre,
                label: "genre".into(),
                phrase: Phrase::With("genre".into()),
                surfaces: easy_surfaces(GENRES),
            },
        ],
        numerics: vec![
            num(t_chan, c_share, "market share"),
            num_full(
                t_prog,
                c_launch,
                "launch year",
                ("launched after", "launched before"),
                ("most recently launched", "earliest launched"),
            ),
        ],
        relations: vec![],
        rows: vec![channels, programs],
        schema,
    }
}

// ---------------------------------------------------------------------
// 7. shop_orders
// ---------------------------------------------------------------------
fn shop_orders(rng: &mut SmallRng, n: usize) -> DomainSpec {
    let schema = SchemaBuilder::new("shop_orders")
        .table(
            "customer",
            &[
                ("customer_id", ColumnType::Number),
                ("name", ColumnType::Text),
                ("city", ColumnType::Text),
                ("membership", ColumnType::Text),
            ],
        )
        .primary_key("customer", "customer_id")
        .table(
            "orders",
            &[
                ("order_id", ColumnType::Number),
                ("customer_id", ColumnType::Number),
                ("order_date", ColumnType::Time),
                ("total_amount", ColumnType::Number),
                ("status", ColumnType::Text),
            ],
        )
        .primary_key("orders", "order_id")
        .foreign_key("orders", "customer_id", "customer", "customer_id")
        .build();

    let mut customers = Vec::new();
    for i in 0..n {
        customers.push(vec![
            Datum::Int(i as i64 + 1),
            person_name(rng, i).into(),
            CITIES[i % CITIES.len()].into(),
            MEMBERSHIP[i % MEMBERSHIP.len()].0.into(),
        ]);
    }
    let mut orders = Vec::new();
    for i in 0..n * 2 {
        orders.push(vec![
            Datum::Int(i as i64 + 1),
            Datum::Int(rng.gen_range(1..=(n as i64))),
            rand_date(rng).into(),
            Datum::Float(rng.gen_range(10..5000) as f64 / 10.0),
            ORDER_STATUS[i % ORDER_STATUS.len()].0.into(),
        ]);
    }

    let (t_cust, c_city) = cid(&schema, "customer", "city");
    let (_, c_member) = cid(&schema, "customer", "membership");
    let (_, c_cust_id) = cid(&schema, "customer", "customer_id");
    let (t_ord, c_status) = cid(&schema, "orders", "status");
    let (_, c_amount) = cid(&schema, "orders", "total_amount");
    let (t_ord2, c_ord_cust) = cid(&schema, "orders", "customer_id");

    DomainSpec {
        entities: vec![
            entity(&schema, "customer", "customer", "customers", "name", "name"),
            entity(&schema, "orders", "order", "orders", "order_id", "id"),
        ],
        filters: vec![
            FilterCol {
                table: t_cust,
                column: c_city,
                label: "city".into(),
                phrase: Phrase::From,
                surfaces: easy_surfaces(CITIES),
            },
            FilterCol {
                table: t_cust,
                column: c_member,
                label: "membership".into(),
                phrase: Phrase::With("membership level".into()),
                surfaces: inflected_surfaces(MEMBERSHIP),
            },
            FilterCol {
                table: t_ord,
                column: c_status,
                label: "status".into(),
                phrase: Phrase::ThatAre,
                surfaces: inflected_surfaces(ORDER_STATUS),
            },
        ],
        numerics: vec![num_full(
            t_ord,
            c_amount,
            "total amount",
            ("worth more than", "worth less than"),
            ("largest", "smallest"),
        )],
        relations: vec![Relation {
            subject: 0,
            object: 1,
            verb: "place".into(),
            subject_key: c_cust_id,
            link_col: c_ord_cust,
            link_table: t_ord2,
        }],
        rows: vec![customers, orders],
        schema,
    }
}

// ---------------------------------------------------------------------
// 8. sports_league — source of the paper's "left handed players" example.
// ---------------------------------------------------------------------
fn sports_league(rng: &mut SmallRng, n: usize) -> DomainSpec {
    let schema = SchemaBuilder::new("sports_league")
        .table(
            "team",
            &[
                ("team_id", ColumnType::Number),
                ("team_name", ColumnType::Text),
                ("city", ColumnType::Text),
                ("founded", ColumnType::Number),
            ],
        )
        .primary_key("team", "team_id")
        .table(
            "player",
            &[
                ("player_id", ColumnType::Number),
                ("name", ColumnType::Text),
                ("team_id", ColumnType::Number),
                ("player_age", ColumnType::Number),
                ("position", ColumnType::Text),
                ("goals", ColumnType::Number),
                ("hand", ColumnType::Text),
            ],
        )
        .primary_key("player", "player_id")
        .foreign_key("player", "team_id", "team", "team_id")
        .build();

    let n_teams = TEAM_NAMES.len();
    let mut teams = Vec::new();
    for (i, t) in TEAM_NAMES.iter().enumerate() {
        teams.push(vec![
            Datum::Int(i as i64 + 1),
            format!("{} {}", CITIES[i % CITIES.len()], t).into(),
            CITIES[i % CITIES.len()].into(),
            Datum::Int(rng.gen_range(1900..2000)),
        ]);
    }
    let mut players = Vec::new();
    for i in 0..n * 2 {
        players.push(vec![
            Datum::Int(i as i64 + 1),
            person_name(rng, i).into(),
            Datum::Int(rng.gen_range(1..=(n_teams as i64))),
            Datum::Int(rng.gen_range(18..40)),
            PLAYER_POSITIONS[i % PLAYER_POSITIONS.len()].0.into(),
            Datum::Int(rng.gen_range(0..40)),
            (if rng.gen_bool(0.3) { "L" } else { "R" }).into(),
        ]);
    }

    let (t_team, c_tcity) = cid(&schema, "team", "city");
    let (_, c_founded) = cid(&schema, "team", "founded");
    let (t_player, c_pos) = cid(&schema, "player", "position");
    let (_, c_hand) = cid(&schema, "player", "hand");
    let (_, c_page) = cid(&schema, "player", "player_age");
    let (_, c_goals) = cid(&schema, "player", "goals");

    DomainSpec {
        entities: vec![
            entity(&schema, "team", "team", "teams", "team_name", "name"),
            entity(&schema, "player", "player", "players", "name", "name"),
        ],
        filters: vec![
            FilterCol {
                table: t_team,
                column: c_tcity,
                label: "city".into(),
                phrase: Phrase::From,
                surfaces: easy_surfaces(CITIES),
            },
            FilterCol {
                table: t_player,
                column: c_pos,
                label: "position".into(),
                phrase: Phrase::WhoAre,
                surfaces: inflected_surfaces(PLAYER_POSITIONS),
            },
            FilterCol {
                table: t_player,
                column: c_hand,
                label: "hand".into(),
                phrase: Phrase::Adjective,
                surfaces: vec![
                    SurfaceForm::mapped("L", "left handed", ValueDifficulty::ExtraHard),
                    SurfaceForm::mapped("R", "right handed", ValueDifficulty::ExtraHard),
                ],
            },
        ],
        numerics: vec![
            num_full(t_player, c_page, "age", ("older than", "younger than"), ("oldest", "youngest")),
            num_full(
                t_player,
                c_goals,
                "goals",
                ("with more than", "with fewer than"),
                ("top scoring", "lowest scoring"),
            ),
            num(t_team, c_founded, "founding year"),
        ],
        relations: vec![],
        rows: vec![teams, players],
        schema,
    }
}

// ---------------------------------------------------------------------
// 9. music_albums
// ---------------------------------------------------------------------
fn music_albums(rng: &mut SmallRng, n: usize) -> DomainSpec {
    let schema = SchemaBuilder::new("music_albums")
        .table(
            "artist",
            &[
                ("artist_id", ColumnType::Number),
                ("name", ColumnType::Text),
                ("country", ColumnType::Text),
                ("genre", ColumnType::Text),
            ],
        )
        .primary_key("artist", "artist_id")
        .table(
            "album",
            &[
                ("album_id", ColumnType::Number),
                ("title", ColumnType::Text),
                ("artist_id", ColumnType::Number),
                ("release_year", ColumnType::Number),
                ("sales", ColumnType::Number),
            ],
        )
        .primary_key("album", "album_id")
        .foreign_key("album", "artist_id", "artist", "artist_id")
        .build();

    let countries: Vec<&str> = COUNTRIES.iter().take(8).map(|&(c, _)| c).collect();
    let n_artists = n.min(FIRST_NAMES.len());
    let mut artists = Vec::new();
    for i in 0..n_artists {
        artists.push(vec![
            Datum::Int(i as i64 + 1),
            person_name(rng, i).into(),
            (*pick(rng, &countries)).into(),
            (*pick(rng, GENRES)).into(),
        ]);
    }
    let mut albums = Vec::new();
    for i in 0..n * 2 {
        albums.push(vec![
            Datum::Int(i as i64 + 1),
            title_name(rng).into(),
            Datum::Int(rng.gen_range(1..=(n_artists as i64))),
            Datum::Int(rng.gen_range(1970..2022)),
            Datum::Int(rng.gen_range(10..5000) * 1000),
        ]);
    }

    let (t_artist, c_country) = cid(&schema, "artist", "country");
    let (_, c_genre) = cid(&schema, "artist", "genre");
    let (_, c_artist_id) = cid(&schema, "artist", "artist_id");
    let (t_album, c_year) = cid(&schema, "album", "release_year");
    let (_, c_sales) = cid(&schema, "album", "sales");
    let (_, c_album_artist) = cid(&schema, "album", "artist_id");

    DomainSpec {
        entities: vec![
            entity(&schema, "artist", "artist", "artists", "name", "name"),
            entity(&schema, "album", "album", "albums", "title", "title"),
        ],
        filters: vec![
            FilterCol {
                table: t_artist,
                column: c_country,
                label: "country".into(),
                phrase: Phrase::From,
                surfaces: country_surfaces(&countries),
            },
            FilterCol {
                table: t_artist,
                column: c_genre,
                label: "genre".into(),
                phrase: Phrase::With("genre".into()),
                surfaces: easy_surfaces(GENRES),
            },
        ],
        numerics: vec![
            num_full(
                t_album,
                c_year,
                "release year",
                ("released after", "released before"),
                ("most recent", "earliest"),
            ),
            num_full(
                t_album,
                c_sales,
                "sales",
                ("selling more than", "selling fewer than"),
                ("best selling", "worst selling"),
            ),
        ],
        relations: vec![Relation {
            subject: 0,
            object: 1,
            verb: "release".into(),
            subject_key: c_artist_id,
            link_col: c_album_artist,
            link_table: t_album,
        }],
        rows: vec![artists, albums],
        schema,
    }
}

// ---------------------------------------------------------------------
// 10. university
// ---------------------------------------------------------------------
fn university(rng: &mut SmallRng, n: usize) -> DomainSpec {
    let schema = SchemaBuilder::new("university")
        .table(
            "faculty",
            &[
                ("faculty_id", ColumnType::Number),
                ("faculty_name", ColumnType::Text),
                ("school", ColumnType::Text),
            ],
        )
        .primary_key("faculty", "faculty_id")
        .table(
            "professor",
            &[
                ("prof_id", ColumnType::Number),
                ("name", ColumnType::Text),
                ("faculty_id", ColumnType::Number),
                ("salary", ColumnType::Number),
                ("prof_age", ColumnType::Number),
                ("gender", ColumnType::Text),
                ("rank", ColumnType::Text),
            ],
        )
        .primary_key("professor", "prof_id")
        .foreign_key("professor", "faculty_id", "faculty", "faculty_id")
        .build();

    let mut faculties = Vec::new();
    for (i, d) in DEPARTMENTS.iter().enumerate() {
        faculties.push(vec![
            Datum::Int(i as i64 + 1),
            (*d).into(),
            (if i % 2 == 0 { "Science" } else { "Humanities" }).into(),
        ]);
    }
    let mut profs = Vec::new();
    for i in 0..n {
        profs.push(vec![
            Datum::Int(i as i64 + 1),
            person_name(rng, i).into(),
            Datum::Int(rng.gen_range(1..=(DEPARTMENTS.len() as i64))),
            Datum::Int(rng.gen_range(60..200) * 1000),
            Datum::Int(rng.gen_range(28..70)),
            (if rng.gen_bool(0.5) { "F" } else { "M" }).into(),
            TITLES[i % 3].0.into(),
        ]);
    }

    let (t_fac, c_school) = cid(&schema, "faculty", "school");
    let (t_prof, c_rank) = cid(&schema, "professor", "rank");
    let (_, c_gender) = cid(&schema, "professor", "gender");
    let (_, c_salary) = cid(&schema, "professor", "salary");
    let (_, c_age) = cid(&schema, "professor", "prof_age");

    DomainSpec {
        entities: vec![
            entity(&schema, "professor", "professor", "professors", "name", "name"),
            entity(&schema, "faculty", "faculty", "faculties", "faculty_name", "name"),
        ],
        filters: vec![
            FilterCol {
                table: t_fac,
                column: c_school,
                label: "school".into(),
                phrase: Phrase::From,
                surfaces: easy_surfaces(&["Science", "Humanities"]),
            },
            FilterCol {
                table: t_prof,
                column: c_rank,
                label: "rank".into(),
                phrase: Phrase::WhoAre,
                surfaces: inflected_surfaces(&TITLES[..3]),
            },
            FilterCol {
                table: t_prof,
                column: c_gender,
                label: "gender".into(),
                phrase: Phrase::Adjective,
                surfaces: gender_surfaces(),
            },
        ],
        numerics: vec![
            num_full(
                t_prof,
                c_salary,
                "salary",
                ("earning more than", "earning less than"),
                ("highest paid", "lowest paid"),
            ),
            num_full(t_prof, c_age, "age", ("older than", "younger than"), ("oldest", "youngest")),
        ],
        relations: vec![],
        rows: vec![faculties, profs],
        schema,
    }
}

// ---------------------------------------------------------------------
// 11. concerts (dev)
// ---------------------------------------------------------------------
fn concerts(rng: &mut SmallRng, n: usize) -> DomainSpec {
    let schema = SchemaBuilder::new("concerts")
        .table(
            "stadium",
            &[
                ("stadium_id", ColumnType::Number),
                ("stadium_name", ColumnType::Text),
                ("capacity", ColumnType::Number),
                ("city", ColumnType::Text),
            ],
        )
        .primary_key("stadium", "stadium_id")
        .table(
            "singer",
            &[
                ("singer_id", ColumnType::Number),
                ("name", ColumnType::Text),
                ("country", ColumnType::Text),
                ("singer_age", ColumnType::Number),
                ("gender", ColumnType::Text),
            ],
        )
        .primary_key("singer", "singer_id")
        .table(
            "concert",
            &[
                ("concert_id", ColumnType::Number),
                ("concert_name", ColumnType::Text),
                ("stadium_id", ColumnType::Number),
                ("concert_year", ColumnType::Number),
            ],
        )
        .primary_key("concert", "concert_id")
        .foreign_key("concert", "stadium_id", "stadium", "stadium_id")
        .table(
            "singer_in_concert",
            &[("concert_id", ColumnType::Number), ("singer_id", ColumnType::Number)],
        )
        .foreign_key("singer_in_concert", "concert_id", "concert", "concert_id")
        .foreign_key("singer_in_concert", "singer_id", "singer", "singer_id")
        .build();

    let n_stadium = CITIES.len().min(10);
    let mut stadiums = Vec::new();
    for (i, city) in CITIES.iter().take(n_stadium).enumerate() {
        stadiums.push(vec![
            Datum::Int(i as i64 + 1),
            format!("{city} Arena").into(),
            Datum::Int(rng.gen_range(5..80) * 1000),
            (*city).into(),
        ]);
    }
    let countries: Vec<&str> = COUNTRIES.iter().take(8).map(|&(c, _)| c).collect();
    let n_singers = n.min(FIRST_NAMES.len());
    let mut singers = Vec::new();
    for i in 0..n_singers {
        singers.push(vec![
            Datum::Int(i as i64 + 1),
            person_name(rng, i).into(),
            (*pick(rng, &countries)).into(),
            Datum::Int(rng.gen_range(18..60)),
            (if rng.gen_bool(0.5) { "F" } else { "M" }).into(),
        ]);
    }
    let mut concerts_rows = Vec::new();
    for i in 0..n {
        concerts_rows.push(vec![
            Datum::Int(i as i64 + 1),
            format!("{} Festival", pick(rng, TITLE_WORDS)).into(),
            Datum::Int(rng.gen_range(1..=(n_stadium as i64))),
            Datum::Int(rng.gen_range(2010..2022)),
        ]);
    }
    let mut sic = Vec::new();
    for i in 0..n {
        sic.push(vec![
            Datum::Int((i as i64 % n as i64) + 1),
            Datum::Int(rng.gen_range(1..=(n_singers as i64))),
        ]);
    }

    let (t_stadium, c_scity) = cid(&schema, "stadium", "city");
    let (_, c_capacity) = cid(&schema, "stadium", "capacity");
    let (t_singer, c_country) = cid(&schema, "singer", "country");
    let (_, c_sgender) = cid(&schema, "singer", "gender");
    let (_, c_sage) = cid(&schema, "singer", "singer_age");
    let (_, c_singer_id) = cid(&schema, "singer", "singer_id");
    let (t_concert, c_cyear) = cid(&schema, "concert", "concert_year");
    let (t_sic, c_sic_singer) = cid(&schema, "singer_in_concert", "singer_id");

    DomainSpec {
        entities: vec![
            entity(&schema, "singer", "singer", "singers", "name", "name"),
            entity(&schema, "concert", "concert", "concerts", "concert_name", "name"),
            entity(&schema, "stadium", "stadium", "stadiums", "stadium_name", "name"),
        ],
        filters: vec![
            FilterCol {
                table: t_singer,
                column: c_country,
                label: "country".into(),
                phrase: Phrase::From,
                surfaces: country_surfaces(&countries),
            },
            FilterCol {
                table: t_singer,
                column: c_sgender,
                label: "gender".into(),
                phrase: Phrase::Adjective,
                surfaces: gender_surfaces(),
            },
            FilterCol {
                table: t_stadium,
                column: c_scity,
                label: "city".into(),
                phrase: Phrase::From,
                surfaces: easy_surfaces(&CITIES[..n_stadium]),
            },
        ],
        numerics: vec![
            num_full(t_singer, c_sage, "age", ("older than", "younger than"), ("oldest", "youngest")),
            num_full(
                t_stadium,
                c_capacity,
                "capacity",
                ("with capacity above", "with capacity below"),
                ("largest", "smallest"),
            ),
            num(t_concert, c_cyear, "year"),
        ],
        relations: vec![Relation {
            subject: 0,
            object: 1,
            verb: "perform in".into(),
            subject_key: c_singer_id,
            link_col: c_sic_singer,
            link_table: t_sic,
        }],
        rows: vec![stadiums, singers, concerts_rows, sic],
        schema,
    }
}

// ---------------------------------------------------------------------
// 12. car_dealers (dev)
// ---------------------------------------------------------------------
fn car_dealers(rng: &mut SmallRng, n: usize) -> DomainSpec {
    let schema = SchemaBuilder::new("car_dealers")
        .table(
            "maker",
            &[
                ("maker_id", ColumnType::Number),
                ("maker_name", ColumnType::Text),
                ("country", ColumnType::Text),
            ],
        )
        .primary_key("maker", "maker_id")
        .table(
            "model",
            &[
                ("model_id", ColumnType::Number),
                ("model_name", ColumnType::Text),
                ("maker_id", ColumnType::Number),
                ("model_year", ColumnType::Number),
                ("horsepower", ColumnType::Number),
                ("price", ColumnType::Number),
            ],
        )
        .primary_key("model", "model_id")
        .foreign_key("model", "maker_id", "maker", "maker_id")
        .build();

    let countries: Vec<&str> = COUNTRIES.iter().take(8).map(|&(c, _)| c).collect();
    let mut makers = Vec::new();
    for (i, m) in CAR_MAKERS.iter().enumerate() {
        makers.push(vec![
            Datum::Int(i as i64 + 1),
            (*m).into(),
            (*pick(rng, &countries)).into(),
        ]);
    }
    let mut models = Vec::new();
    for i in 0..n * 2 {
        models.push(vec![
            Datum::Int(i as i64 + 1),
            CAR_MODELS[i % CAR_MODELS.len()].into(),
            Datum::Int(rng.gen_range(1..=(CAR_MAKERS.len() as i64))),
            Datum::Int(rng.gen_range(1995..2022)),
            Datum::Int(rng.gen_range(60..500)),
            Datum::Int(rng.gen_range(8..120) * 1000),
        ]);
    }

    let (t_maker, c_country) = cid(&schema, "maker", "country");
    let (_, c_maker_name) = cid(&schema, "maker", "maker_name");
    let (t_model, c_hp) = cid(&schema, "model", "horsepower");
    let (_, c_price) = cid(&schema, "model", "price");
    let (_, c_myear) = cid(&schema, "model", "model_year");

    DomainSpec {
        entities: vec![
            entity(&schema, "maker", "maker", "makers", "maker_name", "name"),
            entity(&schema, "model", "model", "models", "model_name", "name"),
        ],
        filters: vec![
            FilterCol {
                table: t_maker,
                column: c_country,
                label: "country".into(),
                phrase: Phrase::From,
                surfaces: country_surfaces(&countries),
            },
            FilterCol {
                table: t_maker,
                column: c_maker_name,
                label: "maker".into(),
                phrase: Phrase::With("maker".into()),
                surfaces: easy_surfaces(CAR_MAKERS),
            },
        ],
        numerics: vec![
            num_full(
                t_model,
                c_hp,
                "horsepower",
                ("with more than", "with less than"),
                ("most powerful", "least powerful"),
            ),
            num_full(
                t_model,
                c_price,
                "price",
                ("more expensive than", "cheaper than"),
                ("most expensive", "cheapest"),
            ),
            num(t_model, c_myear, "year"),
        ],
        relations: vec![],
        rows: vec![makers, models],
        schema,
    }
}

// ---------------------------------------------------------------------
// 13. library (dev)
// ---------------------------------------------------------------------
fn library(rng: &mut SmallRng, n: usize) -> DomainSpec {
    let schema = SchemaBuilder::new("library")
        .table(
            "author",
            &[
                ("author_id", ColumnType::Number),
                ("name", ColumnType::Text),
                ("country", ColumnType::Text),
            ],
        )
        .primary_key("author", "author_id")
        .table(
            "book",
            &[
                ("book_id", ColumnType::Number),
                ("title", ColumnType::Text),
                ("author_id", ColumnType::Number),
                ("publish_year", ColumnType::Number),
                ("pages", ColumnType::Number),
                ("genre", ColumnType::Text),
            ],
        )
        .primary_key("book", "book_id")
        .foreign_key("book", "author_id", "author", "author_id")
        .build();

    let countries: Vec<&str> = COUNTRIES.iter().take(8).map(|&(c, _)| c).collect();
    let n_authors = n.min(FIRST_NAMES.len());
    let mut authors = Vec::new();
    for i in 0..n_authors {
        authors.push(vec![
            Datum::Int(i as i64 + 1),
            person_name(rng, i).into(),
            (*pick(rng, &countries)).into(),
        ]);
    }
    let mut books = Vec::new();
    for i in 0..n * 2 {
        books.push(vec![
            Datum::Int(i as i64 + 1),
            title_name(rng).into(),
            Datum::Int(rng.gen_range(1..=(n_authors as i64))),
            Datum::Int(rng.gen_range(1950..2022)),
            Datum::Int(rng.gen_range(90..900)),
            (*pick(rng, GENRES)).into(),
        ]);
    }

    let (t_author, c_country) = cid(&schema, "author", "country");
    let (_, c_author_id) = cid(&schema, "author", "author_id");
    let (t_book, c_genre) = cid(&schema, "book", "genre");
    let (_, c_pages) = cid(&schema, "book", "pages");
    let (_, c_pyear) = cid(&schema, "book", "publish_year");
    let (_, c_book_author) = cid(&schema, "book", "author_id");

    DomainSpec {
        entities: vec![
            entity(&schema, "author", "author", "authors", "name", "name"),
            entity(&schema, "book", "book", "books", "title", "title"),
        ],
        filters: vec![
            FilterCol {
                table: t_author,
                column: c_country,
                label: "country".into(),
                phrase: Phrase::From,
                surfaces: country_surfaces(&countries),
            },
            FilterCol {
                table: t_book,
                column: c_genre,
                label: "genre".into(),
                phrase: Phrase::With("genre".into()),
                surfaces: easy_surfaces(GENRES),
            },
        ],
        numerics: vec![
            num_full(
                t_book,
                c_pages,
                "pages",
                ("with more than", "with fewer than"),
                ("longest", "shortest"),
            ),
            num_full(
                t_book,
                c_pyear,
                "publication year",
                ("published after", "published before"),
                ("most recent", "earliest"),
            ),
        ],
        relations: vec![Relation {
            subject: 0,
            object: 1,
            verb: "write".into(),
            subject_key: c_author_id,
            link_col: c_book_author,
            link_table: t_book,
        }],
        rows: vec![authors, books],
        schema,
    }
}

// ---------------------------------------------------------------------
// 14. hospital (dev)
// ---------------------------------------------------------------------
fn hospital(rng: &mut SmallRng, n: usize) -> DomainSpec {
    let schema = SchemaBuilder::new("hospital")
        .table(
            "physician",
            &[
                ("physician_id", ColumnType::Number),
                ("name", ColumnType::Text),
                ("position", ColumnType::Text),
                ("salary", ColumnType::Number),
            ],
        )
        .primary_key("physician", "physician_id")
        .table(
            "patient",
            &[
                ("patient_id", ColumnType::Number),
                ("name", ColumnType::Text),
                ("patient_age", ColumnType::Number),
                ("gender", ColumnType::Text),
                ("diagnosis", ColumnType::Text),
                ("physician_id", ColumnType::Number),
            ],
        )
        .primary_key("patient", "patient_id")
        .foreign_key("patient", "physician_id", "physician", "physician_id")
        .build();

    let n_phys = n.min(FIRST_NAMES.len());
    let mut physicians = Vec::new();
    for i in 0..n_phys {
        physicians.push(vec![
            Datum::Int(i as i64 + 1),
            person_name(rng, i).into(),
            POSITIONS[i % POSITIONS.len()].0.into(),
            Datum::Int(rng.gen_range(90..350) * 1000),
        ]);
    }
    let mut patients = Vec::new();
    for i in 0..n * 2 {
        patients.push(vec![
            Datum::Int(i as i64 + 1),
            person_name(rng, i + 7).into(),
            Datum::Int(rng.gen_range(1..95)),
            (if rng.gen_bool(0.5) { "F" } else { "M" }).into(),
            DIAGNOSES[i % DIAGNOSES.len()].into(),
            Datum::Int(rng.gen_range(1..=(n_phys as i64))),
        ]);
    }

    let (t_phys, c_pos) = cid(&schema, "physician", "position");
    let (_, c_salary) = cid(&schema, "physician", "salary");
    let (_, c_phys_id) = cid(&schema, "physician", "physician_id");
    let (t_patient, c_diag) = cid(&schema, "patient", "diagnosis");
    let (_, c_pgender) = cid(&schema, "patient", "gender");
    let (_, c_page) = cid(&schema, "patient", "patient_age");
    let (_, c_pat_phys) = cid(&schema, "patient", "physician_id");

    DomainSpec {
        entities: vec![
            entity(&schema, "physician", "physician", "physicians", "name", "name"),
            entity(&schema, "patient", "patient", "patients", "name", "name"),
        ],
        filters: vec![
            FilterCol {
                table: t_phys,
                column: c_pos,
                label: "position".into(),
                phrase: Phrase::WhoAre,
                surfaces: inflected_surfaces(POSITIONS),
            },
            FilterCol {
                table: t_patient,
                column: c_diag,
                label: "diagnosis".into(),
                phrase: Phrase::With("diagnosis".into()),
                surfaces: easy_surfaces(DIAGNOSES),
            },
            FilterCol {
                table: t_patient,
                column: c_pgender,
                label: "gender".into(),
                phrase: Phrase::Adjective,
                surfaces: gender_surfaces(),
            },
        ],
        numerics: vec![
            num_full(
                t_phys,
                c_salary,
                "salary",
                ("earning more than", "earning less than"),
                ("highest paid", "lowest paid"),
            ),
            num_full(
                t_patient,
                c_page,
                "age",
                ("older than", "younger than"),
                ("oldest", "youngest"),
            ),
        ],
        relations: vec![Relation {
            subject: 0,
            object: 1,
            verb: "treat".into(),
            subject_key: c_phys_id,
            link_col: c_pat_phys,
            link_table: t_patient,
        }],
        rows: vec![physicians, patients],
        schema,
    }
}
