//! Shared vocabulary pools for the domain data generators.
//!
//! Countries carry their demonyms (the *Hard* surface class: "French" →
//! `'France'`) and airports their full names (the paper's Fig. 4 example:
//! "John F Kennedy International Airport" → `'JFK'`).

/// (country, demonym)
pub const COUNTRIES: &[(&str, &str)] = &[
    ("France", "French"),
    ("Germany", "German"),
    ("Spain", "Spanish"),
    ("Italy", "Italian"),
    ("Portugal", "Portuguese"),
    ("Netherlands", "Dutch"),
    ("Sweden", "Swedish"),
    ("Norway", "Norwegian"),
    ("Poland", "Polish"),
    ("Austria", "Austrian"),
    ("Switzerland", "Swiss"),
    ("Brazil", "Brazilian"),
    ("Japan", "Japanese"),
    ("Canada", "Canadian"),
    ("Australia", "Australian"),
];

/// First names (capitalised — the NER's capitalisation heuristic sees them).
pub const FIRST_NAMES: &[&str] = &[
    "Alice", "Bob", "Carol", "Dave", "Eve", "Frank", "Grace", "Henry", "Iris", "Jack",
    "Karen", "Liam", "Mona", "Nils", "Olga", "Paul", "Rita", "Sam", "Tina", "Ulf",
    "Vera", "Walt", "Xena", "Yann", "Zoe", "Anna", "Boris", "Clara", "Dario", "Elsa",
];

/// Last names.
pub const LAST_NAMES: &[&str] = &[
    "Miller", "Smith", "Garcia", "Weber", "Rossi", "Dubois", "Novak", "Larsen",
    "Keller", "Brandt", "Moreau", "Silva", "Tanaka", "Olsen", "Fischer", "Baker",
];

/// (airport code, full name, city)
pub const AIRPORTS: &[(&str, &str, &str)] = &[
    ("JFK", "John F Kennedy International Airport", "New York"),
    ("LAX", "Los Angeles International Airport", "Los Angeles"),
    ("CDG", "Charles de Gaulle Airport", "Paris"),
    ("FRA", "Frankfurt Airport", "Frankfurt"),
    ("ZRH", "Zurich Airport", "Zurich"),
    ("AMS", "Amsterdam Schiphol Airport", "Amsterdam"),
    ("MAD", "Madrid Barajas Airport", "Madrid"),
    ("LIS", "Lisbon Humberto Delgado Airport", "Lisbon"),
    ("VIE", "Vienna International Airport", "Vienna"),
    ("OSL", "Oslo Gardermoen Airport", "Oslo"),
];

/// Airline names.
pub const AIRLINES: &[&str] = &[
    "JetBlue Airways", "United Airlines", "Lufthansa", "Air France", "Swiss",
    "KLM", "Iberia", "TAP Portugal", "Austrian Airlines", "Norwegian Air",
];

/// Pet types.
pub const PET_TYPES: &[&str] = &["dog", "cat", "bird", "hamster", "rabbit", "turtle"];

/// Academic majors.
pub const MAJORS: &[&str] =
    &["Biology", "Physics", "History", "Economics", "Informatics", "Linguistics"];

/// Cities.
pub const CITIES: &[&str] = &[
    "Paris", "Berlin", "Madrid", "Rome", "Lisbon", "Amsterdam", "Stockholm", "Oslo",
    "Warsaw", "Vienna", "Zurich", "Geneva", "Porto", "Munich", "Lyon", "Milan",
];

/// Corporate-ish department names.
pub const DEPARTMENTS: &[&str] =
    &["Engineering", "Marketing", "Finance", "Research", "Sales", "Support", "Legal"];

/// Job titles with a natural plural for Medium surfaces.
pub const TITLES: &[(&str, &str)] = &[
    ("Professor", "professors"),
    ("Lecturer", "lecturers"),
    ("Assistant", "assistants"),
    ("Engineer", "engineers"),
    ("Analyst", "analysts"),
    ("Manager", "managers"),
];

/// Music/TV genres.
pub const GENRES: &[&str] = &["Rock", "Jazz", "Pop", "Classical", "Folk", "Electronic"];

/// Car maker names.
pub const CAR_MAKERS: &[&str] =
    &["Volvo", "Fiat", "Renault", "Peugeot", "Porsche", "Skoda", "Seat", "Opel"];

/// Car model names.
pub const CAR_MODELS: &[&str] = &[
    "Falcon", "Comet", "Aurora", "Pioneer", "Vertex", "Nimbus", "Orion", "Pulsar",
    "Meteor", "Zephyr", "Titan", "Vega",
];

/// Record labels.
pub const RECORD_LABELS: &[&str] = &["Decca", "Philips", "Harmonia", "Naxos", "Erato"];

/// Hospital diagnoses.
pub const DIAGNOSES: &[&str] =
    &["Fracture", "Migraine", "Asthma", "Diabetes", "Allergy", "Influenza"];

/// Physician positions.
pub const POSITIONS: &[(&str, &str)] = &[
    ("Attending", "attendings"),
    ("Resident", "residents"),
    ("Surgeon", "surgeons"),
    ("Radiologist", "radiologists"),
];

/// Book/album title fragments.
pub const TITLE_WORDS: &[&str] = &[
    "Silent", "Golden", "Winter", "Crimson", "Hidden", "Broken", "Distant", "Burning",
    "River", "Garden", "Mirror", "Harbor", "Mountain", "Letter", "Shadow", "Crown",
];

/// Player positions.
pub const PLAYER_POSITIONS: &[(&str, &str)] = &[
    ("Goalkeeper", "goalkeepers"),
    ("Defender", "defenders"),
    ("Midfielder", "midfielders"),
    ("Forward", "forwards"),
];

/// Sports team nicknames.
pub const TEAM_NAMES: &[&str] = &[
    "Eagles", "Lions", "Sharks", "Wolves", "Falcons", "Bears", "Hawks", "Tigers",
];

/// TV channel owners.
pub const OWNERS: &[&str] = &["MediaOne", "StarGroup", "CanalPlus", "NordicTV", "Telewave"];

/// Order statuses with inflected surfaces.
pub const ORDER_STATUS: &[(&str, &str)] = &[
    ("Shipped", "shipped"),
    ("Pending", "pending"),
    ("Cancelled", "cancelled"),
    ("Delivered", "delivered"),
];

/// Membership levels.
pub const MEMBERSHIP: &[(&str, &str)] = &[
    ("Gold", "gold"),
    ("Silver", "silver"),
    ("Bronze", "bronze"),
];

/// Languages.
pub const LANGUAGES: &[&str] =
    &["English", "French", "German", "Spanish", "Italian", "Dutch", "Swedish", "Polish"];

/// Instruments / orchestra sections for flavour columns.
pub const NATIONALITIES: &[&str] = &[
    "French", "German", "Spanish", "Italian", "Dutch", "Swedish", "Austrian", "Swiss",
];

/// A simple ISO date string for the given components.
pub fn iso_date(year: i32, month: u32, day: u32) -> String {
    format!("{year:04}-{month:02}-{day:02}")
}

/// Looks up the demonym of a country, if we know it.
pub fn demonym(country: &str) -> Option<&'static str> {
    COUNTRIES.iter().find(|(c, _)| *c == country).map(|&(_, d)| d)
}

/// Looks up a country by its demonym.
pub fn country_for_demonym(demonym: &str) -> Option<&'static str> {
    COUNTRIES.iter().find(|(_, d)| *d == demonym).map(|&(c, _)| c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demonym_round_trip() {
        for (country, dem) in COUNTRIES {
            assert_eq!(demonym(country), Some(*dem));
            assert_eq!(country_for_demonym(dem), Some(*country));
        }
        assert_eq!(demonym("Atlantis"), None);
        assert_eq!(country_for_demonym("Martian"), None);
    }

    #[test]
    fn iso_date_formats() {
        assert_eq!(iso_date(2010, 8, 9), "2010-08-09");
    }
}
