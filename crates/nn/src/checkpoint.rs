//! Versioned model checkpoints.
//!
//! A checkpoint is a JSONL file written through the observability envelope
//! ([`valuenet_obs::JsonlWriter`] stamps every record with `schema_version`),
//! so the same `vn-obs-check` validator that guards the benchmark artifacts
//! also accepts checkpoints. Layout:
//!
//! ```text
//! {"schema_version":1,"type":"checkpoint_meta","checkpoint_version":1,"format":"f32","params":N,"weights":W}
//! {"schema_version":1,"type":"checkpoint_param","name":"...","group":0,"rows":R,"cols":C,"data":[...]}
//! ...
//! {"schema_version":1,"type":"checkpoint_end","params":N}
//! ```
//!
//! The `int8` format stores each tensor as a per-tensor `scale` plus integer
//! codes in `qdata`; loading dequantizes to f32 and *preserves the scale* in
//! the store, so re-quantizing at inference time reproduces the exact codes
//! (see `DESIGN.md`, "SIMD & quantization"). The trailing `checkpoint_end`
//! record guards against truncated files; every failure mode surfaces as a
//! typed [`CheckpointError`], never a panic.

use crate::{ParamId, ParamStore};
use std::fmt;
use valuenet_obs::json::Json;
use valuenet_obs::JsonlWriter;
use valuenet_tensor::packed::{quant_scale, quantize_one};

/// Version of the checkpoint record layout. Bump on incompatible change.
pub const CHECKPOINT_VERSION: i64 = 1;

/// How the weights are stored on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointFormat {
    /// Full-precision weights (`data` array of f32).
    F32,
    /// Per-tensor int8 codes plus a scale (`qdata` + `scale`).
    Int8,
}

impl CheckpointFormat {
    fn tag(self) -> &'static str {
        match self {
            CheckpointFormat::F32 => "f32",
            CheckpointFormat::Int8 => "int8",
        }
    }
}

/// Why a checkpoint failed to save or load.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem error.
    Io(std::io::Error),
    /// A line was not valid JSON.
    Parse(String),
    /// The file declares a checkpoint version this build cannot read.
    Version(String),
    /// The trailing `checkpoint_end` record is missing or inconsistent.
    Truncated(String),
    /// A record is structurally invalid (bad shape, missing field, ...).
    Corrupt(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Parse(m) => write!(f, "checkpoint parse error: {m}"),
            CheckpointError::Version(m) => write!(f, "checkpoint version mismatch: {m}"),
            CheckpointError::Truncated(m) => write!(f, "checkpoint truncated: {m}"),
            CheckpointError::Corrupt(m) => write!(f, "checkpoint corrupt: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

fn meta_record(ps: &ParamStore, format: CheckpointFormat) -> Json {
    Json::obj(vec![
        ("type", Json::Str("checkpoint_meta".into())),
        ("checkpoint_version", Json::Int(CHECKPOINT_VERSION)),
        ("format", Json::Str(format.tag().into())),
        ("params", Json::Int(ps.len() as i64)),
        ("weights", Json::Int(ps.num_weights() as i64)),
    ])
}

fn end_record(ps: &ParamStore) -> Json {
    Json::obj(vec![
        ("type", Json::Str("checkpoint_end".into())),
        ("params", Json::Int(ps.len() as i64)),
    ])
}

fn param_header(ps: &ParamStore, id: ParamId) -> Vec<(&'static str, Json)> {
    let (rows, cols) = ps.shape(id);
    vec![
        ("type", Json::Str("checkpoint_param".into())),
        ("name", Json::Str(ps.name(id).into())),
        ("group", Json::Int(ps.group(id) as i64)),
        ("rows", Json::Int(rows as i64)),
        ("cols", Json::Int(cols as i64)),
    ]
}

/// Saves every parameter at full precision. `load_checkpoint` restores a
/// bit-identical store: f32 values survive the JSON round trip exactly
/// (numbers are rendered with shortest round-trip formatting).
pub fn save_checkpoint(path: &str, ps: &ParamStore) -> Result<(), CheckpointError> {
    let mut w = JsonlWriter::create(path)?;
    w.write(meta_record(ps, CheckpointFormat::F32))?;
    for id in ps.ids() {
        let mut rec = param_header(ps, id);
        rec.push((
            "data",
            Json::Arr(ps.data(id).iter().map(|&v| Json::Num(v as f64)).collect()),
        ));
        w.write(Json::obj(rec))?;
    }
    w.write(end_record(ps))?;
    w.finish()?;
    Ok(())
}

/// Saves every parameter as per-tensor-scaled int8 codes — roughly a quarter
/// of the f32 artifact. Loading dequantizes and preserves each scale, so the
/// quantized inference path reproduces the exact saved codes.
pub fn save_checkpoint_quantized(path: &str, ps: &ParamStore) -> Result<(), CheckpointError> {
    let mut w = JsonlWriter::create(path)?;
    w.write(meta_record(ps, CheckpointFormat::Int8))?;
    for id in ps.ids() {
        let data = ps.data(id);
        let scale = ps.qscale(id).unwrap_or_else(|| quant_scale(data));
        let mut rec = param_header(ps, id);
        rec.push(("scale", Json::Num(scale as f64)));
        rec.push((
            "qdata",
            Json::Arr(data.iter().map(|&v| Json::Int(quantize_one(v, scale) as i64)).collect()),
        ));
        w.write(Json::obj(rec))?;
    }
    w.write(end_record(ps))?;
    w.finish()?;
    Ok(())
}

fn get_usize(rec: &Json, key: &str, line: usize) -> Result<usize, CheckpointError> {
    rec.get(key).and_then(Json::as_f64).map(|v| v as usize).ok_or_else(|| {
        CheckpointError::Corrupt(format!("line {line}: missing or non-numeric `{key}`"))
    })
}

fn get_str<'j>(rec: &'j Json, key: &str, line: usize) -> Result<&'j str, CheckpointError> {
    rec.get(key).and_then(Json::as_str).ok_or_else(|| {
        CheckpointError::Corrupt(format!("line {line}: missing or non-string `{key}`"))
    })
}

/// Loads a checkpoint written by [`save_checkpoint`] or
/// [`save_checkpoint_quantized`], returning the restored store and the
/// on-disk format. Malformed input yields a typed error, never a panic.
pub fn load_checkpoint(path: &str) -> Result<(ParamStore, CheckpointFormat), CheckpointError> {
    let text = std::fs::read_to_string(path)?;
    let mut ps = ParamStore::new();
    let mut format = None;
    let mut declared_params = 0usize;
    let mut ended = false;
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        if ended {
            return Err(CheckpointError::Corrupt(format!(
                "line {lineno}: record after checkpoint_end"
            )));
        }
        let rec = Json::parse(line)
            .map_err(|e| CheckpointError::Parse(format!("line {lineno}: {e}")))?;
        let ty = get_str(&rec, "type", lineno)?;
        match ty {
            "checkpoint_meta" => {
                let version = rec
                    .get("checkpoint_version")
                    .and_then(Json::as_f64)
                    .map(|v| v as i64)
                    .ok_or_else(|| {
                        CheckpointError::Corrupt(format!(
                            "line {lineno}: meta record lacks checkpoint_version"
                        ))
                    })?;
                if version != CHECKPOINT_VERSION {
                    return Err(CheckpointError::Version(format!(
                        "file has checkpoint_version {version}, this build reads {CHECKPOINT_VERSION}"
                    )));
                }
                format = Some(match get_str(&rec, "format", lineno)? {
                    "f32" => CheckpointFormat::F32,
                    "int8" => CheckpointFormat::Int8,
                    other => {
                        return Err(CheckpointError::Corrupt(format!(
                            "line {lineno}: unknown format `{other}`"
                        )))
                    }
                });
                declared_params = get_usize(&rec, "params", lineno)?;
            }
            "checkpoint_param" => {
                let format = format.ok_or_else(|| {
                    CheckpointError::Corrupt(format!(
                        "line {lineno}: checkpoint_param before checkpoint_meta"
                    ))
                })?;
                let name = get_str(&rec, "name", lineno)?.to_string();
                let group = get_usize(&rec, "group", lineno)?;
                let rows = get_usize(&rec, "rows", lineno)?;
                let cols = get_usize(&rec, "cols", lineno)?;
                let (data, qscale) = match format {
                    CheckpointFormat::F32 => {
                        let arr = rec.get("data").and_then(Json::as_arr).ok_or_else(|| {
                            CheckpointError::Corrupt(format!("line {lineno}: missing `data`"))
                        })?;
                        let mut data = Vec::with_capacity(arr.len());
                        for v in arr {
                            data.push(v.as_f64().ok_or_else(|| {
                                CheckpointError::Corrupt(format!(
                                    "line {lineno}: non-numeric weight"
                                ))
                            })? as f32);
                        }
                        (data, None)
                    }
                    CheckpointFormat::Int8 => {
                        let scale =
                            rec.get("scale").and_then(Json::as_f64).ok_or_else(|| {
                                CheckpointError::Corrupt(format!("line {lineno}: missing `scale`"))
                            })? as f32;
                        let arr = rec.get("qdata").and_then(Json::as_arr).ok_or_else(|| {
                            CheckpointError::Corrupt(format!("line {lineno}: missing `qdata`"))
                        })?;
                        let mut data = Vec::with_capacity(arr.len());
                        for v in arr {
                            let q = v.as_f64().ok_or_else(|| {
                                CheckpointError::Corrupt(format!("line {lineno}: non-numeric code"))
                            })?;
                            if !(-127.0..=127.0).contains(&q) || q.fract() != 0.0 {
                                return Err(CheckpointError::Corrupt(format!(
                                    "line {lineno}: int8 code {q} out of range"
                                )));
                            }
                            data.push(q as f32 * scale);
                        }
                        (data, Some(scale))
                    }
                };
                if data.len() != rows * cols {
                    return Err(CheckpointError::Corrupt(format!(
                        "line {lineno}: `{name}` declares {rows}x{cols} but carries {} values",
                        data.len()
                    )));
                }
                ps.add_raw(name, group, rows, cols, data, qscale);
            }
            "checkpoint_end" => {
                let n = get_usize(&rec, "params", lineno)?;
                if n != ps.len() || n != declared_params {
                    return Err(CheckpointError::Truncated(format!(
                        "end record declares {n} params, read {} of {declared_params}",
                        ps.len()
                    )));
                }
                ended = true;
            }
            other => {
                return Err(CheckpointError::Corrupt(format!(
                    "line {lineno}: unknown record type `{other}`"
                )));
            }
        }
    }
    let format = format.ok_or_else(|| {
        CheckpointError::Truncated("file has no checkpoint_meta record".to_string())
    })?;
    if !ended {
        return Err(CheckpointError::Truncated(format!(
            "missing checkpoint_end record ({} of {declared_params} params read)",
            ps.len()
        )));
    }
    Ok((ps, format))
}
