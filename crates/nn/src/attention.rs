//! Multi-head self-attention and transformer blocks.
//!
//! These are the from-scratch substitute for the pretrained BERT encoder the
//! paper fine-tunes (see `DESIGN.md`): the joint question ⊕ schema ⊕ value
//! sequence is encoded by a stack of [`TransformerBlock`]s so attention can
//! form between question tokens and the value candidates extracted from the
//! database content (paper Fig. 8).

use crate::{Linear, ParamId, ParamStore};
use rand::Rng;
use valuenet_tensor::{Graph, Tensor, Var};

/// Scaled dot-product multi-head self-attention.
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    dim: usize,
}

impl MultiHeadAttention {
    /// Creates an attention layer over `dim`-sized vectors with `heads`
    /// heads. `dim` must be divisible by `heads`.
    pub fn new(
        ps: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        group: usize,
        dim: usize,
        heads: usize,
    ) -> Self {
        assert!(heads > 0 && dim.is_multiple_of(heads), "dim {dim} not divisible by heads {heads}");
        MultiHeadAttention {
            wq: Linear::with_bias(ps, rng, &format!("{name}.wq"), group, dim, dim, false),
            wk: Linear::with_bias(ps, rng, &format!("{name}.wk"), group, dim, dim, false),
            wv: Linear::with_bias(ps, rng, &format!("{name}.wv"), group, dim, dim, false),
            wo: Linear::with_bias(ps, rng, &format!("{name}.wo"), group, dim, dim, false),
            heads,
            dim,
        }
    }

    /// Self-attention over `x` of shape `[n, dim]`. `mask`, if given, is an
    /// additive `[n, n]` tensor (use large negative values to forbid
    /// attention edges).
    pub fn forward(&self, g: &mut Graph, ps: &ParamStore, x: Var, mask: Option<Var>) -> Var {
        let dk = self.dim / self.heads;
        let q = self.wq.forward(g, ps, x);
        let k = self.wk.forward(g, ps, x);
        let v = self.wv.forward(g, ps, x);
        let scale = 1.0 / (dk as f32).sqrt();
        let mut head_outs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let (c0, c1) = (h * dk, (h + 1) * dk);
            let qh = g.slice_cols(q, c0, c1);
            let kh = g.slice_cols(k, c0, c1);
            let vh = g.slice_cols(v, c0, c1);
            // Fused score+scale+mask+softmax; the context stays a separate
            // matmul because keys and values are different projections.
            let attn = g.attn_softmax(qh, kh, scale, mask);
            head_outs.push(g.matmul(attn, vh));
        }
        let cat = g.concat_cols(&head_outs);
        self.wo.forward(g, ps, cat)
    }
}

/// Layer normalisation with learnable gain and bias.
pub struct LayerNorm {
    gain: ParamId,
    bias: ParamId,
    eps: f32,
}

impl LayerNorm {
    /// Creates a layer norm over `dim`-sized rows.
    pub fn new(ps: &mut ParamStore, name: &str, group: usize, dim: usize) -> Self {
        LayerNorm {
            gain: ps.add(format!("{name}.gain"), group, Tensor::full(1, dim, 1.0)),
            bias: ps.add(format!("{name}.bias"), group, Tensor::zeros(1, dim)),
            eps: 1e-5,
        }
    }

    /// Normalises each row of `x` and applies the affine transform.
    pub fn forward(&self, g: &mut Graph, ps: &ParamStore, x: Var) -> Var {
        let n = g.layer_norm_rows(x, self.eps);
        let gain = ps.var(g, self.gain);
        let bias = ps.var(g, self.bias);
        let scaled = g.mul_broadcast_row(n, gain);
        g.add_broadcast_row(scaled, bias)
    }
}

/// Position-wise feed-forward network (`Linear → ReLU → Linear`).
pub struct FeedForward {
    up: Linear,
    down: Linear,
}

impl FeedForward {
    /// Creates the two projections (`dim → inner → dim`).
    pub fn new(
        ps: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        group: usize,
        dim: usize,
        inner: usize,
    ) -> Self {
        FeedForward {
            up: Linear::new(ps, rng, &format!("{name}.up"), group, dim, inner),
            down: Linear::new(ps, rng, &format!("{name}.down"), group, inner, dim),
        }
    }

    /// Applies the network row-wise (up-projection and ReLU fused).
    pub fn forward(&self, g: &mut Graph, ps: &ParamStore, x: Var) -> Var {
        let r = self.up.forward_act(g, ps, x, valuenet_tensor::Activation::Relu);
        self.down.forward(g, ps, r)
    }
}

/// A post-norm transformer encoder block:
/// `x = LN(x + MHA(x)); x = LN(x + FFN(x))`.
pub struct TransformerBlock {
    attn: MultiHeadAttention,
    ln1: LayerNorm,
    ffn: FeedForward,
    ln2: LayerNorm,
}

impl TransformerBlock {
    /// Creates a block over `dim`-sized vectors.
    pub fn new(
        ps: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        group: usize,
        dim: usize,
        heads: usize,
        ffn_inner: usize,
    ) -> Self {
        TransformerBlock {
            attn: MultiHeadAttention::new(ps, rng, &format!("{name}.attn"), group, dim, heads),
            ln1: LayerNorm::new(ps, &format!("{name}.ln1"), group, dim),
            ffn: FeedForward::new(ps, rng, &format!("{name}.ffn"), group, dim, ffn_inner),
            ln2: LayerNorm::new(ps, &format!("{name}.ln2"), group, dim),
        }
    }

    /// Applies the block; see the type-level docs for the layout.
    pub fn forward(&self, g: &mut Graph, ps: &ParamStore, x: Var, mask: Option<Var>) -> Var {
        let a = self.attn.forward(g, ps, x, mask);
        let r1 = g.add(x, a);
        let n1 = self.ln1.forward(g, ps, r1);
        let f = self.ffn.forward(g, ps, n1);
        let r2 = g.add(n1, f);
        self.ln2.forward(g, ps, r2)
    }
}

/// Builds an additive attention mask that forbids attending to positions
/// `>= valid_len` (useful when padding). Allowed edges are `0.0`, forbidden
/// ones `-1e9`.
pub fn padding_mask(n: usize, valid_len: usize) -> Tensor {
    let mut m = Tensor::zeros(n, n);
    for r in 0..n {
        for c in valid_len..n {
            m.set(r, c, -1e9);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Adam, AdamConfig, Embedding, Initializer};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn attention_shapes() {
        let mut ps = ParamStore::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let mha = MultiHeadAttention::new(&mut ps, &mut rng, "a", 0, 8, 2);
        let mut g = Graph::new();
        let x = g.input(Initializer::Uniform(1.0).sample(&mut rng, 5, 8));
        let y = mha.forward(&mut g, &ps, x, None);
        assert_eq!(g.value(y).shape(), (5, 8));
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn bad_head_count_panics() {
        let mut ps = ParamStore::new();
        let mut rng = SmallRng::seed_from_u64(1);
        MultiHeadAttention::new(&mut ps, &mut rng, "a", 0, 8, 3);
    }

    #[test]
    fn mask_blocks_information_flow() {
        let mut ps = ParamStore::new();
        let mut rng = SmallRng::seed_from_u64(2);
        let mha = MultiHeadAttention::new(&mut ps, &mut rng, "a", 0, 4, 1);
        // With positions >= 2 masked, changing row 2 must not change rows 0-1.
        let run = |third_row: f32| {
            let mut g = Graph::new();
            let x = g.input(Tensor::from_rows(&[
                &[1.0, 0.0, 0.0, 0.0],
                &[0.0, 1.0, 0.0, 0.0],
                &[third_row, third_row, third_row, third_row],
            ]));
            let m = g.input(padding_mask(3, 2));
            let y = mha.forward(&mut g, &ps, x, Some(m));
            (g.value(y).row(0).to_vec(), g.value(y).row(1).to_vec())
        };
        assert_eq!(run(0.0), run(9.0));
    }

    #[test]
    fn layer_norm_normalises() {
        let mut ps = ParamStore::new();
        let ln = LayerNorm::new(&mut ps, "ln", 0, 4);
        let mut g = Graph::new();
        let x = g.input(Tensor::from_rows(&[&[10.0, 20.0, 30.0, 40.0]]));
        let y = ln.forward(&mut g, &ps, x);
        let row = g.value(y).row(0).to_vec();
        let mean: f32 = row.iter().sum::<f32>() / 4.0;
        let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn transformer_block_shapes_and_grads() {
        let mut ps = ParamStore::new();
        let mut rng = SmallRng::seed_from_u64(3);
        let block = TransformerBlock::new(&mut ps, &mut rng, "t", 0, 8, 2, 16);
        let mut g = Graph::new();
        let x = g.input(Initializer::Uniform(1.0).sample(&mut rng, 4, 8));
        let y = block.forward(&mut g, &ps, x, None);
        assert_eq!(g.value(y).shape(), (4, 8));
        let loss = g.mean_all(y);
        let grads = g.backward(loss);
        // Every parameter of the block must receive some gradient.
        let got = ps.collect_grads(&grads);
        assert_eq!(got.len(), ps.len());
    }

    /// A one-block transformer must solve a task a bag-of-words model cannot:
    /// classify whether token A appears *before* token B in the sequence.
    /// With position embeddings and attention this is learnable.
    #[test]
    fn transformer_learns_order_task() {
        let mut ps = ParamStore::new();
        let mut rng = SmallRng::seed_from_u64(4);
        let dim = 16;
        let tok = Embedding::new(&mut ps, &mut rng, "tok", 0, 4, dim);
        let pos = Embedding::new(&mut ps, &mut rng, "pos", 0, 6, dim);
        let block = TransformerBlock::new(&mut ps, &mut rng, "t", 0, dim, 2, 32);
        let head = Linear::new(&mut ps, &mut rng, "h", 0, dim, 2);
        let mut opt = Adam::new(&ps, AdamConfig { group_lrs: vec![0.005], ..Default::default() });

        // Token 1 = A, token 2 = B, token 0 = filler. Label: A before B?
        let data: Vec<(Vec<usize>, usize)> = vec![
            (vec![1, 0, 2, 0], 1),
            (vec![2, 0, 1, 0], 0),
            (vec![0, 1, 0, 2], 1),
            (vec![0, 2, 0, 1], 0),
            (vec![1, 2, 0, 0], 1),
            (vec![2, 1, 0, 0], 0),
            (vec![0, 0, 1, 2], 1),
            (vec![0, 0, 2, 1], 0),
        ];
        let forward = |g: &mut Graph, ps: &ParamStore, seq: &[usize]| {
            let te = tok.forward(g, ps, seq);
            let pe = pos.forward(g, ps, &(0..seq.len()).collect::<Vec<_>>());
            let x = g.add(te, pe);
            let enc = block.forward(g, ps, x, None);
            let first = g.slice_rows(enc, 0, 1);
            head.forward(g, ps, first)
        };
        for _ in 0..200 {
            for (seq, label) in &data {
                let mut g = Graph::new();
                let logits = forward(&mut g, &ps, seq);
                let lp = g.log_softmax_rows(logits);
                let loss = g.nll_loss(lp, &[*label]);
                let grads = g.backward(loss);
                opt.step(&mut ps, &grads);
            }
        }
        let mut correct = 0;
        for (seq, label) in &data {
            let mut g = Graph::new();
            let logits = forward(&mut g, &ps, seq);
            if g.value(logits).argmax() == *label {
                correct += 1;
            }
        }
        assert!(correct >= 7, "transformer solved only {correct}/8 order tasks");
    }
}
