//! LSTM cells and (bi-)directional sequence encoders.
//!
//! The paper uses bi-directional LSTMs to summarise multi-token columns,
//! tables and value candidates (Section V-C, dimensionality 300) and a
//! uni-directional LSTM as the decoder backbone (Section III-B2).

use crate::{Initializer, ParamId, ParamStore};
use rand::Rng;
use valuenet_tensor::{Graph, Tensor, Var};

/// Hidden and cell state of an LSTM, each of shape `[B, hidden]` — one row
/// per batch element (`B = 1` for the sequential encoders; the batched beam
/// decoder stacks all live hypotheses into one state).
#[derive(Clone, Copy)]
pub struct LstmState {
    /// Hidden state `h`.
    pub h: Var,
    /// Cell state `c`.
    pub c: Var,
}

/// A single LSTM cell with input/forget/cell/output gates.
///
/// Gate pre-activations are computed in one fused projection of size
/// `4 × hidden`, laid out `[i | f | g | o]`. The forget-gate bias is
/// initialised to 1.0, the standard trick for gradient flow.
pub struct LstmCell {
    wx: ParamId,
    wh: ParamId,
    b: ParamId,
    in_dim: usize,
    hidden: usize,
}

impl LstmCell {
    /// Creates a cell mapping `in_dim` inputs to a `hidden`-sized state.
    pub fn new(
        ps: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        group: usize,
        in_dim: usize,
        hidden: usize,
    ) -> Self {
        let wx = ps.add(
            format!("{name}.wx"),
            group,
            Initializer::XavierUniform.sample(rng, in_dim, 4 * hidden),
        );
        let wh = ps.add(
            format!("{name}.wh"),
            group,
            Initializer::XavierUniform.sample(rng, hidden, 4 * hidden),
        );
        let mut bias = Tensor::zeros(1, 4 * hidden);
        for c in hidden..2 * hidden {
            bias.set(0, c, 1.0); // forget gate
        }
        let b = ps.add(format!("{name}.b"), group, bias);
        LstmCell { wx, wh, b, in_dim, hidden }
    }

    /// Hidden dimensionality.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// A zero initial state.
    pub fn zero_state(&self, g: &mut Graph) -> LstmState {
        self.zero_state_n(g, 1)
    }

    /// A zero initial state for a batch of `n` independent sequences.
    pub fn zero_state_n(&self, g: &mut Graph, n: usize) -> LstmState {
        let h = g.input(Tensor::zeros(n, self.hidden));
        let c = g.input(Tensor::zeros(n, self.hidden));
        LstmState { h, c }
    }

    /// One step: consumes `x` of shape `[B, in_dim]` and the previous
    /// `[B, hidden]` state. Every op in the cell is row-wise, so a batch of
    /// `B` rows produces exactly the per-row results of `B` separate calls
    /// (the blocked matmul kernel accumulates each output row independently
    /// in a fixed order) — the batched beam decoder relies on this.
    pub fn step(&self, g: &mut Graph, ps: &ParamStore, x: Var, state: LstmState) -> LstmState {
        debug_assert_eq!(g.value(x).cols(), self.in_dim, "LstmCell: bad input width");
        debug_assert_eq!(
            g.value(x).rows(),
            g.value(state.h).rows(),
            "LstmCell: input/state batch mismatch"
        );
        if g.inference_mode() && crate::packed_inference_enabled() {
            // Off-tape path: packed (or int8 quantized) weight matmuls, same
            // summation order as the tape ops, so f32 results are
            // bit-identical.
            let z = ps.lstm_preact(g, x, state.h, self.wx, self.wh, self.b);
            let (h_t, c_t) = valuenet_tensor::lstm_gates_eval(&z, g.value(state.c));
            let c = g.input(c_t);
            let h_out = g.input(h_t);
            return LstmState { h: h_out, c };
        }
        let wx = ps.var(g, self.wx);
        let wh = ps.var(g, self.wh);
        let b = ps.var(g, self.b);
        let zx = g.matmul(x, wx);
        let zh = g.matmul(state.h, wh);
        let z0 = g.add(zx, zh);
        let z = g.add_broadcast_row(z0, b);
        let (h_out, c) = g.lstm_gates(z, state.c);
        LstmState { h: h_out, c }
    }
}

/// A uni-directional LSTM over a sequence.
pub struct Lstm {
    cell: LstmCell,
}

impl Lstm {
    /// Creates the encoder.
    pub fn new(
        ps: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        group: usize,
        in_dim: usize,
        hidden: usize,
    ) -> Self {
        Lstm { cell: LstmCell::new(ps, rng, name, group, in_dim, hidden) }
    }

    /// The underlying cell (for step-wise decoding).
    pub fn cell(&self) -> &LstmCell {
        &self.cell
    }

    /// Runs over `xs` of shape `[T, in_dim]`, returning all hidden states
    /// `[T, hidden]` and the final state.
    pub fn run(&self, g: &mut Graph, ps: &ParamStore, xs: Var) -> (Var, LstmState) {
        let t_len = g.value(xs).rows();
        assert!(t_len > 0, "Lstm::run on empty sequence");
        let mut state = self.cell.zero_state(g);
        let mut hs = Vec::with_capacity(t_len);
        for t in 0..t_len {
            let x = g.slice_rows(xs, t, t + 1);
            state = self.cell.step(g, ps, x, state);
            hs.push(state.h);
        }
        (g.concat_rows(&hs), state)
    }
}

/// A bi-directional LSTM: a forward and a backward pass whose hidden states
/// are concatenated, yielding `[T, 2*hidden]` outputs and a `[1, 2*hidden]`
/// summary (the concatenated final states — the paper's item summariser).
pub struct BiLstm {
    fwd: LstmCell,
    bwd: LstmCell,
}

impl BiLstm {
    /// Creates both directions.
    pub fn new(
        ps: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        group: usize,
        in_dim: usize,
        hidden: usize,
    ) -> Self {
        BiLstm {
            fwd: LstmCell::new(ps, rng, &format!("{name}.fwd"), group, in_dim, hidden),
            bwd: LstmCell::new(ps, rng, &format!("{name}.bwd"), group, in_dim, hidden),
        }
    }

    /// Output dimensionality (`2 × hidden`).
    pub fn out_dim(&self) -> usize {
        2 * self.fwd.hidden()
    }

    /// Runs over `xs` of shape `[T, in_dim]`. Returns per-step outputs
    /// `[T, 2*hidden]` and the summary vector `[1, 2*hidden]`.
    pub fn run(&self, g: &mut Graph, ps: &ParamStore, xs: Var) -> (Var, Var) {
        let t_len = g.value(xs).rows();
        assert!(t_len > 0, "BiLstm::run on empty sequence");
        let mut state_f = self.fwd.zero_state(g);
        let mut hs_f = Vec::with_capacity(t_len);
        for t in 0..t_len {
            let x = g.slice_rows(xs, t, t + 1);
            state_f = self.fwd.step(g, ps, x, state_f);
            hs_f.push(state_f.h);
        }
        let mut state_b = self.bwd.zero_state(g);
        let mut hs_b = vec![state_b.h; t_len];
        for t in (0..t_len).rev() {
            let x = g.slice_rows(xs, t, t + 1);
            state_b = self.bwd.step(g, ps, x, state_b);
            hs_b[t] = state_b.h;
        }
        let per_step: Vec<Var> = hs_f
            .iter()
            .zip(&hs_b)
            .map(|(&f, &b)| g.concat_cols(&[f, b]))
            .collect();
        let outputs = g.concat_rows(&per_step);
        let summary = g.concat_cols(&[state_f.h, state_b.h]);
        (outputs, summary)
    }

    /// Convenience: just the `[1, 2*hidden]` summary of a sequence.
    pub fn summarize(&self, g: &mut Graph, ps: &ParamStore, xs: Var) -> Var {
        self.run(g, ps, xs).1
    }

    /// Row-batched summary of `N` equal-length sequences.
    ///
    /// `xs[t]` holds time step `t` for every sequence, shape `[N, in_dim]`.
    /// Returns the `[N, 2*hidden]` summaries — row `i` is bit-identical to
    /// `summarize` over sequence `i` alone, because every op in
    /// [`LstmCell::step`] is row-wise and the matmul kernels accumulate each
    /// output row independently in a fixed order. The batched encoder's
    /// length-bucketed item summariser relies on this.
    pub fn summarize_steps(&self, g: &mut Graph, ps: &ParamStore, xs: &[Var]) -> Var {
        assert!(!xs.is_empty(), "BiLstm::summarize_steps on empty sequence");
        let n = g.value(xs[0]).rows();
        let mut state_f = self.fwd.zero_state_n(g, n);
        for &x in xs {
            state_f = self.fwd.step(g, ps, x, state_f);
        }
        let mut state_b = self.bwd.zero_state_n(g, n);
        for &x in xs.iter().rev() {
            state_b = self.bwd.step(g, ps, x, state_b);
        }
        g.concat_cols(&[state_f.h, state_b.h])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Adam, AdamConfig, Embedding, Linear};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn shapes() {
        let mut ps = ParamStore::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let lstm = Lstm::new(&mut ps, &mut rng, "l", 0, 3, 5);
        let bi = BiLstm::new(&mut ps, &mut rng, "b", 0, 3, 5);
        let mut g = Graph::new();
        let xs = g.input(Tensor::zeros(7, 3));
        let (hs, last) = lstm.run(&mut g, &ps, xs);
        assert_eq!(g.value(hs).shape(), (7, 5));
        assert_eq!(g.value(last.h).shape(), (1, 5));
        let (outs, summary) = bi.run(&mut g, &ps, xs);
        assert_eq!(g.value(outs).shape(), (7, 10));
        assert_eq!(g.value(summary).shape(), (1, 10));
    }

    #[test]
    fn forget_bias_initialised() {
        let mut ps = ParamStore::new();
        let mut rng = SmallRng::seed_from_u64(2);
        let cell = LstmCell::new(&mut ps, &mut rng, "c", 0, 2, 3);
        let b = ps.get(cell.b);
        assert_eq!(b.row(0)[3..6], [1.0, 1.0, 1.0]);
        assert_eq!(b.row(0)[0..3], [0.0, 0.0, 0.0]);
    }

    /// The classic sanity task: classify whether the *first* token of a
    /// sequence is a 1, regardless of a distracting suffix. A working LSTM
    /// must carry information across time steps to solve it.
    #[test]
    fn learns_to_remember_first_token() {
        let mut ps = ParamStore::new();
        let mut rng = SmallRng::seed_from_u64(3);
        let emb = Embedding::new(&mut ps, &mut rng, "e", 0, 3, 8);
        let lstm = Lstm::new(&mut ps, &mut rng, "l", 0, 8, 16);
        let out = Linear::new(&mut ps, &mut rng, "o", 0, 16, 2);
        let mut opt = Adam::new(&ps, AdamConfig { group_lrs: vec![0.01], ..Default::default() });

        let seqs: Vec<(Vec<usize>, usize)> = vec![
            (vec![1, 2, 2, 2, 0], 1),
            (vec![0, 2, 2, 2, 0], 0),
            (vec![1, 0, 2, 0, 2], 1),
            (vec![0, 0, 2, 2, 2], 0),
            (vec![1, 2, 0, 0, 0], 1),
            (vec![0, 2, 0, 2, 0], 0),
        ];
        for _ in 0..150 {
            for (seq, label) in &seqs {
                let mut g = Graph::new();
                let x = emb.forward(&mut g, &ps, seq);
                let (_, last) = lstm.run(&mut g, &ps, x);
                let logits = out.forward(&mut g, &ps, last.h);
                let lp = g.log_softmax_rows(logits);
                let loss = g.nll_loss(lp, &[*label]);
                let grads = g.backward(loss);
                opt.step(&mut ps, &grads);
            }
        }
        let mut correct = 0;
        for (seq, label) in &seqs {
            let mut g = Graph::new();
            let x = emb.forward(&mut g, &ps, seq);
            let (_, last) = lstm.run(&mut g, &ps, x);
            let logits = out.forward(&mut g, &ps, last.h);
            if g.value(logits).argmax() == *label {
                correct += 1;
            }
        }
        assert_eq!(correct, seqs.len(), "LSTM failed to learn first-token recall");
    }

    #[test]
    fn bilstm_summary_sees_both_ends() {
        // The backward half of the summary is the backward LSTM's state after
        // reading the whole sequence, so changing the *last* token must change
        // the summary even though the forward state at t=0 cannot see it.
        let mut ps = ParamStore::new();
        let mut rng = SmallRng::seed_from_u64(4);
        let bi = BiLstm::new(&mut ps, &mut rng, "b", 0, 2, 4);
        let run = |last: f32| {
            let mut g = Graph::new();
            let xs = g.input(Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[last, last]]));
            let s = bi.summarize(&mut g, &ps, xs);
            g.value(s).as_slice().to_vec()
        };
        assert_ne!(run(0.0), run(5.0));
    }
}
