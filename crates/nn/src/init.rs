//! Weight initialisation.

use rand::Rng;
use valuenet_tensor::Tensor;

/// Weight-initialisation schemes.
#[derive(Debug, Clone, Copy)]
pub enum Initializer {
    /// All zeros (biases).
    Zeros,
    /// All set to the given constant (e.g. LSTM forget-gate bias of 1.0).
    Constant(f32),
    /// Uniform in `[-a, a]` with `a = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
    /// Uniform in `[-a, a]`.
    Uniform(f32),
}

impl Initializer {
    /// Samples a `rows × cols` tensor.
    pub fn sample(self, rng: &mut impl Rng, rows: usize, cols: usize) -> Tensor {
        match self {
            Initializer::Zeros => Tensor::zeros(rows, cols),
            Initializer::Constant(c) => Tensor::full(rows, cols, c),
            Initializer::XavierUniform => {
                let a = (6.0 / (rows + cols) as f32).sqrt();
                uniform(rng, rows, cols, a)
            }
            Initializer::Uniform(a) => uniform(rng, rows, cols, a),
        }
    }
}

fn uniform(rng: &mut impl Rng, rows: usize, cols: usize, a: f32) -> Tensor {
    let data = (0..rows * cols).map(|_| rng.gen_range(-a..=a)).collect();
    Tensor::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_within_bound() {
        let mut rng = SmallRng::seed_from_u64(0);
        let t = Initializer::XavierUniform.sample(&mut rng, 10, 20);
        let a = (6.0f32 / 30.0).sqrt();
        assert!(t.as_slice().iter().all(|&x| x.abs() <= a));
        // Not degenerate: at least two distinct values.
        assert!(t.as_slice().windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn constant_and_zeros() {
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(Initializer::Zeros.sample(&mut rng, 2, 2).as_slice().iter().all(|&x| x == 0.0));
        assert!(Initializer::Constant(1.0)
            .sample(&mut rng, 2, 2)
            .as_slice()
            .iter()
            .all(|&x| x == 1.0));
    }
}
