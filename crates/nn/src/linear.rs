//! Linear projections and embedding tables.

use crate::{Initializer, ParamId, ParamStore};
use rand::Rng;
use valuenet_tensor::{Activation, Graph, Var};

/// A dense affine layer `y = x W + b` (bias optional).
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Creates a layer with Xavier-initialised weights and zero bias.
    pub fn new(
        ps: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        group: usize,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        Self::with_bias(ps, rng, name, group, in_dim, out_dim, true)
    }

    /// Creates a layer, optionally without a bias term.
    pub fn with_bias(
        ps: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        group: usize,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
    ) -> Self {
        let w = ps.add(
            format!("{name}.w"),
            group,
            Initializer::XavierUniform.sample(rng, in_dim, out_dim),
        );
        let b = bias.then(|| {
            ps.add(format!("{name}.b"), group, Initializer::Zeros.sample(rng, 1, out_dim))
        });
        Linear { w, b, in_dim, out_dim }
    }

    /// Applies the layer to `x` of shape `[n, in_dim]`.
    pub fn forward(&self, g: &mut Graph, ps: &ParamStore, x: Var) -> Var {
        self.forward_act(g, ps, x, Activation::None)
    }

    /// Applies the layer followed by `act`, as one fused
    /// [`Graph::matmul_bias_act`] node (matmul, bias broadcast and
    /// activation in a single pass over the output). On an inference tape
    /// the layer instead runs off-tape against the store's packed (or int8
    /// quantized) weights — bit-identical on the f32 path.
    pub fn forward_act(&self, g: &mut Graph, ps: &ParamStore, x: Var, act: Activation) -> Var {
        debug_assert_eq!(g.value(x).cols(), self.in_dim, "Linear: input dim mismatch");
        if g.inference_mode() && crate::packed_inference_enabled() {
            return ps.forward_linear(g, x, self.w, self.b, act);
        }
        let w = ps.var(g, self.w);
        let b = self.b.map(|b| ps.var(g, b));
        g.matmul_bias_act(x, w, b, act)
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

/// A lookup table mapping token ids to dense vectors.
pub struct Embedding {
    table: ParamId,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Creates a `vocab × dim` table with uniform(-0.1, 0.1) entries.
    pub fn new(
        ps: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        group: usize,
        vocab: usize,
        dim: usize,
    ) -> Self {
        let table =
            ps.add(format!("{name}.emb"), group, Initializer::Uniform(0.1).sample(rng, vocab, dim));
        Embedding { table, vocab, dim }
    }

    /// Looks up a batch of ids, producing `[ids.len(), dim]`. On an
    /// inference tape the rows are copied straight from the store, skipping
    /// the full-table parameter clone.
    pub fn forward(&self, g: &mut Graph, ps: &ParamStore, ids: &[usize]) -> Var {
        debug_assert!(ids.iter().all(|&i| i < self.vocab), "Embedding: id out of vocab");
        if g.inference_mode() && crate::packed_inference_enabled() {
            return ps.gather_rows(g, self.table, ids);
        }
        let table = ps.var(g, self.table);
        g.gather_rows(table, ids)
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Adam, AdamConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use valuenet_tensor::Tensor;

    #[test]
    fn linear_shapes() {
        let mut ps = ParamStore::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let lin = Linear::new(&mut ps, &mut rng, "l", 0, 3, 5);
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(4, 3));
        let y = lin.forward(&mut g, &ps, x);
        assert_eq!(g.value(y).shape(), (4, 5));
    }

    #[test]
    fn linear_learns_regression() {
        // Fit y = 2x + 1 with a 1->1 linear layer.
        let mut ps = ParamStore::new();
        let mut rng = SmallRng::seed_from_u64(2);
        let lin = Linear::new(&mut ps, &mut rng, "l", 0, 1, 1);
        let mut opt = Adam::new(&ps, AdamConfig { group_lrs: vec![0.1], ..Default::default() });
        let xs = [-2.0f32, -1.0, 0.0, 1.0, 2.0];
        for _ in 0..200 {
            let mut g = Graph::new();
            let x = g.input(Tensor::from_vec(5, 1, xs.to_vec()));
            let target =
                g.input(Tensor::from_vec(5, 1, xs.iter().map(|x| 2.0 * x + 1.0).collect()));
            let y = lin.forward(&mut g, &ps, x);
            let d = g.sub(y, target);
            let sq = g.mul(d, d);
            let loss = g.mean_all(sq);
            let grads = g.backward(loss);
            opt.step(&mut ps, &grads);
        }
        let mut g = Graph::new();
        let x = g.input(Tensor::scalar(3.0));
        let y = lin.forward(&mut g, &ps, x);
        assert!((g.value(y).scalar_value() - 7.0).abs() < 0.05, "got {}", g.value(y).scalar_value());
    }

    #[test]
    fn embedding_lookup_and_grads() {
        let mut ps = ParamStore::new();
        let mut rng = SmallRng::seed_from_u64(3);
        let emb = Embedding::new(&mut ps, &mut rng, "e", 0, 10, 4);
        let mut g = Graph::new();
        let e = emb.forward(&mut g, &ps, &[3, 3, 7]);
        assert_eq!(g.value(e).shape(), (3, 4));
        assert_eq!(g.value(e).row(0), g.value(e).row(1));
        let loss = g.sum_all(e);
        let grads = g.backward(loss);
        let collected = ps.collect_grads(&grads);
        assert_eq!(collected.len(), 1);
        let gt = &collected[0].1;
        // Row 3 used twice -> gradient 2, row 7 once -> 1, others 0.
        assert!(gt.row(3).iter().all(|&x| x == 2.0));
        assert!(gt.row(7).iter().all(|&x| x == 1.0));
        assert!(gt.row(0).iter().all(|&x| x == 0.0));
    }
}
