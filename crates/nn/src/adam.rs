//! Adam optimiser with per-group learning rates.

use crate::{ParamId, ParamStore};
use valuenet_tensor::{Gradients, Tensor};

/// Adam hyper-parameters. `group_lrs[i]` is the learning rate applied to
/// parameters registered with optimiser group `i`; the paper uses 2e-5 for
/// the encoder, 1e-3 for the decoder and 1e-4 for connection parameters.
#[derive(Debug, Clone)]
pub struct AdamConfig {
    /// Learning rate per parameter group.
    pub group_lrs: Vec<f32>,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical-stability constant.
    pub eps: f32,
    /// Optional global gradient-norm clip.
    pub clip_norm: Option<f32>,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            group_lrs: vec![1e-3],
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip_norm: Some(5.0),
        }
    }
}

/// Adam (Kingma & Ba, 2014) with bias correction and optional global-norm
/// gradient clipping.
pub struct Adam {
    cfg: AdamConfig,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    t: u64,
}

impl Adam {
    /// Initialises moment buffers for every parameter in `store`.
    pub fn new(store: &ParamStore, cfg: AdamConfig) -> Self {
        let mut m = Vec::with_capacity(store.len());
        let mut v = Vec::with_capacity(store.len());
        for id in store.ids() {
            let (r, c) = store.shape(id);
            m.push(Tensor::zeros(r, c));
            v.push(Tensor::zeros(r, c));
            assert!(
                store.group(id) < cfg.group_lrs.len(),
                "parameter {} has group {} but only {} learning rates were given",
                store.name(id),
                store.group(id),
                cfg.group_lrs.len()
            );
        }
        Adam { cfg, m, v, t: 0 }
    }

    /// Applies one update step from the gradients of a backward pass.
    pub fn step(&mut self, store: &mut ParamStore, grads: &Gradients) {
        let collected = store.collect_grads(grads);
        self.step_collected(store, collected);
    }

    /// Applies one update step from pre-collected `(id, grad)` pairs (used to
    /// accumulate gradients over a mini-batch of independent graphs).
    pub fn step_collected(&mut self, store: &mut ParamStore, mut collected: Vec<(ParamId, Tensor)>) {
        if collected.is_empty() {
            return;
        }
        if let Some(max_norm) = self.cfg.clip_norm {
            let total: f32 =
                collected.iter().map(|(_, g)| g.as_slice().iter().map(|x| x * x).sum::<f32>()).sum();
            let norm = total.sqrt();
            if norm > max_norm {
                let scale = max_norm / norm;
                for (_, g) in &mut collected {
                    for x in g.as_mut_slice() {
                        *x *= scale;
                    }
                }
            }
        }
        self.t += 1;
        let t = self.t as f32;
        let bc1 = 1.0 - self.cfg.beta1.powf(t);
        let bc2 = 1.0 - self.cfg.beta2.powf(t);
        for (id, grad) in collected {
            let lr = self.cfg.group_lrs[store.group(id)];
            let (b1, b2, eps) = (self.cfg.beta1, self.cfg.beta2, self.cfg.eps);
            let m = self.m[id.index()].as_mut_slice();
            let v = self.v[id.index()].as_mut_slice();
            let g = grad.as_slice();
            store.update_in_place(id, |w| {
                for i in 0..w.len() {
                    m[i] = b1 * m[i] + (1.0 - b1) * g[i];
                    v[i] = b2 * v[i] + (1.0 - b2) * g[i] * g[i];
                    let mhat = m[i] / bc1;
                    let vhat = v[i] / bc2;
                    w[i] -= lr * mhat / (vhat.sqrt() + eps);
                }
            });
        }
    }

    /// Number of update steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use valuenet_tensor::Graph;

    #[test]
    fn converges_on_quadratic() {
        // Minimise (w - 3)^2.
        let mut ps = ParamStore::new();
        let id = ps.add("w", 0, Tensor::scalar(0.0));
        let mut opt = Adam::new(&ps, AdamConfig { group_lrs: vec![0.2], ..Default::default() });
        for _ in 0..200 {
            let mut g = Graph::new();
            let w = ps.var(&mut g, id);
            let c = g.input(Tensor::scalar(3.0));
            let d = g.sub(w, c);
            let sq = g.mul(d, d);
            let loss = g.sum_all(sq);
            let grads = g.backward(loss);
            opt.step(&mut ps, &grads);
        }
        assert!((ps.get(id).scalar_value() - 3.0).abs() < 1e-2);
        assert_eq!(opt.steps(), 200);
    }

    #[test]
    fn per_group_learning_rates() {
        // Group 1 has lr 0 -> its parameter must not move.
        let mut ps = ParamStore::new();
        let a = ps.add("a", 0, Tensor::scalar(1.0));
        let b = ps.add("b", 1, Tensor::scalar(1.0));
        let mut opt =
            Adam::new(&ps, AdamConfig { group_lrs: vec![0.1, 0.0], ..Default::default() });
        let mut g = Graph::new();
        let va = ps.var(&mut g, a);
        let vb = ps.var(&mut g, b);
        let s = g.add(va, vb);
        let loss = g.sum_all(s);
        let grads = g.backward(loss);
        opt.step(&mut ps, &grads);
        assert!(ps.get(a).scalar_value() < 1.0);
        assert_eq!(ps.get(b).scalar_value(), 1.0);
    }

    #[test]
    fn clipping_bounds_update() {
        let mut ps = ParamStore::new();
        let id = ps.add("w", 0, Tensor::scalar(0.0));
        let mut opt = Adam::new(
            &ps,
            AdamConfig { group_lrs: vec![1.0], clip_norm: Some(0.001), ..Default::default() },
        );
        let mut g = Graph::new();
        let w = ps.var(&mut g, id);
        let k = g.input(Tensor::scalar(1e6));
        let y = g.mul(w, k);
        let c = g.input(Tensor::scalar(1.0));
        let d = g.sub(y, c);
        let sq = g.mul(d, d);
        let loss = g.sum_all(sq);
        let grads = g.backward(loss);
        opt.step(&mut ps, &grads);
        // Even with a huge raw gradient, one Adam step is bounded by ~lr.
        assert!(ps.get(id).scalar_value().abs() <= 1.01);
    }

    #[test]
    #[should_panic(expected = "learning rates")]
    fn missing_group_lr_panics() {
        let mut ps = ParamStore::new();
        ps.add("w", 3, Tensor::scalar(0.0));
        Adam::new(&ps, AdamConfig::default());
    }
}
