//! Named parameter storage shared by all layers.

use serde::{Deserialize, Serialize};
use valuenet_tensor::{Gradients, Graph, Tensor, Var};

/// Handle to a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The raw index, used as the autodiff parameter id.
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Serialize, Deserialize)]
struct ParamEntry {
    name: String,
    group: usize,
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

/// Holds every trainable tensor of a model, each tagged with a name and an
/// optimiser *group* (the paper trains encoder / decoder / connection
/// parameters with different learning rates).
#[derive(Default, Serialize, Deserialize)]
pub struct ParamStore {
    params: Vec<ParamEntry>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a tensor under `name` in optimiser group `group`.
    pub fn add(&mut self, name: impl Into<String>, group: usize, t: Tensor) -> ParamId {
        let (rows, cols) = t.shape();
        self.params.push(ParamEntry {
            name: name.into(),
            group,
            rows,
            cols,
            data: t.as_slice().to_vec(),
        });
        ParamId(self.params.len() - 1)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar weights.
    pub fn num_weights(&self) -> usize {
        self.params.iter().map(|p| p.data.len()).sum()
    }

    /// The current value of a parameter.
    pub fn get(&self, id: ParamId) -> Tensor {
        let p = &self.params[id.0];
        Tensor::from_vec(p.rows, p.cols, p.data.clone())
    }

    /// The optimiser group of a parameter.
    pub fn group(&self, id: ParamId) -> usize {
        self.params[id.0].group
    }

    /// The name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    /// Shape of a parameter without copying its data.
    pub fn shape(&self, id: ParamId) -> (usize, usize) {
        let p = &self.params[id.0];
        (p.rows, p.cols)
    }

    /// Overwrites a parameter value (used by the optimiser).
    pub fn set(&mut self, id: ParamId, t: &Tensor) {
        let p = &mut self.params[id.0];
        assert_eq!((p.rows, p.cols), t.shape(), "ParamStore::set: shape mismatch for {}", p.name);
        p.data.copy_from_slice(t.as_slice());
    }

    /// Applies `f` to the raw weight buffer of a parameter.
    pub fn update_in_place(&mut self, id: ParamId, f: impl FnOnce(&mut [f32])) {
        f(&mut self.params[id.0].data);
    }

    /// Registers the parameter as a node of the autodiff graph so gradients
    /// flow back to it. The value is copied into the tape.
    pub fn var(&self, g: &mut Graph, id: ParamId) -> Var {
        g.param(self.get(id), id.0)
    }

    /// Collects, for each parameter that received a gradient, the summed
    /// gradient tensor. Returned in parameter order.
    pub fn collect_grads(&self, grads: &Gradients) -> Vec<(ParamId, Tensor)> {
        let mut acc: Vec<Option<Tensor>> = vec![None; self.params.len()];
        for (pid, g) in grads.param_grads() {
            match &mut acc[pid] {
                Some(t) => t.add_assign(g),
                slot @ None => *slot = Some(g.clone()),
            }
        }
        acc.into_iter()
            .enumerate()
            .filter_map(|(i, g)| g.map(|g| (ParamId(i), g)))
            .collect()
    }

    /// Serialises all weights to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("ParamStore serialisation cannot fail")
    }

    /// Restores a store previously produced by [`ParamStore::to_json`].
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Iterator over all parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.params.len()).map(ParamId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_set_round_trip() {
        let mut ps = ParamStore::new();
        let id = ps.add("w", 0, Tensor::from_rows(&[&[1.0, 2.0]]));
        assert_eq!(ps.get(id).as_slice(), &[1.0, 2.0]);
        ps.set(id, &Tensor::from_rows(&[&[3.0, 4.0]]));
        assert_eq!(ps.get(id).as_slice(), &[3.0, 4.0]);
        assert_eq!(ps.name(id), "w");
        assert_eq!(ps.group(id), 0);
        assert_eq!(ps.num_weights(), 2);
    }

    #[test]
    fn json_round_trip() {
        let mut ps = ParamStore::new();
        ps.add("a", 0, Tensor::scalar(1.5));
        ps.add("b", 2, Tensor::from_rows(&[&[1.0], &[2.0]]));
        let json = ps.to_json();
        let ps2 = ParamStore::from_json(&json).unwrap();
        assert_eq!(ps2.len(), 2);
        assert_eq!(ps2.get(ParamId(0)).scalar_value(), 1.5);
        assert_eq!(ps2.group(ParamId(1)), 2);
        assert_eq!(ps2.get(ParamId(1)).shape(), (2, 1));
    }

    #[test]
    fn grads_flow_through_store() {
        let mut ps = ParamStore::new();
        let id = ps.add("w", 0, Tensor::scalar(2.0));
        let mut g = Graph::new();
        let w = ps.var(&mut g, id);
        let y = g.mul(w, w);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        let collected = ps.collect_grads(&grads);
        assert_eq!(collected.len(), 1);
        assert_eq!(collected[0].1.scalar_value(), 4.0); // d(w^2)/dw = 2w
    }
}
