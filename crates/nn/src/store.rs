//! Named parameter storage shared by all layers.
//!
//! Besides the raw `f32` buffers, the store owns the *inference cache*: each
//! weight matrix can be packed once into the blocked layout of
//! [`PackedMatrix`] (and optionally quantized to int8 as a
//! [`QuantizedMatrix`]) so that inference-time matmuls skip both the
//! per-use tensor clone of [`ParamStore::var`] and the column-gather of the
//! unpacked kernel. The cache is built lazily under a shared reference (so
//! concurrent evaluation threads can fill it) and invalidated whenever the
//! optimiser writes to a parameter.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use valuenet_tensor::{
    apply_activation, simd, Activation, Gradients, Graph, PackedMatrix, QuantizedMatrix, Tensor,
    Var,
};

/// Handle to a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The raw index, used as the autodiff parameter id.
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Serialize, Deserialize)]
struct ParamEntry {
    name: String,
    group: usize,
    rows: usize,
    cols: usize,
    data: Vec<f32>,
    /// Quantization scale carried over from an int8 checkpoint, if this
    /// parameter was loaded from one. Re-quantizing with the preserved scale
    /// is lossless (the dequantized values round back to the same codes);
    /// cleared on any weight update.
    qscale: Option<f32>,
}

/// One parameter's inference-time form: the blocked f32 packing plus a
/// lazily built int8 quantization of it.
pub struct PackedParam {
    packed: PackedMatrix,
    quant: OnceLock<QuantizedMatrix>,
    qscale: Option<f32>,
}

impl PackedParam {
    /// The blocked f32 packing (bit-identical matmuls to the unpacked kernel).
    pub fn matrix(&self) -> &PackedMatrix {
        &self.packed
    }

    /// The int8 quantization, built on first use. Uses the checkpoint's
    /// preserved scale when one is available.
    pub fn quantized(&self) -> &QuantizedMatrix {
        self.quant.get_or_init(|| QuantizedMatrix::from_packed(&self.packed, self.qscale))
    }
}

/// Holds every trainable tensor of a model, each tagged with a name and an
/// optimiser *group* (the paper trains encoder / decoder / connection
/// parameters with different learning rates).
#[derive(Default)]
pub struct ParamStore {
    params: Vec<ParamEntry>,
    /// Lazily built packed/quantized forms, indexed like `params`.
    packed: RwLock<Vec<Option<Arc<PackedParam>>>>,
    /// When set, the inference helpers use the int8 quantized weights.
    quantized: AtomicBool,
}

impl Serialize for ParamStore {
    fn to_value(&self) -> serde::Value {
        serde::Value::Obj(vec![("params".to_string(), self.params.to_value())])
    }
}

impl Deserialize for ParamStore {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(ParamStore {
            params: Vec::<ParamEntry>::from_value(v.field("params"))?,
            packed: RwLock::new(Vec::new()),
            quantized: AtomicBool::new(false),
        })
    }
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a tensor under `name` in optimiser group `group`.
    pub fn add(&mut self, name: impl Into<String>, group: usize, t: Tensor) -> ParamId {
        let (rows, cols) = t.shape();
        self.params.push(ParamEntry {
            name: name.into(),
            group,
            rows,
            cols,
            data: t.as_slice().to_vec(),
            qscale: None,
        });
        ParamId(self.params.len() - 1)
    }

    /// Registers a parameter from raw parts (checkpoint restore).
    /// `data.len()` must equal `rows * cols`.
    pub(crate) fn add_raw(
        &mut self,
        name: String,
        group: usize,
        rows: usize,
        cols: usize,
        data: Vec<f32>,
        qscale: Option<f32>,
    ) -> ParamId {
        debug_assert_eq!(data.len(), rows * cols, "ParamStore::add_raw: bad shape for {name}");
        self.params.push(ParamEntry { name, group, rows, cols, data, qscale });
        ParamId(self.params.len() - 1)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar weights.
    pub fn num_weights(&self) -> usize {
        self.params.iter().map(|p| p.data.len()).sum()
    }

    /// The current value of a parameter.
    pub fn get(&self, id: ParamId) -> Tensor {
        let p = &self.params[id.0];
        Tensor::from_vec(p.rows, p.cols, p.data.clone())
    }

    /// The raw weight buffer of a parameter, without copying.
    pub fn data(&self, id: ParamId) -> &[f32] {
        &self.params[id.0].data
    }

    /// The optimiser group of a parameter.
    pub fn group(&self, id: ParamId) -> usize {
        self.params[id.0].group
    }

    /// The name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    /// Shape of a parameter without copying its data.
    pub fn shape(&self, id: ParamId) -> (usize, usize) {
        let p = &self.params[id.0];
        (p.rows, p.cols)
    }

    /// The preserved int8 quantization scale, if this parameter was loaded
    /// from a quantized checkpoint and has not been updated since.
    pub fn qscale(&self, id: ParamId) -> Option<f32> {
        self.params[id.0].qscale
    }

    /// Overwrites a parameter value (used by the optimiser).
    pub fn set(&mut self, id: ParamId, t: &Tensor) {
        let p = &mut self.params[id.0];
        assert_eq!((p.rows, p.cols), t.shape(), "ParamStore::set: shape mismatch for {}", p.name);
        p.data.copy_from_slice(t.as_slice());
        self.invalidate(id);
    }

    /// Applies `f` to the raw weight buffer of a parameter.
    pub fn update_in_place(&mut self, id: ParamId, f: impl FnOnce(&mut [f32])) {
        f(&mut self.params[id.0].data);
        self.invalidate(id);
    }

    /// Drops the cached packed/quantized form after a weight update.
    fn invalidate(&mut self, id: ParamId) {
        self.params[id.0].qscale = None;
        let cache = self.packed.get_mut().unwrap();
        if let Some(slot) = cache.get_mut(id.0) {
            *slot = None;
        }
    }

    /// The packed (and lazily quantized) form of a parameter, building and
    /// caching it on first use. Callable under a shared reference so
    /// concurrent inference threads share one packing.
    pub fn packed_param(&self, id: ParamId) -> Arc<PackedParam> {
        {
            let cache = self.packed.read().unwrap();
            if let Some(Some(p)) = cache.get(id.0) {
                return Arc::clone(p);
            }
        }
        let e = &self.params[id.0];
        let built = Arc::new(PackedParam {
            packed: PackedMatrix::pack(&e.data, e.rows, e.cols),
            quant: OnceLock::new(),
            qscale: e.qscale,
        });
        let mut cache = self.packed.write().unwrap();
        if cache.len() < self.params.len() {
            cache.resize(self.params.len(), None);
        }
        match &mut cache[id.0] {
            Some(p) => Arc::clone(p),
            slot @ None => {
                *slot = Some(Arc::clone(&built));
                built
            }
        }
    }

    /// Selects between f32 packed weights and int8 quantized weights for the
    /// inference helpers. Training is unaffected (it never reads the cache).
    pub fn set_quantized(&self, on: bool) {
        self.quantized.store(on, Ordering::Relaxed);
    }

    /// Whether the inference helpers use int8 quantized weights.
    pub fn quantized(&self) -> bool {
        self.quantized.load(Ordering::Relaxed)
    }

    /// Inference-path dense layer: `act(x W + b)` computed off-tape with the
    /// packed (or quantized) weights. Bit-identical to the fused
    /// [`Graph::matmul_bias_act`] training node on the f32 path.
    pub fn forward_linear(
        &self,
        g: &mut Graph,
        x: Var,
        w: ParamId,
        b: Option<ParamId>,
        act: Activation,
    ) -> Var {
        let out = {
            let xt = g.value(x);
            let wp = self.packed_param(w);
            let mut out =
                if self.quantized() { wp.quantized().matmul(xt) } else { wp.matrix().matmul(xt) };
            if let Some(b) = b {
                let bias = self.data(b);
                let lvl = simd::level();
                for r in 0..out.rows() {
                    simd::add_assign_at(lvl, out.row_mut(r), bias);
                }
            }
            apply_activation(&mut out, act);
            out
        };
        g.input(out)
    }

    /// Inference-path LSTM pre-activation: `x Wx + h Wh + b` with packed (or
    /// quantized) weights, summed in the same order as the tape path
    /// (`(zx + zh) + b`), so the f32 result is bit-identical.
    pub fn lstm_preact(
        &self,
        g: &Graph,
        x: Var,
        h: Var,
        wx: ParamId,
        wh: ParamId,
        b: ParamId,
    ) -> Tensor {
        let xt = g.value(x);
        let ht = g.value(h);
        let px = self.packed_param(wx);
        let ph = self.packed_param(wh);
        let quant = self.quantized();
        let mut z = if quant { px.quantized().matmul(xt) } else { px.matrix().matmul(xt) };
        let zh = if quant { ph.quantized().matmul(ht) } else { ph.matrix().matmul(ht) };
        let lvl = simd::level();
        simd::add_assign_at(lvl, z.as_mut_slice(), zh.as_slice());
        let bias = self.data(b);
        for r in 0..z.rows() {
            simd::add_assign_at(lvl, z.row_mut(r), bias);
        }
        z
    }

    /// Inference-path embedding lookup: copies the requested rows straight
    /// out of the store, skipping the tape's full-table parameter clone.
    pub fn gather_rows(&self, g: &mut Graph, table: ParamId, ids: &[usize]) -> Var {
        let t = {
            let e = &self.params[table.0];
            let mut data = Vec::with_capacity(ids.len() * e.cols);
            for &i in ids {
                data.extend_from_slice(&e.data[i * e.cols..(i + 1) * e.cols]);
            }
            Tensor::from_vec(ids.len(), e.cols, data)
        };
        g.input(t)
    }

    /// Registers the parameter as a node of the autodiff graph so gradients
    /// flow back to it. The value is copied into the tape.
    pub fn var(&self, g: &mut Graph, id: ParamId) -> Var {
        g.param(self.get(id), id.0)
    }

    /// Collects, for each parameter that received a gradient, the summed
    /// gradient tensor. Returned in parameter order.
    pub fn collect_grads(&self, grads: &Gradients) -> Vec<(ParamId, Tensor)> {
        let mut acc: Vec<Option<Tensor>> = vec![None; self.params.len()];
        for (pid, g) in grads.param_grads() {
            match &mut acc[pid] {
                Some(t) => t.add_assign(g),
                slot @ None => *slot = Some(g.clone()),
            }
        }
        acc.into_iter()
            .enumerate()
            .filter_map(|(i, g)| g.map(|g| (ParamId(i), g)))
            .collect()
    }

    /// Serialises all weights to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("ParamStore serialisation cannot fail")
    }

    /// Restores a store previously produced by [`ParamStore::to_json`].
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Iterator over all parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.params.len()).map(ParamId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_set_round_trip() {
        let mut ps = ParamStore::new();
        let id = ps.add("w", 0, Tensor::from_rows(&[&[1.0, 2.0]]));
        assert_eq!(ps.get(id).as_slice(), &[1.0, 2.0]);
        ps.set(id, &Tensor::from_rows(&[&[3.0, 4.0]]));
        assert_eq!(ps.get(id).as_slice(), &[3.0, 4.0]);
        assert_eq!(ps.name(id), "w");
        assert_eq!(ps.group(id), 0);
        assert_eq!(ps.num_weights(), 2);
    }

    #[test]
    fn json_round_trip() {
        let mut ps = ParamStore::new();
        ps.add("a", 0, Tensor::scalar(1.5));
        ps.add("b", 2, Tensor::from_rows(&[&[1.0], &[2.0]]));
        let json = ps.to_json();
        let ps2 = ParamStore::from_json(&json).unwrap();
        assert_eq!(ps2.len(), 2);
        assert_eq!(ps2.get(ParamId(0)).scalar_value(), 1.5);
        assert_eq!(ps2.group(ParamId(1)), 2);
        assert_eq!(ps2.get(ParamId(1)).shape(), (2, 1));
    }

    #[test]
    fn grads_flow_through_store() {
        let mut ps = ParamStore::new();
        let id = ps.add("w", 0, Tensor::scalar(2.0));
        let mut g = Graph::new();
        let w = ps.var(&mut g, id);
        let y = g.mul(w, w);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        let collected = ps.collect_grads(&grads);
        assert_eq!(collected.len(), 1);
        assert_eq!(collected[0].1.scalar_value(), 4.0); // d(w^2)/dw = 2w
    }

    #[test]
    fn packed_cache_matches_matmul_and_invalidates() {
        let mut ps = ParamStore::new();
        let w = Tensor::from_vec(3, 5, (0..15).map(|i| i as f32 * 0.25 - 1.0).collect());
        let id = ps.add("w", 0, w.clone());
        let x = Tensor::from_vec(2, 3, vec![0.5, -1.0, 2.0, 0.25, 3.0, -0.75]);
        let want = x.matmul(&w);
        let got = ps.packed_param(id).matrix().matmul(&x);
        assert_eq!(want.as_slice(), got.as_slice());
        // Same Arc on the second lookup.
        assert!(Arc::ptr_eq(&ps.packed_param(id), &ps.packed_param(id)));
        // A weight update drops the cached packing.
        let w2 = Tensor::from_vec(3, 5, vec![1.0; 15]);
        ps.set(id, &w2);
        let got2 = ps.packed_param(id).matrix().matmul(&x);
        assert_eq!(x.matmul(&w2).as_slice(), got2.as_slice());
    }

    #[test]
    fn forward_linear_matches_tape_path_bitwise() {
        let mut ps = ParamStore::new();
        let wid =
            ps.add("l.w", 0, Tensor::from_vec(4, 3, (0..12).map(|i| (i as f32).sin()).collect()));
        let bid = ps.add("l.b", 0, Tensor::from_vec(1, 3, vec![0.1, -0.2, 0.3]));
        let xs = Tensor::from_vec(2, 4, (0..8).map(|i| (i as f32 * 0.7).cos()).collect());

        let mut g = Graph::new();
        let x = g.input(xs.clone());
        let w = ps.var(&mut g, wid);
        let b = ps.var(&mut g, bid);
        let tape = g.matmul_bias_act(x, w, Some(b), Activation::Relu);
        let want: Vec<u32> = g.value(tape).as_slice().iter().map(|v| v.to_bits()).collect();

        let mut g2 = Graph::new();
        let x2 = g2.input(xs);
        let fast = ps.forward_linear(&mut g2, x2, wid, Some(bid), Activation::Relu);
        let got: Vec<u32> = g2.value(fast).as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(want, got);
    }
}
