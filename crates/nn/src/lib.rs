//! Neural-network layers and optimisation on top of [`valuenet_tensor`].
//!
//! This crate supplies the building blocks of the ValueNet architecture
//! (paper Section III-B): embeddings, linear projections, uni- and
//! bi-directional LSTMs (used to summarise multi-token columns, tables and
//! value candidates), multi-head self-attention blocks (the from-scratch
//! substitute for the pretrained BERT encoder), layer normalisation, dropout,
//! and an Adam optimiser with per-group learning rates — the paper trains the
//! encoder, the decoder and the connection parameters with three different
//! rates.
//!
//! All layers follow the same convention: parameters live in a [`ParamStore`]
//! and `forward` takes the autodiff [`Graph`](valuenet_tensor::Graph) plus
//! the store, returning a [`Var`](valuenet_tensor::Var).
//!
//! ```
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//! use valuenet_nn::{Adam, AdamConfig, Linear, ParamStore};
//! use valuenet_tensor::{Graph, Tensor};
//!
//! // Fit y = 3x with a single linear layer.
//! let mut ps = ParamStore::new();
//! let mut rng = SmallRng::seed_from_u64(0);
//! let layer = Linear::new(&mut ps, &mut rng, "l", 0, 1, 1);
//! let mut opt = Adam::new(&ps, AdamConfig { group_lrs: vec![0.1], ..Default::default() });
//! for _ in 0..400 {
//!     let mut g = Graph::new();
//!     let x = g.input(Tensor::from_vec(3, 1, vec![1.0, 2.0, 3.0]));
//!     let t = g.input(Tensor::from_vec(3, 1, vec![3.0, 6.0, 9.0]));
//!     let y = layer.forward(&mut g, &ps, x);
//!     let d = g.sub(y, t);
//!     let sq = g.mul(d, d);
//!     let loss = g.mean_all(sq);
//!     let grads = g.backward(loss);
//!     opt.step(&mut ps, &grads);
//! }
//! let mut g = Graph::new();
//! let x = g.input(Tensor::scalar(2.0));
//! let y = layer.forward(&mut g, &ps, x);
//! assert!((g.value(y).scalar_value() - 6.0).abs() < 0.3);
//! ```

mod adam;
mod attention;
pub mod checkpoint;
mod init;
mod linear;
mod lstm;
mod store;

pub use adam::{Adam, AdamConfig};
pub use attention::{padding_mask, FeedForward, LayerNorm, MultiHeadAttention, TransformerBlock};
pub use checkpoint::{
    load_checkpoint, save_checkpoint, save_checkpoint_quantized, CheckpointError,
    CheckpointFormat, CHECKPOINT_VERSION,
};
pub use init::Initializer;
pub use linear::{Embedding, Linear};
pub use lstm::{BiLstm, Lstm, LstmCell, LstmState};
pub use store::{PackedParam, ParamId, ParamStore};

use std::sync::atomic::{AtomicU8, Ordering};

/// 0 = read `VN_PACKED` on first use, 1 = on, 2 = off.
static PACKED_INFERENCE: AtomicU8 = AtomicU8::new(0);

/// Whether layers route inference-mode forwards through the packed-weight
/// cache ([`ParamStore::packed_param`]). Defaults to on; `VN_PACKED=0`
/// disables it from the environment (the f32 results are bit-identical
/// either way — only speed changes).
pub fn packed_inference_enabled() -> bool {
    match PACKED_INFERENCE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let off = matches!(
                std::env::var("VN_PACKED").ok().as_deref(),
                Some("0") | Some("off") | Some("false")
            );
            PACKED_INFERENCE.store(if off { 2 } else { 1 }, Ordering::Relaxed);
            !off
        }
    }
}

/// Overrides the packed-inference toggle (used by benchmarks to measure the
/// unpacked baseline).
pub fn set_packed_inference(on: bool) {
    PACKED_INFERENCE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Samples an inverted-dropout mask of `len` entries with drop probability
/// `p`: each entry is `0.0` with probability `p`, otherwise `1/(1-p)`.
pub fn dropout_mask(rng: &mut impl rand::Rng, len: usize, p: f32) -> Vec<f32> {
    assert!((0.0..1.0).contains(&p), "dropout probability must be in [0,1)");
    let keep = 1.0 - p;
    (0..len).map(|_| if rng.gen::<f32>() < p { 0.0 } else { 1.0 / keep }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn dropout_mask_is_inverted_and_unbiased() {
        let mut rng = SmallRng::seed_from_u64(9);
        let p = 0.3;
        let mask = dropout_mask(&mut rng, 20_000, p);
        let keep_scale = 1.0 / (1.0 - p);
        assert!(mask.iter().all(|&m| m == 0.0 || (m - keep_scale).abs() < 1e-6));
        // Mean of the mask ≈ 1 (inverted dropout preserves expectation).
        let mean: f32 = mask.iter().sum::<f32>() / mask.len() as f32;
        assert!((mean - 1.0).abs() < 0.05, "mask mean {mean}");
        // Drop rate ≈ p.
        let dropped = mask.iter().filter(|&&m| m == 0.0).count() as f32 / mask.len() as f32;
        assert!((dropped - p).abs() < 0.02, "drop rate {dropped}");
    }

    #[test]
    fn dropout_mask_zero_probability_is_identity() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mask = dropout_mask(&mut rng, 100, 0.0);
        assert!(mask.iter().all(|&m| m == 1.0));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn dropout_mask_rejects_p_one() {
        let mut rng = SmallRng::seed_from_u64(9);
        dropout_mask(&mut rng, 10, 1.0);
    }
}
