//! Checkpoint round-trip and rejection tests.

use valuenet_nn::{
    load_checkpoint, save_checkpoint, save_checkpoint_quantized, CheckpointError,
    CheckpointFormat, ParamStore,
};
use valuenet_tensor::Tensor;

fn tmp_path(tag: &str) -> String {
    let mut p = std::env::temp_dir();
    p.push(format!("vn_ckpt_{}_{}.jsonl", tag, std::process::id()));
    p.to_str().unwrap().to_string()
}

/// A store with shapes and value ranges resembling the real model's.
fn sample_store() -> ParamStore {
    let mut ps = ParamStore::new();
    let mut s = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 40) as f32 / 8388608.0 - 1.0
    };
    for (name, group, rows, cols) in
        [("enc.w", 0usize, 7usize, 12usize), ("enc.b", 0, 1, 12), ("dec.wx", 1, 12, 20), ("out.w", 2, 5, 3)]
    {
        let data: Vec<f32> = (0..rows * cols).map(|_| next()).collect();
        ps.add(name, group, Tensor::from_vec(rows, cols, data));
    }
    ps
}

fn assert_stores_bit_identical(a: &ParamStore, b: &ParamStore) {
    assert_eq!(a.len(), b.len());
    for (ia, ib) in a.ids().zip(b.ids()) {
        assert_eq!(a.name(ia), b.name(ib));
        assert_eq!(a.group(ia), b.group(ib));
        assert_eq!(a.shape(ia), b.shape(ib));
        let bits_a: Vec<u32> = a.data(ia).iter().map(|v| v.to_bits()).collect();
        let bits_b: Vec<u32> = b.data(ib).iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits_a, bits_b, "weights differ for {}", a.name(ia));
    }
}

#[test]
fn f32_round_trip_is_bit_identical() {
    let ps = sample_store();
    let path = tmp_path("f32");
    save_checkpoint(&path, &ps).unwrap();
    let (loaded, format) = load_checkpoint(&path).unwrap();
    assert_eq!(format, CheckpointFormat::F32);
    assert_stores_bit_identical(&ps, &loaded);
    assert!(loaded.ids().all(|id| loaded.qscale(id).is_none()));
    std::fs::remove_file(&path).ok();
}

#[test]
fn int8_round_trip_preserves_scale_and_is_idempotent() {
    let ps = sample_store();
    let path1 = tmp_path("int8_a");
    let path2 = tmp_path("int8_b");
    save_checkpoint_quantized(&path1, &ps).unwrap();
    let (loaded, format) = load_checkpoint(&path1).unwrap();
    assert_eq!(format, CheckpointFormat::Int8);
    // Every tensor carries its preserved scale after an int8 load.
    assert!(loaded.ids().all(|id| loaded.qscale(id).is_some()));
    // Re-saving the dequantized store reproduces the exact same codes.
    save_checkpoint_quantized(&path2, &loaded).unwrap();
    assert_eq!(std::fs::read_to_string(&path1).unwrap(), std::fs::read_to_string(&path2).unwrap());
    // And a second load is a fixed point.
    let (loaded2, _) = load_checkpoint(&path2).unwrap();
    assert_stores_bit_identical(&loaded, &loaded2);
    std::fs::remove_file(&path1).ok();
    std::fs::remove_file(&path2).ok();
}

#[test]
fn int8_error_is_within_half_step() {
    let ps = sample_store();
    let path = tmp_path("int8_err");
    save_checkpoint_quantized(&path, &ps).unwrap();
    let (loaded, _) = load_checkpoint(&path).unwrap();
    for (ia, ib) in ps.ids().zip(loaded.ids()) {
        let scale = loaded.qscale(ib).unwrap();
        for (x, y) in ps.data(ia).iter().zip(loaded.data(ib)) {
            assert!(
                (x - y).abs() <= 0.5 * scale + 1e-7,
                "dequantized {y} too far from {x} (scale {scale})"
            );
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_file_is_rejected() {
    let ps = sample_store();
    let path = tmp_path("trunc");
    save_checkpoint(&path, &ps).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines: Vec<&str> = text.lines().collect();
    lines.pop(); // drop checkpoint_end
    std::fs::write(&path, lines.join("\n")).unwrap();
    match load_checkpoint(&path) {
        Err(CheckpointError::Truncated(_)) => {}
        Err(e) => panic!("expected Truncated, got {e:?}"),
        Ok(_) => panic!("expected Truncated, load succeeded"),
    }
    // Dropping a param line too makes the end-count inconsistent.
    save_checkpoint(&path, &ps).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines: Vec<&str> = text.lines().collect();
    lines.remove(2);
    std::fs::write(&path, lines.join("\n")).unwrap();
    match load_checkpoint(&path) {
        Err(CheckpointError::Truncated(_)) => {}
        Err(e) => panic!("expected Truncated, got {e:?}"),
        Ok(_) => panic!("expected Truncated, load succeeded"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupted_and_unversioned_files_are_rejected() {
    let path = tmp_path("garbage");
    std::fs::write(&path, "not json at all\n").unwrap();
    match load_checkpoint(&path) {
        Err(CheckpointError::Parse(_)) => {}
        Err(e) => panic!("expected Parse, got {e:?}"),
        Ok(_) => panic!("expected Parse, load succeeded"),
    }

    // A future checkpoint_version must be refused, not misread.
    let ps = sample_store();
    save_checkpoint(&path, &ps).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let bumped = text.replace("\"checkpoint_version\":1", "\"checkpoint_version\":99");
    std::fs::write(&path, bumped).unwrap();
    match load_checkpoint(&path) {
        Err(CheckpointError::Version(msg)) => {
            assert!(msg.contains("99"), "unhelpful message: {msg}")
        }
        Err(e) => panic!("expected Version, got {e:?}"),
        Ok(_) => panic!("expected Version, load succeeded"),
    }

    // A shape/payload mismatch is corrupt.
    save_checkpoint(&path, &ps).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let bad = text.replace("\"rows\":7", "\"rows\":9");
    std::fs::write(&path, bad).unwrap();
    match load_checkpoint(&path) {
        Err(CheckpointError::Corrupt(_)) => {}
        Err(e) => panic!("expected Corrupt, got {e:?}"),
        Ok(_) => panic!("expected Corrupt, load succeeded"),
    }

    // Missing file surfaces as Io.
    std::fs::remove_file(&path).ok();
    match load_checkpoint(&path) {
        Err(CheckpointError::Io(_)) => {}
        Err(e) => panic!("expected Io, got {e:?}"),
        Ok(_) => panic!("expected Io, load succeeded"),
    }
}
