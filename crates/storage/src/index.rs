//! Inverted index over the base data.

use crate::{damerau_levenshtein, Database, Datum};
use std::collections::{BTreeSet, HashMap, HashSet};
use valuenet_schema::ColumnId;

/// Where a value was found: a column (its table is derivable from the
/// schema). The candidate-validation step registers these locations so the
/// encoder can encode each value *together with* its table and column
/// (paper Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ValueLocation {
    /// Column containing the value.
    pub column: ColumnId,
}

/// A database value found by similarity search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimilarValue {
    /// Column the value occurs in.
    pub column: ColumnId,
    /// The value exactly as stored in the database.
    pub value: String,
    /// Damerau–Levenshtein distance to the query.
    pub distance: usize,
}

/// An inverted index over every column of a database: per-column distinct
/// values (for exact and similarity lookup) plus a token → columns map (for
/// hint generation).
#[derive(Debug, Default)]
pub struct InvertedIndex {
    /// Distinct values per column, original spelling, indexed by `ColumnId.0`.
    distinct: Vec<Vec<String>>,
    /// Normalised (lowercased) distinct values per column for O(1) exact lookup.
    normalized: Vec<HashSet<String>>,
    /// Lowercased word token → columns whose values contain that word.
    tokens: HashMap<String, BTreeSet<usize>>,
}

impl InvertedIndex {
    /// Builds the index by scanning every row of `db`.
    pub fn build(db: &Database) -> Self {
        let schema = db.schema();
        let mut distinct: Vec<Vec<String>> = vec![Vec::new(); schema.columns.len()];
        let mut normalized: Vec<HashSet<String>> = vec![HashSet::new(); schema.columns.len()];
        let mut tokens: HashMap<String, BTreeSet<usize>> = HashMap::new();
        for (ti, table) in schema.tables.iter().enumerate() {
            for row in db.rows(valuenet_schema::TableId(ti)) {
                for (off, &cid) in table.columns.iter().enumerate() {
                    let text = match &row[off] {
                        Datum::Null => continue,
                        Datum::Int(i) => i.to_string(),
                        Datum::Float(f) => f.to_string(),
                        Datum::Text(s) => s.clone(),
                    };
                    let norm = text.to_lowercase();
                    if normalized[cid.0].insert(norm.clone()) {
                        distinct[cid.0].push(text);
                    }
                    for tok in norm.split(|c: char| !c.is_alphanumeric()) {
                        if !tok.is_empty() {
                            tokens.entry(tok.to_string()).or_default().insert(cid.0);
                        }
                    }
                }
            }
        }
        InvertedIndex { distinct, normalized, tokens }
    }

    /// Columns whose base data contains `value` exactly (case-insensitive).
    pub fn find_exact(&self, value: &str) -> Vec<ColumnId> {
        let norm = value.to_lowercase();
        self.normalized
            .iter()
            .enumerate()
            .filter(|(_, set)| set.contains(&norm))
            .map(|(i, _)| ColumnId(i))
            .collect()
    }

    /// Whether `value` occurs exactly (case-insensitively) in `column`.
    pub fn contains(&self, column: ColumnId, value: &str) -> bool {
        self.normalized
            .get(column.0)
            .is_some_and(|set| set.contains(&value.to_lowercase()))
    }

    /// Columns whose values contain the given word `token`
    /// (case-insensitive). Used for question/schema hint generation.
    pub fn find_token(&self, token: &str) -> Vec<ColumnId> {
        self.tokens
            .get(&token.to_lowercase())
            .map(|set| set.iter().map(|&i| ColumnId(i)).collect())
            .unwrap_or_default()
    }

    /// Database values within Damerau–Levenshtein `max_dist` of `query`
    /// (case-insensitive), sorted by ascending distance then column.
    ///
    /// Length blocking skips values whose length differs from the query by
    /// more than `max_dist` — the cheap "blocking/indexing" optimisation the
    /// paper cites from the record-linkage literature.
    pub fn find_similar(&self, query: &str, max_dist: usize) -> Vec<SimilarValue> {
        let qnorm = query.to_lowercase();
        let qlen = qnorm.chars().count();
        let mut out = Vec::new();
        for (ci, values) in self.distinct.iter().enumerate() {
            for v in values {
                let vlen = v.chars().count();
                if vlen.abs_diff(qlen) > max_dist {
                    continue;
                }
                let d = damerau_levenshtein(&qnorm, &v.to_lowercase());
                if d <= max_dist {
                    out.push(SimilarValue { column: ColumnId(ci), value: v.clone(), distance: d });
                }
            }
        }
        out.sort_by(|a, b| a.distance.cmp(&b.distance).then(a.column.cmp(&b.column)));
        out
    }

    /// Distinct values of `column` matching a SQL LIKE `pattern`
    /// (case-insensitive). Used e.g. by the month heuristic (`8/%`).
    pub fn find_like(&self, column: ColumnId, pattern: &str) -> Vec<String> {
        let pnorm = pattern.to_lowercase();
        self.distinct
            .get(column.0)
            .map(|vals| {
                vals.iter()
                    .filter(|v| like_match(&pnorm, &v.to_lowercase()))
                    .cloned()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Distinct values of `column` matching a LIKE pattern, over all columns.
    pub fn find_like_anywhere(&self, pattern: &str) -> Vec<(ColumnId, String)> {
        let pnorm = pattern.to_lowercase();
        let mut out = Vec::new();
        for (ci, vals) in self.distinct.iter().enumerate() {
            for v in vals {
                if like_match(&pnorm, &v.to_lowercase()) {
                    out.push((ColumnId(ci), v.clone()));
                }
            }
        }
        out
    }

    /// All distinct values stored for `column` (original spelling).
    pub fn distinct_values(&self, column: ColumnId) -> &[String] {
        self.distinct.get(column.0).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of distinct values across all columns.
    pub fn num_values(&self) -> usize {
        self.distinct.iter().map(Vec::len).sum()
    }
}

/// SQL LIKE matching with `%` (any run) and `_` (any single char).
/// Case-sensitive; normalise both sides for case-insensitive matching.
pub fn like_match(pattern: &str, text: &str) -> bool {
    fn rec(p: &[char], t: &[char]) -> bool {
        match p.split_first() {
            None => t.is_empty(),
            Some(('%', rest)) => {
                (0..=t.len()).any(|k| rec(rest, &t[k..]))
            }
            Some(('_', rest)) => !t.is_empty() && rec(rest, &t[1..]),
            Some((&c, rest)) => t.first() == Some(&c) && rec(rest, &t[1..]),
        }
    }
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    rec(&p, &t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_match_semantics() {
        assert!(like_match("%ah%", "sarah"));
        assert!(like_match("ha%", "harry"));
        assert!(!like_match("ha%", "sarah"));
        assert!(like_match("%", ""));
        assert!(like_match("a_c", "abc"));
        assert!(!like_match("a_c", "ac"));
        assert!(like_match("8/%", "8/9/2010"));
        assert!(!like_match("8/%", "18/9/2010"));
        assert!(like_match("abc", "abc"));
        assert!(!like_match("abc", "abcd"));
        assert!(like_match("%goodbye%", "goodbye yellow brick road"));
    }
}
