//! Runtime values stored in tables and produced by the executor.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A single cell value.
///
/// The derived `PartialEq` is structural (`Int(2) != Float(2.0)`); use
/// [`Datum::sql_eq`] / [`Datum::result_eq`] for SQL value semantics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Datum {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Text.
    Text(String),
}

impl Datum {
    /// Whether the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Datum::Null)
    }

    /// Numeric view (ints widen to floats); `None` for NULL and text.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Datum::Int(i) => Some(*i as f64),
            Datum::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Text view; `None` for non-text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Datum::Text(s) => Some(s),
            _ => None,
        }
    }

    /// SQL three-valued-logic equality collapsed to two values: NULL never
    /// equals anything (including NULL). Numeric types compare by value, so
    /// `Int(2) == Float(2.0)`.
    pub fn sql_eq(&self, other: &Datum) -> bool {
        match (self, other) {
            (Datum::Null, _) | (_, Datum::Null) => false,
            (Datum::Text(a), Datum::Text(b)) => a == b,
            (a, b) => match (a.as_number(), b.as_number()) {
                (Some(x), Some(y)) => x == y,
                // Text vs number: compare textually after number-to-string
                // coercion fails; SQLite would attempt affinity conversion,
                // we simply treat them as unequal.
                _ => false,
            },
        }
    }

    /// SQL comparison; `None` when either side is NULL or the types are
    /// incomparable. Numbers order numerically, text lexicographically.
    pub fn sql_cmp(&self, other: &Datum) -> Option<Ordering> {
        match (self, other) {
            (Datum::Null, _) | (_, Datum::Null) => None,
            (Datum::Text(a), Datum::Text(b)) => Some(a.cmp(b)),
            (a, b) => match (a.as_number(), b.as_number()) {
                (Some(x), Some(y)) => x.partial_cmp(&y),
                _ => None,
            },
        }
    }

    /// Total ordering for deterministic sorting of result sets: NULL first,
    /// then numbers, then text.
    pub fn total_cmp(&self, other: &Datum) -> Ordering {
        fn rank(d: &Datum) -> u8 {
            match d {
                Datum::Null => 0,
                Datum::Int(_) | Datum::Float(_) => 1,
                Datum::Text(_) => 2,
            }
        }
        match (self, other) {
            (Datum::Null, Datum::Null) => Ordering::Equal,
            (Datum::Text(a), Datum::Text(b)) => a.cmp(b),
            (a, b) if rank(a) == 1 && rank(b) == 1 => {
                let (x, y) = (a.as_number().unwrap(), b.as_number().unwrap());
                x.partial_cmp(&y).unwrap_or(Ordering::Equal)
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Approximate equality used by the Execution Accuracy comparison:
    /// exact for text/ints, tolerance `1e-6` relative for floats (the
    /// official Spider script likewise compares executed results leniently).
    pub fn result_eq(&self, other: &Datum) -> bool {
        match (self, other) {
            (Datum::Null, Datum::Null) => true,
            (Datum::Text(a), Datum::Text(b)) => a == b,
            (a, b) => match (a.as_number(), b.as_number()) {
                (Some(x), Some(y)) => {
                    (x - y).abs() <= 1e-6 * (1.0 + x.abs().max(y.abs()))
                }
                _ => false,
            },
        }
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Null => write!(f, "NULL"),
            Datum::Int(i) => write!(f, "{i}"),
            Datum::Float(x) => write!(f, "{x}"),
            Datum::Text(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Datum {
    fn from(v: i64) -> Self {
        Datum::Int(v)
    }
}

impl From<f64> for Datum {
    fn from(v: f64) -> Self {
        Datum::Float(v)
    }
}

impl From<&str> for Datum {
    fn from(v: &str) -> Self {
        Datum::Text(v.to_string())
    }
}

impl From<String> for Datum {
    fn from(v: String) -> Self {
        Datum::Text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_never_equals() {
        assert!(!Datum::Null.sql_eq(&Datum::Null));
        assert!(!Datum::Null.sql_eq(&Datum::Int(1)));
        assert!(Datum::Null.sql_cmp(&Datum::Int(1)).is_none());
    }

    #[test]
    fn cross_numeric_equality() {
        assert!(Datum::Int(2).sql_eq(&Datum::Float(2.0)));
        assert!(!Datum::Int(2).sql_eq(&Datum::Float(2.5)));
        assert_eq!(Datum::Int(2).sql_cmp(&Datum::Float(2.5)), Some(Ordering::Less));
    }

    #[test]
    fn text_vs_number_incomparable() {
        assert!(!Datum::Text("2".into()).sql_eq(&Datum::Int(2)));
        assert!(Datum::Text("a".into()).sql_cmp(&Datum::Int(2)).is_none());
    }

    #[test]
    fn total_order_is_total() {
        let vals = [
            Datum::Null,
            Datum::Int(1),
            Datum::Float(1.5),
            Datum::Text("a".into()),
            Datum::Text("b".into()),
        ];
        let mut sorted = vals.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        assert!(matches!(sorted[0], Datum::Null));
        assert!(matches!(sorted[4], Datum::Text(ref s) if s == "b"));
    }

    #[test]
    fn result_eq_tolerates_float_noise() {
        assert!(Datum::Float(1.0).result_eq(&Datum::Float(1.0 + 1e-8)));
        assert!(Datum::Int(3).result_eq(&Datum::Float(3.0)));
        assert!(!Datum::Float(1.0).result_eq(&Datum::Float(1.01)));
        assert!(Datum::Null.result_eq(&Datum::Null));
        assert!(!Datum::Null.result_eq(&Datum::Int(0)));
    }
}
