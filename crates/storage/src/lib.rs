//! In-memory database storage with an inverted index over the base data.
//!
//! The ValueNet architecture (paper Fig. 5) takes "access to the content of
//! the database, e.g. via an inverted index" as an input. This crate supplies
//! that substrate: row storage typed by a [`valuenet_schema::DbSchema`], plus
//! an [`InvertedIndex`] supporting the three lookups the value-candidate
//! pipeline needs —
//!
//! 1. *exact* value lookup (candidate validation, Section IV-B3),
//! 2. *token* lookup (question/schema hints, Section III-A),
//! 3. *similarity* lookup via Damerau–Levenshtein distance with length
//!    blocking (candidate generation, Section IV-B2).

mod database;
mod datum;
mod distance;
mod index;

pub use database::Database;
pub use datum::Datum;
pub use distance::damerau_levenshtein;
pub use index::{like_match, InvertedIndex, SimilarValue, ValueLocation};
