//! Damerau–Levenshtein string distance.
//!
//! The paper (Section IV-B2) picks Damerau–Levenshtein for candidate
//! generation "because of its good trade-off between accuracy and run time".
//! This is the optimal-string-alignment variant (each substring may be
//! transposed at most once), computed over Unicode scalar values with a
//! rolling three-row buffer.

/// Damerau–Levenshtein (optimal string alignment) distance between `a` and
/// `b`, case-sensitive. Compare lowercased inputs for the case-insensitive
/// behaviour the candidate generator uses.
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    // Three rows: i-2, i-1, i.
    let mut prev2 = vec![0usize; m + 1];
    let mut prev1: Vec<usize> = (0..=m).collect();
    let mut cur = vec![0usize; m + 1];
    for i in 1..=n {
        cur[0] = i;
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut d = (prev1[j] + 1) // deletion
                .min(cur[j - 1] + 1) // insertion
                .min(prev1[j - 1] + cost); // substitution
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                d = d.min(prev2[j - 2] + 1); // transposition
            }
            cur[j] = d;
        }
        std::mem::swap(&mut prev2, &mut prev1);
        std::mem::swap(&mut prev1, &mut cur);
    }
    prev1[m]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_distances() {
        assert_eq!(damerau_levenshtein("", ""), 0);
        assert_eq!(damerau_levenshtein("abc", "abc"), 0);
        assert_eq!(damerau_levenshtein("abc", ""), 3);
        assert_eq!(damerau_levenshtein("", "abc"), 3);
        assert_eq!(damerau_levenshtein("kitten", "sitting"), 3);
        assert_eq!(damerau_levenshtein("ca", "abc"), 3); // OSA (not full DL) = 3
        assert_eq!(damerau_levenshtein("ab", "ba"), 1); // transposition
        assert_eq!(damerau_levenshtein("france", "frnace"), 1);
        assert_eq!(damerau_levenshtein("JFK", "JKF"), 1);
        assert_eq!(damerau_levenshtein("professor", "professors"), 1);
    }

    #[test]
    fn transposition_cheaper_than_two_edits() {
        // Plain Levenshtein would give 2 here.
        assert_eq!(damerau_levenshtein("abcd", "acbd"), 1);
    }

    #[test]
    fn unicode_chars_count_once() {
        assert_eq!(damerau_levenshtein("zürich", "zurich"), 1);
    }

    proptest! {
        #[test]
        fn identity(s in "[a-z]{0,12}") {
            prop_assert_eq!(damerau_levenshtein(&s, &s), 0);
        }

        #[test]
        fn symmetry(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
            prop_assert_eq!(damerau_levenshtein(&a, &b), damerau_levenshtein(&b, &a));
        }

        #[test]
        fn bounded_by_longer_length(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
            let d = damerau_levenshtein(&a, &b);
            let max = a.chars().count().max(b.chars().count());
            let min = a.chars().count().min(b.chars().count());
            prop_assert!(d <= max);
            prop_assert!(d >= max - min);
        }

        #[test]
        fn single_edit_is_distance_one(s in "[a-z]{2,10}", idx in 0usize..8, c in proptest::char::range('a', 'z')) {
            let chars: Vec<char> = s.chars().collect();
            let i = idx % chars.len();
            if chars[i] != c {
                let mut edited = chars.clone();
                edited[i] = c;
                let edited: String = edited.into_iter().collect();
                prop_assert_eq!(damerau_levenshtein(&s, &edited), 1);
            }
        }
    }
}
