//! Row storage typed by a schema.

use crate::{Datum, InvertedIndex};
use valuenet_schema::{ColumnId, DbSchema, TableId};

/// An in-memory database: a schema, one row store per table, and an inverted
/// index over all base data.
///
/// Rows are stored in schema column order. After the last `insert`, call
/// [`Database::rebuild_index`] (or construct via [`Database::with_rows`],
/// which does it for you) before using [`Database::index`].
pub struct Database {
    schema: DbSchema,
    tables: Vec<Vec<Vec<Datum>>>,
    index: Option<InvertedIndex>,
}

impl Database {
    /// An empty database for the given schema.
    pub fn new(schema: DbSchema) -> Self {
        let tables = vec![Vec::new(); schema.tables.len()];
        Database { schema, tables, index: None }
    }

    /// Builds a database and its index in one go. `rows[t]` holds the rows of
    /// table `t` in schema order.
    pub fn with_rows(schema: DbSchema, rows: Vec<Vec<Vec<Datum>>>) -> Self {
        assert_eq!(rows.len(), schema.tables.len(), "one row set per table required");
        let mut db = Database { schema, tables: rows, index: None };
        for (ti, table) in db.schema.tables.iter().enumerate() {
            for row in &db.tables[ti] {
                assert_eq!(
                    row.len(),
                    table.columns.len(),
                    "row arity mismatch in table {}",
                    table.name
                );
            }
        }
        db.rebuild_index();
        db
    }

    /// The schema.
    pub fn schema(&self) -> &DbSchema {
        &self.schema
    }

    /// Inserts a row (schema column order). Invalidates the index.
    ///
    /// # Panics
    /// Panics if the row arity does not match the table.
    pub fn insert(&mut self, table: TableId, row: Vec<Datum>) {
        let expected = self.schema.tables[table.0].columns.len();
        assert_eq!(
            row.len(),
            expected,
            "insert into {}: expected {expected} values, got {}",
            self.schema.tables[table.0].name,
            row.len()
        );
        self.tables[table.0].push(row);
        self.index = None;
    }

    /// All rows of a table.
    pub fn rows(&self, table: TableId) -> &[Vec<Datum>] {
        &self.tables[table.0]
    }

    /// Total number of rows across all tables.
    pub fn num_rows(&self) -> usize {
        self.tables.iter().map(Vec::len).sum()
    }

    /// (Re)builds the inverted index from the current contents.
    pub fn rebuild_index(&mut self) {
        // Temporarily take the index out to satisfy the borrow checker: the
        // build only reads schema and rows.
        self.index = None;
        let idx = InvertedIndex::build(self);
        self.index = Some(idx);
    }

    /// The inverted index.
    ///
    /// # Panics
    /// Panics if rows were inserted since the last [`Database::rebuild_index`].
    pub fn index(&self) -> &InvertedIndex {
        self.index
            .as_ref()
            .expect("index is stale: call Database::rebuild_index() after inserts")
    }

    /// Maps a column to its table and offset within that table's rows.
    ///
    /// # Panics
    /// Panics for the `*` pseudo-column.
    pub fn column_offset(&self, column: ColumnId) -> (TableId, usize) {
        let col = self.schema.column(column);
        let table = col.table.expect("column_offset on the * pseudo-column");
        let off = self.schema.tables[table.0]
            .columns
            .iter()
            .position(|&c| c == column)
            .expect("column listed in its table");
        (table, off)
    }

    /// Iterates over all (non-null included) values of a column.
    pub fn column_values(&self, column: ColumnId) -> impl Iterator<Item = &Datum> {
        let (table, off) = self.column_offset(column);
        self.tables[table.0].iter().map(move |row| &row[off])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use valuenet_schema::{ColumnType, SchemaBuilder};

    fn demo_db() -> Database {
        let schema = SchemaBuilder::new("demo")
            .table(
                "student",
                &[
                    ("stu_id", ColumnType::Number),
                    ("name", ColumnType::Text),
                    ("age", ColumnType::Number),
                    ("home_country", ColumnType::Text),
                ],
            )
            .primary_key("student", "stu_id")
            .table("pet", &[("pet_id", ColumnType::Number), ("pet_type", ColumnType::Text)])
            .build();
        let mut db = Database::new(schema);
        let student = db.schema().table_by_name("student").unwrap();
        let pet = db.schema().table_by_name("pet").unwrap();
        db.insert(student, vec![1.into(), "Alice".into(), 21.into(), "France".into()]);
        db.insert(student, vec![2.into(), "Bob".into(), 19.into(), "Germany".into()]);
        db.insert(student, vec![3.into(), "Carol".into(), 23.into(), "France".into()]);
        db.insert(pet, vec![1.into(), "dog".into()]);
        db.insert(pet, vec![2.into(), "cat".into()]);
        db.rebuild_index();
        db
    }

    #[test]
    fn insert_and_read_back() {
        let db = demo_db();
        let student = db.schema().table_by_name("student").unwrap();
        assert_eq!(db.rows(student).len(), 3);
        assert_eq!(db.num_rows(), 5);
        assert!(db.rows(student)[0][1].sql_eq(&Datum::Text("Alice".into())));
    }

    #[test]
    #[should_panic(expected = "expected 2 values")]
    fn arity_mismatch_panics() {
        let mut db = demo_db();
        let pet = db.schema().table_by_name("pet").unwrap();
        db.insert(pet, vec![1.into()]);
    }

    #[test]
    #[should_panic(expected = "stale")]
    fn stale_index_panics() {
        let mut db = demo_db();
        let pet = db.schema().table_by_name("pet").unwrap();
        db.insert(pet, vec![3.into(), "bird".into()]);
        let _ = db.index();
    }

    #[test]
    fn column_offset_and_values() {
        let db = demo_db();
        let student = db.schema().table_by_name("student").unwrap();
        let age = db.schema().column_by_name(student, "age").unwrap();
        let (t, off) = db.column_offset(age);
        assert_eq!(t, student);
        assert_eq!(off, 2);
        let ages: Vec<f64> = db.column_values(age).map(|d| d.as_number().unwrap()).collect();
        assert_eq!(ages, vec![21.0, 19.0, 23.0]);
    }

    #[test]
    fn exact_lookup_finds_columns() {
        let db = demo_db();
        let student = db.schema().table_by_name("student").unwrap();
        let country = db.schema().column_by_name(student, "home_country").unwrap();
        let cols = db.index().find_exact("france");
        assert_eq!(cols, vec![country]);
        assert!(db.index().contains(country, "France"));
        assert!(!db.index().contains(country, "Spain"));
        // Numbers are indexed by their canonical text form.
        let age = db.schema().column_by_name(student, "age").unwrap();
        assert!(db.index().find_exact("21").contains(&age));
    }

    #[test]
    fn similarity_lookup_ranks_by_distance() {
        let db = demo_db();
        let hits = db.index().find_similar("Frence", 2);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].value, "France");
        assert_eq!(hits[0].distance, 1);
    }

    #[test]
    fn token_lookup() {
        let db = demo_db();
        let student = db.schema().table_by_name("student").unwrap();
        let name = db.schema().column_by_name(student, "name").unwrap();
        assert!(db.index().find_token("alice").contains(&name));
        assert!(db.index().find_token("nosuchtoken").is_empty());
    }

    #[test]
    fn index_counts_distinct_only() {
        let db = demo_db();
        // "France" appears twice but is one distinct value.
        let student = db.schema().table_by_name("student").unwrap();
        let country = db.schema().column_by_name(student, "home_country").unwrap();
        assert_eq!(db.index().distinct_values(country).len(), 2);
    }

    #[test]
    fn like_lookup() {
        let db = demo_db();
        let student = db.schema().table_by_name("student").unwrap();
        let name = db.schema().column_by_name(student, "name").unwrap();
        assert_eq!(db.index().find_like(name, "%li%"), vec!["Alice".to_string()]);
        let hits = db.index().find_like_anywhere("%o%");
        assert!(hits.iter().any(|(_, v)| v == "Bob"));
        assert!(hits.iter().any(|(_, v)| v == "dog"));
    }
}
