//! Deterministic data parallelism on scoped threads.
//!
//! The engine fans work out over a fixed worker count and guarantees that the
//! *observable result is independent of thread count and scheduling*:
//!
//! * [`par_map`] preserves input order — the output at index `i` is always
//!   `f(&items[i])`, regardless of which worker computed it.
//! * [`par_map_reduce`] reduces the mapped values **sequentially in input
//!   order** on the calling thread. Floating-point addition is not
//!   associative, so a tree- or arrival-order reduction would make sums
//!   depend on scheduling; folding in a canonical order makes parallel runs
//!   bit-identical to sequential ones.
//!
//! Workers are plain [`std::thread::scope`] threads claiming fixed
//! contiguous chunks (no work stealing, no queues, no extra dependencies).
//! With `threads <= 1` or tiny inputs the closure runs inline on the caller,
//! so the sequential path *is* the parallel path with one worker.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Thread count configured for the process; 0 means "not set, use auto".
static CONFIGURED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default worker count used when callers pass
/// `threads = 0` to the fan-out functions. `0` restores auto-detection.
pub fn set_threads(threads: usize) {
    CONFIGURED_THREADS.store(threads, Ordering::Relaxed);
}

/// Number of cores the scheduler will actually give us; 1 when unknown.
pub fn available_cores() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Resolves an effective worker count: an explicit request wins, then the
/// process-wide setting, then the machine's available parallelism. The
/// result is clamped to [`available_cores`] — oversubscribing a container
/// that exposes fewer cores only adds scheduling overhead, and on a
/// one-core box `--threads 4` would otherwise report fake "parallel" runs.
pub fn resolve_threads(requested: usize) -> usize {
    let cores = available_cores();
    let chosen = if requested > 0 {
        requested
    } else {
        let configured = CONFIGURED_THREADS.load(Ordering::Relaxed);
        if configured > 0 {
            configured
        } else {
            cores
        }
    };
    chosen.min(cores).max(1)
}

/// Maps `f` over `items` on up to `threads` workers (0 = default, see
/// [`resolve_threads`]), returning outputs in input order.
///
/// Panics in `f` propagate to the caller.
pub fn par_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = resolve_threads(threads).min(items.len()).max(1);
    if threads == 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }

    // Fixed contiguous chunks: worker w takes [w*chunk, (w+1)*chunk). The
    // partition depends only on len and thread count, never on timing.
    let chunk = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<U>> = Vec::new();
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(w, slice)| {
                let base = w * chunk;
                scope.spawn(move || {
                    slice.iter().enumerate().map(|(i, item)| f(base + i, item)).collect::<Vec<U>>()
                })
            })
            .collect();
        chunks = handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect();
    });
    let mut out = Vec::with_capacity(items.len());
    for c in chunks {
        out.extend(c);
    }
    out
}

/// Maps `f` over `items` in parallel, then folds the results **sequentially
/// in input order** with `reduce`, starting from `init`.
///
/// Because the reduction order is canonical, the result is bit-identical for
/// any thread count (including 1), even for non-associative operations such
/// as floating-point addition.
pub fn par_map_reduce<T, U, A, F, R>(items: &[T], threads: usize, f: F, init: A, mut reduce: R) -> A
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
    R: FnMut(A, U) -> A,
{
    let mapped = par_map(items, threads, f);
    let mut acc = init;
    for v in mapped {
        acc = reduce(acc, v);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..103).collect();
        for threads in [1, 2, 3, 4, 7] {
            let out = par_map(&items, threads, |i, &x| {
                assert_eq!(i, x, "index must match position");
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn reduction_is_bit_identical_across_thread_counts() {
        // Values chosen so that f32 summation order matters.
        let items: Vec<f32> = (0..1000).map(|i| (i as f32).sin() * 1e3 + 1e-3).collect();
        let reference =
            par_map_reduce(&items, 1, |_, &x| x * 1.000_1, 0.0f32, |acc, v| acc + v);
        for threads in [2, 3, 4, 8] {
            let sum =
                par_map_reduce(&items, threads, |_, &x| x * 1.000_1, 0.0f32, |acc, v| acc + v);
            assert_eq!(sum.to_bits(), reference.to_bits(), "threads = {threads}");
        }
    }

    #[test]
    fn handles_edge_sizes() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(par_map(&[5u8], 4, |_, &x| x + 1), vec![6]);
        // More threads than items.
        let two = [1u8, 2];
        assert_eq!(par_map(&two, 16, |_, &x| x), vec![1, 2]);
    }

    #[test]
    fn configured_default_is_used() {
        let cores = available_cores();
        set_threads(3);
        assert_eq!(resolve_threads(0), 3.min(cores));
        assert_eq!(resolve_threads(5), 5.min(cores));
        set_threads(0);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn resolved_threads_never_exceed_available_cores() {
        let cores = available_cores();
        for requested in [0, 1, 2, cores, cores + 1, 1024] {
            let effective = resolve_threads(requested);
            assert!(effective >= 1);
            assert!(effective <= cores, "requested {requested} resolved to {effective} > {cores}");
        }
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..64).collect();
        par_map(&items, 4, |_, &x| {
            if x == 63 {
                panic!("worker boom");
            }
            x
        });
    }
}
