//! Observability spans across `par_map` fan-out.
//!
//! Worker threads keep their own span stacks and flush into the global
//! registry when the scoped thread exits, so aggregate span statistics must
//! be identical for every thread count: same paths, same counts, same
//! deterministic snapshot order. Spans opened inside a worker closure are
//! roots of that worker's stack — nesting within the closure is preserved.

use std::sync::Mutex;
use valuenet_obs as obs;

static GUARD: Mutex<()> = Mutex::new(());

/// Runs `items` through `par_map` with nested spans per item and returns the
/// snapshot's `(path, count)` pairs.
fn spans_for(threads: usize, items: usize) -> Vec<(String, u64)> {
    obs::reset();
    let data: Vec<u64> = (0..items as u64).collect();
    let out = valuenet_par::par_map(&data, threads, |_, &x| {
        let _item = obs::span("work.item");
        let inner = {
            let _inner = obs::span("work.inner");
            x * 2
        };
        if x % 3 == 0 {
            let _rare = obs::span("work.rare");
        }
        inner
    });
    assert_eq!(out, data.iter().map(|x| x * 2).collect::<Vec<_>>());
    obs::snapshot().spans.iter().map(|s| (s.path_string(), s.count)).collect()
}

#[test]
fn aggregates_are_identical_across_thread_counts() {
    let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    obs::set_enabled(true);
    const ITEMS: usize = 97;
    let reference = spans_for(1, ITEMS);
    assert_eq!(
        reference,
        vec![
            ("work.item".to_string(), ITEMS as u64),
            ("work.item/work.inner".to_string(), ITEMS as u64),
            ("work.item/work.rare".to_string(), ITEMS.div_ceil(3) as u64),
        ]
    );
    for threads in [2, 3, 4] {
        assert_eq!(spans_for(threads, ITEMS), reference, "threads = {threads}");
    }
    obs::set_enabled(false);
}

#[test]
fn worker_flush_happens_without_explicit_calls() {
    let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    obs::set_enabled(true);
    obs::reset();
    static COUNTED: obs::Counter = obs::Counter::new("par.test_items");
    let data: Vec<u64> = (0..64).collect();
    valuenet_par::par_map(&data, 4, |_, _| {
        let _s = obs::span("flush.work");
        COUNTED.add(1);
    });
    // No flush_thread() anywhere: worker TLS destructors must have merged.
    let snap = obs::snapshot();
    assert_eq!(snap.span_named("flush.work").map(|s| s.count), Some(64));
    assert_eq!(snap.counter("par.test_items"), Some(64));
    obs::set_enabled(false);
}
