//! Schema graph and join-tree construction.
//!
//! Vertices are tables; every foreign key contributes an undirected edge
//! annotated with its `(child column, parent column)` pair. Joins are
//! resolved with breadth-first shortest paths (two tables) or the
//! Takahashi–Matsuyama Steiner-tree heuristic (three or more): start from one
//! terminal and repeatedly attach the terminal nearest to the current tree
//! via its shortest path. This is the approximation the paper references for
//! connecting all mentioned tables, including bridge tables the user never
//! mentions (e.g. `Has_Pet` between `Student` and `Pet`).

use crate::{ColumnId, DbSchema, TableId};
use std::collections::VecDeque;

/// One resolved join between two tables on a key pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinEdge {
    /// Table already present in the join tree.
    pub from_table: TableId,
    /// Column of `from_table` used in the `ON` clause.
    pub from_col: ColumnId,
    /// Newly attached table.
    pub to_table: TableId,
    /// Column of `to_table` used in the `ON` clause.
    pub to_col: ColumnId,
}

/// A connected tree of tables covering all requested terminals.
#[derive(Debug, Clone)]
pub struct JoinTree {
    /// Tables in attachment order; the first is the join root (`FROM` table).
    pub tables: Vec<TableId>,
    /// One edge per non-root table, in the same order as `tables[1..]`.
    pub edges: Vec<JoinEdge>,
}

impl JoinTree {
    /// Whether the tree had to include tables beyond the requested terminals
    /// (i.e. bridge tables were inserted).
    pub fn has_bridges(&self, terminals: &[TableId]) -> bool {
        self.tables.iter().any(|t| !terminals.contains(t))
    }
}

/// Undirected multigraph over the tables of one schema.
pub struct SchemaGraph {
    /// `adj[t]` lists `(neighbor, my_col, their_col)` triples.
    adj: Vec<Vec<(TableId, ColumnId, ColumnId)>>,
}

impl SchemaGraph {
    /// Builds the graph from the schema's foreign keys.
    pub fn new(schema: &DbSchema) -> Self {
        let mut adj = vec![Vec::new(); schema.tables.len()];
        for fk in &schema.foreign_keys {
            let (Some(ft), Some(tt)) =
                (schema.column(fk.from).table, schema.column(fk.to).table)
            else {
                continue;
            };
            if ft == tt {
                continue; // self-references don't help join planning
            }
            adj[ft.0].push((tt, fk.from, fk.to));
            adj[tt.0].push((ft, fk.to, fk.from));
        }
        SchemaGraph { adj }
    }

    /// Number of tables.
    pub fn num_tables(&self) -> usize {
        self.adj.len()
    }

    /// Direct FK neighbours of a table.
    pub fn neighbors(&self, t: TableId) -> &[(TableId, ColumnId, ColumnId)] {
        &self.adj[t.0]
    }

    /// Shortest path between two tables as a list of edges, or `None` if the
    /// tables are not connected.
    pub fn shortest_path(&self, from: TableId, to: TableId) -> Option<Vec<JoinEdge>> {
        if from == to {
            return Some(Vec::new());
        }
        let mut prev: Vec<Option<JoinEdge>> = vec![None; self.adj.len()];
        let mut seen = vec![false; self.adj.len()];
        seen[from.0] = true;
        let mut queue = VecDeque::from([from]);
        while let Some(t) = queue.pop_front() {
            for &(n, my_col, their_col) in &self.adj[t.0] {
                if seen[n.0] {
                    continue;
                }
                seen[n.0] = true;
                prev[n.0] = Some(JoinEdge {
                    from_table: t,
                    from_col: my_col,
                    to_table: n,
                    to_col: their_col,
                });
                if n == to {
                    let mut path = Vec::new();
                    let mut cur = to;
                    while cur != from {
                        let e = prev[cur.0].expect("path reconstruction");
                        path.push(e);
                        cur = e.from_table;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(n);
            }
        }
        None
    }

    /// Connects all `terminals` into a [`JoinTree`] using the
    /// Takahashi–Matsuyama heuristic. Returns `None` when any terminal is
    /// unreachable from the first. Terminal order is respected for
    /// determinism: the first terminal becomes the root.
    pub fn join_tree(&self, terminals: &[TableId]) -> Option<JoinTree> {
        assert!(!terminals.is_empty(), "join_tree: no terminals");
        let mut uniq = Vec::new();
        for &t in terminals {
            if !uniq.contains(&t) {
                uniq.push(t);
            }
        }
        let mut tree = JoinTree { tables: vec![uniq[0]], edges: Vec::new() };
        let mut remaining: Vec<TableId> = uniq[1..].to_vec();
        while !remaining.is_empty() {
            // Multi-source BFS from every table already in the tree.
            let mut prev: Vec<Option<JoinEdge>> = vec![None; self.adj.len()];
            let mut seen = vec![false; self.adj.len()];
            let mut queue = VecDeque::new();
            for &t in &tree.tables {
                seen[t.0] = true;
                queue.push_back(t);
            }
            let mut reached: Option<TableId> = None;
            'bfs: while let Some(t) = queue.pop_front() {
                for &(n, my_col, their_col) in &self.adj[t.0] {
                    if seen[n.0] {
                        continue;
                    }
                    seen[n.0] = true;
                    prev[n.0] = Some(JoinEdge {
                        from_table: t,
                        from_col: my_col,
                        to_table: n,
                        to_col: their_col,
                    });
                    if remaining.contains(&n) {
                        reached = Some(n);
                        break 'bfs;
                    }
                    queue.push_back(n);
                }
            }
            let target = reached?;
            // Walk back to the tree, collecting the path (tree-ward first).
            let mut path = Vec::new();
            let mut cur = target;
            while !tree.tables.contains(&cur) {
                let e = prev[cur.0].expect("path reconstruction");
                path.push(e);
                cur = e.from_table;
            }
            path.reverse();
            for e in path {
                tree.tables.push(e.to_table);
                tree.edges.push(e);
            }
            remaining.retain(|&t| t != target);
        }
        Some(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnType, SchemaBuilder};

    /// student —< has_pet >— pet, plus an unconnected island table.
    fn pets_schema() -> DbSchema {
        SchemaBuilder::new("pets")
            .table("student", &[("stu_id", ColumnType::Number), ("age", ColumnType::Number)])
            .primary_key("student", "stu_id")
            .table("has_pet", &[("stu_id", ColumnType::Number), ("pet_id", ColumnType::Number)])
            .table("pet", &[("pet_id", ColumnType::Number), ("weight", ColumnType::Number)])
            .primary_key("pet", "pet_id")
            .table("island", &[("x", ColumnType::Number)])
            .foreign_key("has_pet", "stu_id", "student", "stu_id")
            .foreign_key("has_pet", "pet_id", "pet", "pet_id")
            .build()
    }

    #[test]
    fn shortest_path_inserts_bridge() {
        let s = pets_schema();
        let g = SchemaGraph::new(&s);
        let student = s.table_by_name("student").unwrap();
        let pet = s.table_by_name("pet").unwrap();
        let path = g.shortest_path(student, pet).expect("connected");
        assert_eq!(path.len(), 2);
        assert_eq!(s.table(path[0].to_table).name, "has_pet");
        assert_eq!(s.qualified(path[0].from_col), "student.stu_id");
        assert_eq!(s.qualified(path[0].to_col), "has_pet.stu_id");
        assert_eq!(s.qualified(path[1].to_col), "pet.pet_id");
    }

    #[test]
    fn shortest_path_same_table_is_empty() {
        let s = pets_schema();
        let g = SchemaGraph::new(&s);
        let student = s.table_by_name("student").unwrap();
        assert_eq!(g.shortest_path(student, student).unwrap().len(), 0);
    }

    #[test]
    fn disconnected_tables_yield_none() {
        let s = pets_schema();
        let g = SchemaGraph::new(&s);
        let student = s.table_by_name("student").unwrap();
        let island = s.table_by_name("island").unwrap();
        assert!(g.shortest_path(student, island).is_none());
        assert!(g.join_tree(&[student, island]).is_none());
    }

    #[test]
    fn join_tree_two_terminals_includes_bridge() {
        let s = pets_schema();
        let g = SchemaGraph::new(&s);
        let student = s.table_by_name("student").unwrap();
        let pet = s.table_by_name("pet").unwrap();
        let tree = g.join_tree(&[student, pet]).unwrap();
        assert_eq!(tree.tables.len(), 3);
        assert_eq!(tree.edges.len(), 2);
        assert_eq!(tree.tables[0], student, "first terminal is the root");
        assert!(tree.has_bridges(&[student, pet]));
        // Every edge attaches a new table to an already-present one.
        for (i, e) in tree.edges.iter().enumerate() {
            assert!(tree.tables[..=i].contains(&e.from_table));
            assert_eq!(tree.tables[i + 1], e.to_table);
        }
    }

    #[test]
    fn join_tree_single_terminal() {
        let s = pets_schema();
        let g = SchemaGraph::new(&s);
        let pet = s.table_by_name("pet").unwrap();
        let tree = g.join_tree(&[pet]).unwrap();
        assert_eq!(tree.tables, vec![pet]);
        assert!(tree.edges.is_empty());
        assert!(!tree.has_bridges(&[pet]));
    }

    #[test]
    fn join_tree_dedupes_terminals() {
        let s = pets_schema();
        let g = SchemaGraph::new(&s);
        let student = s.table_by_name("student").unwrap();
        let tree = g.join_tree(&[student, student, student]).unwrap();
        assert_eq!(tree.tables, vec![student]);
    }

    /// A star-shaped schema where the Steiner tree must reuse the hub.
    #[test]
    fn steiner_tree_star_topology() {
        let s = SchemaBuilder::new("star")
            .table("hub", &[("id", ColumnType::Number)])
            .primary_key("hub", "id")
            .table("a", &[("hub_id", ColumnType::Number), ("v", ColumnType::Number)])
            .table("b", &[("hub_id", ColumnType::Number), ("v", ColumnType::Number)])
            .table("c", &[("hub_id", ColumnType::Number), ("v", ColumnType::Number)])
            .foreign_key("a", "hub_id", "hub", "id")
            .foreign_key("b", "hub_id", "hub", "id")
            .foreign_key("c", "hub_id", "hub", "id")
            .build();
        let g = SchemaGraph::new(&s);
        let (a, b, c) = (
            s.table_by_name("a").unwrap(),
            s.table_by_name("b").unwrap(),
            s.table_by_name("c").unwrap(),
        );
        let tree = g.join_tree(&[a, b, c]).unwrap();
        // Optimal Steiner tree: a-hub, hub-b, hub-c → 4 tables, 3 edges.
        assert_eq!(tree.tables.len(), 4);
        assert_eq!(tree.edges.len(), 3);
        let hub = s.table_by_name("hub").unwrap();
        assert!(tree.tables.contains(&hub));
    }

    #[test]
    fn self_referencing_fk_is_ignored() {
        let s = SchemaBuilder::new("tree")
            .table("emp", &[("id", ColumnType::Number), ("boss_id", ColumnType::Number)])
            .primary_key("emp", "id")
            .foreign_key("emp", "boss_id", "emp", "id")
            .build();
        let g = SchemaGraph::new(&s);
        let emp = s.table_by_name("emp").unwrap();
        assert!(g.neighbors(emp).is_empty());
        assert_eq!(g.join_tree(&[emp]).unwrap().tables, vec![emp]);
    }
}
