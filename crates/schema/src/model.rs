//! Schema data model: tables, columns, types and key relationships.

use serde::{Deserialize, Serialize};

/// Index of a table within a [`DbSchema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TableId(pub usize);

/// Index of a column within a [`DbSchema`]. Column `0` is always the special
/// `*` column (it belongs to no table), mirroring Spider's schema encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ColumnId(pub usize);

impl ColumnId {
    /// The `*` pseudo-column present in every schema.
    pub const STAR: ColumnId = ColumnId(0);

    /// Whether this is the `*` pseudo-column.
    pub fn is_star(self) -> bool {
        self.0 == 0
    }
}

/// Logical column types, following Spider's five-way classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnType {
    /// Free text.
    Text,
    /// Integers and reals.
    Number,
    /// Dates, times, years.
    Time,
    /// Booleans (often stored as 0/1 or 'T'/'F' in real schemas).
    Boolean,
    /// Anything else (ids, codes).
    Others,
}

impl ColumnType {
    /// Whether literal values of this type are quoted in SQL.
    pub fn is_textual(self) -> bool {
        matches!(self, ColumnType::Text | ColumnType::Time)
    }
}

/// A column of a table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Column {
    /// Physical (snake_case) name as used in SQL.
    pub name: String,
    /// Natural-language surface form (e.g. "home country"), used for schema
    /// linking; Spider calls this the "column original name" counterpart.
    pub display: String,
    /// Owning table; `None` only for the `*` pseudo-column.
    pub table: Option<TableId>,
    /// Logical type.
    pub ty: ColumnType,
    /// Whether the column is (part of) the primary key.
    pub is_primary: bool,
}

/// A table of the schema.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// Physical (snake_case) name as used in SQL.
    pub name: String,
    /// Natural-language surface form (e.g. "has pet").
    pub display: String,
    /// Columns belonging to this table, in declaration order.
    pub columns: Vec<ColumnId>,
}

/// A foreign-key relationship `from` → `to` (child column references parent
/// column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForeignKey {
    /// Referencing (child) column.
    pub from: ColumnId,
    /// Referenced (parent) column.
    pub to: ColumnId,
}

/// A complete database schema.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DbSchema {
    /// Database identifier (Spider's `db_id`).
    pub db_id: String,
    /// All tables.
    pub tables: Vec<Table>,
    /// All columns; index 0 is the `*` pseudo-column.
    pub columns: Vec<Column>,
    /// All foreign keys.
    pub foreign_keys: Vec<ForeignKey>,
}

impl DbSchema {
    /// The table with the given physical name, if any (case-insensitive).
    pub fn table_by_name(&self, name: &str) -> Option<TableId> {
        self.tables.iter().position(|t| t.name.eq_ignore_ascii_case(name)).map(TableId)
    }

    /// The column with the given physical name in the given table.
    pub fn column_by_name(&self, table: TableId, name: &str) -> Option<ColumnId> {
        self.tables[table.0]
            .columns
            .iter()
            .copied()
            .find(|&c| self.columns[c.0].name.eq_ignore_ascii_case(name))
    }

    /// The first column with the given physical name in any table.
    pub fn any_column_by_name(&self, name: &str) -> Option<(TableId, ColumnId)> {
        for (ti, t) in self.tables.iter().enumerate() {
            for &c in &t.columns {
                if self.columns[c.0].name.eq_ignore_ascii_case(name) {
                    return Some((TableId(ti), c));
                }
            }
        }
        None
    }

    /// Accessor: table by id.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.0]
    }

    /// Accessor: column by id.
    pub fn column(&self, id: ColumnId) -> &Column {
        &self.columns[id.0]
    }

    /// The primary-key column of a table, if it has a single-column one.
    pub fn primary_key(&self, table: TableId) -> Option<ColumnId> {
        self.tables[table.0].columns.iter().copied().find(|&c| self.columns[c.0].is_primary)
    }

    /// Number of real (non-`*`) columns.
    pub fn num_real_columns(&self) -> usize {
        self.columns.len().saturating_sub(1)
    }

    /// Qualified name `table.column` for diagnostics.
    pub fn qualified(&self, col: ColumnId) -> String {
        let c = &self.columns[col.0];
        match c.table {
            Some(t) => format!("{}.{}", self.tables[t.0].name, c.name),
            None => "*".to_string(),
        }
    }
}

/// Fluent builder for [`DbSchema`], used heavily by the dataset generator.
///
/// # Example
/// ```
/// use valuenet_schema::{ColumnType, SchemaBuilder};
///
/// let schema = SchemaBuilder::new("pets")
///     .table("student", &[
///         ("stu_id", ColumnType::Number),
///         ("name", ColumnType::Text),
///         ("age", ColumnType::Number),
///     ])
///     .primary_key("student", "stu_id")
///     .table("pet", &[("pet_id", ColumnType::Number), ("owner_id", ColumnType::Number)])
///     .primary_key("pet", "pet_id")
///     .foreign_key("pet", "owner_id", "student", "stu_id")
///     .build();
/// assert_eq!(schema.tables.len(), 2);
/// assert_eq!(schema.foreign_keys.len(), 1);
/// ```
pub struct SchemaBuilder {
    schema: DbSchema,
}

impl SchemaBuilder {
    /// Starts a schema with the given database id and the `*` pseudo-column.
    pub fn new(db_id: impl Into<String>) -> Self {
        SchemaBuilder {
            schema: DbSchema {
                db_id: db_id.into(),
                tables: Vec::new(),
                columns: vec![Column {
                    name: "*".into(),
                    display: "*".into(),
                    table: None,
                    ty: ColumnType::Others,
                    is_primary: false,
                }],
                foreign_keys: Vec::new(),
            },
        }
    }

    /// Adds a table with the given `(name, type)` columns. The display form
    /// of every identifier is its name with underscores replaced by spaces.
    pub fn table(mut self, name: &str, cols: &[(&str, ColumnType)]) -> Self {
        let tid = TableId(self.schema.tables.len());
        let mut ids = Vec::with_capacity(cols.len());
        for (cname, ty) in cols {
            let cid = ColumnId(self.schema.columns.len());
            self.schema.columns.push(Column {
                name: (*cname).to_string(),
                display: cname.replace('_', " "),
                table: Some(tid),
                ty: *ty,
                is_primary: false,
            });
            ids.push(cid);
        }
        self.schema.tables.push(Table {
            name: name.to_string(),
            display: name.replace('_', " "),
            columns: ids,
        });
        self
    }

    /// Marks `table.column` as (part of) the primary key.
    ///
    /// # Panics
    /// Panics if the table or column does not exist.
    pub fn primary_key(mut self, table: &str, column: &str) -> Self {
        let t = self.schema.table_by_name(table).unwrap_or_else(|| panic!("no table {table}"));
        let c = self
            .schema
            .column_by_name(t, column)
            .unwrap_or_else(|| panic!("no column {table}.{column}"));
        self.schema.columns[c.0].is_primary = true;
        self
    }

    /// Adds a foreign key `child.ccol` → `parent.pcol`.
    ///
    /// # Panics
    /// Panics if any identifier does not exist.
    pub fn foreign_key(mut self, child: &str, ccol: &str, parent: &str, pcol: &str) -> Self {
        let ct = self.schema.table_by_name(child).unwrap_or_else(|| panic!("no table {child}"));
        let pt = self.schema.table_by_name(parent).unwrap_or_else(|| panic!("no table {parent}"));
        let cc = self
            .schema
            .column_by_name(ct, ccol)
            .unwrap_or_else(|| panic!("no column {child}.{ccol}"));
        let pc = self
            .schema
            .column_by_name(pt, pcol)
            .unwrap_or_else(|| panic!("no column {parent}.{pcol}"));
        self.schema.foreign_keys.push(ForeignKey { from: cc, to: pc });
        self
    }

    /// Finishes the schema.
    pub fn build(self) -> DbSchema {
        self.schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pets_schema() -> DbSchema {
        SchemaBuilder::new("pets")
            .table(
                "student",
                &[
                    ("stu_id", ColumnType::Number),
                    ("name", ColumnType::Text),
                    ("age", ColumnType::Number),
                    ("home_country", ColumnType::Text),
                ],
            )
            .primary_key("student", "stu_id")
            .table(
                "has_pet",
                &[("stu_id", ColumnType::Number), ("pet_id", ColumnType::Number)],
            )
            .table(
                "pet",
                &[
                    ("pet_id", ColumnType::Number),
                    ("pet_type", ColumnType::Text),
                    ("weight", ColumnType::Number),
                ],
            )
            .primary_key("pet", "pet_id")
            .foreign_key("has_pet", "stu_id", "student", "stu_id")
            .foreign_key("has_pet", "pet_id", "pet", "pet_id")
            .build()
    }

    #[test]
    fn star_column_is_first() {
        let s = pets_schema();
        assert!(ColumnId::STAR.is_star());
        assert_eq!(s.columns[0].name, "*");
        assert!(s.columns[0].table.is_none());
    }

    #[test]
    fn lookup_by_name() {
        let s = pets_schema();
        let student = s.table_by_name("STUDENT").expect("case-insensitive lookup");
        assert_eq!(s.table(student).name, "student");
        let age = s.column_by_name(student, "age").unwrap();
        assert_eq!(s.column(age).ty, ColumnType::Number);
        assert_eq!(s.qualified(age), "student.age");
        assert!(s.column_by_name(student, "weight").is_none());
    }

    #[test]
    fn primary_and_foreign_keys() {
        let s = pets_schema();
        let student = s.table_by_name("student").unwrap();
        let pk = s.primary_key(student).unwrap();
        assert_eq!(s.column(pk).name, "stu_id");
        assert_eq!(s.foreign_keys.len(), 2);
        let fk = s.foreign_keys[0];
        assert_eq!(s.qualified(fk.from), "has_pet.stu_id");
        assert_eq!(s.qualified(fk.to), "student.stu_id");
    }

    #[test]
    fn display_names_strip_underscores() {
        let s = pets_schema();
        let t = s.table_by_name("has_pet").unwrap();
        assert_eq!(s.table(t).display, "has pet");
        let student = s.table_by_name("student").unwrap();
        let c = s.column_by_name(student, "home_country").unwrap();
        assert_eq!(s.column(c).display, "home country");
    }

    #[test]
    fn serde_round_trip() {
        let s = pets_schema();
        let json = serde_json::to_string(&s).unwrap();
        let s2: DbSchema = serde_json::from_str(&json).unwrap();
        assert_eq!(s2.tables.len(), s.tables.len());
        assert_eq!(s2.columns.len(), s.columns.len());
        assert_eq!(s2.foreign_keys, s.foreign_keys);
    }
}
