//! Database schema model, schema graph, and join resolution.
//!
//! The paper (Section III-C2) observes that under the Spider *Execution
//! Accuracy* metric a system must emit complete `JOIN ... ON` clauses —
//! simply naming the joined tables (as IRNet does for Exact-Matching) yields
//! Cartesian products. ValueNet therefore models the schema as an undirected
//! graph whose vertices are tables and whose edges are primary-/foreign-key
//! relationships *annotated with the key columns*, connects the tables
//! mentioned by a query with shortest paths (two tables) or a Steiner-tree
//! approximation (three or more), and emits the `ON` conditions from the
//! edge annotations.

mod graph;
mod model;

pub use graph::{JoinEdge, JoinTree, SchemaGraph};
pub use model::{
    Column, ColumnId, ColumnType, DbSchema, ForeignKey, SchemaBuilder, Table, TableId,
};
