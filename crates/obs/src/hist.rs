//! Fixed-bucket histograms over `u64` values.
//!
//! The bucket layout is a base-2 scheme with four sub-buckets per octave
//! (two significant bits, HdrHistogram-style): values 0–3 get exact buckets,
//! and every value `v >= 4` lands in bucket `(exp - 1) * 4 + sub` where
//! `exp = floor(log2 v)` and `sub` is the next two bits below the leading
//! one. Bucket bounds are therefore powers of two scaled by 4–7, the
//! relative width of a bucket is at most 1/4, and percentile extraction
//! (which reports a bucket midpoint) has a worst-case relative error of
//! 12.5% — plenty for latency work, where the interesting differences are
//! 2× not 2%.
//!
//! The same layout backs both the lock-free [`crate::Histogram`] statics
//! (atomic buckets, safe to hammer from `valuenet-par` workers) and the
//! per-thread span-duration aggregates (plain `u64` buckets, merged at
//! flush time).

/// Total bucket count: 4 exact small-value buckets + 62 octaves × 4.
pub const NBUCKETS: usize = 252;

/// Maps a value to its bucket index.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < 4 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros() as usize; // floor(log2 v) >= 2
    let sub = ((v >> (exp - 2)) & 3) as usize;
    (exp - 1) * 4 + sub
}

/// The `[lower, upper)` value range of a bucket.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < 4 {
        return (i as u64, i as u64 + 1);
    }
    let exp = i / 4 + 1;
    let sub = (i % 4) as u64;
    let lower = (4 + sub) << (exp - 2);
    let width = 1u64 << (exp - 2);
    (lower, lower.saturating_add(width))
}

/// The representative value reported for a bucket (its midpoint).
pub fn bucket_mid(i: usize) -> f64 {
    let (lo, hi) = bucket_bounds(i);
    (lo as f64 + hi as f64) / 2.0
}

/// Nearest-rank percentile over raw bucket counts: the midpoint of the
/// bucket containing the `ceil(q * total)`-th smallest recorded value.
/// Returns 0.0 when nothing was recorded.
pub fn percentile_from_counts(counts: &[u64], q: f64) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return bucket_mid(i);
        }
    }
    bucket_mid(counts.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..4u64 {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert_eq!((lo, hi), (v, v + 1));
        }
    }

    #[test]
    fn every_value_falls_inside_its_bucket_bounds() {
        let mut probes: Vec<u64> = (0..200).collect();
        for e in 2..63 {
            let base = 1u64 << e;
            probes.extend([base - 1, base, base + 1, base + base / 3, base + base / 2]);
        }
        probes.push(u64::MAX);
        for v in probes {
            let i = bucket_index(v);
            assert!(i < NBUCKETS, "index {i} out of range for {v}");
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && (v < hi || hi == u64::MAX), "{v} not in [{lo},{hi}) (bucket {i})");
        }
    }

    #[test]
    fn buckets_are_monotone() {
        let mut prev = bucket_index(0);
        for v in [1u64, 2, 3, 4, 5, 7, 8, 100, 1000, 1 << 20, (1 << 20) + 17, 1 << 40] {
            let i = bucket_index(v);
            assert!(i >= prev, "bucket index decreased at {v}");
            prev = i;
        }
    }

    #[test]
    fn percentile_of_uniform_counts() {
        let mut counts = vec![0u64; NBUCKETS];
        // 100 values of exactly 1000.
        counts[bucket_index(1000)] = 100;
        let p = percentile_from_counts(&counts, 0.5);
        let (lo, hi) = bucket_bounds(bucket_index(1000));
        assert!(p >= lo as f64 && p <= hi as f64);
    }
}
